"""The OLE DB DM provider: one command surface for SQL and DMX.

:class:`Provider` owns the relational engine and the mining-model catalog
and dispatches every statement — the "analysis server" box of the paper's
Figure 1, layered on the relational engine through the engine's
``external_resolver`` hook.  :class:`Connection` is the thin session facade
(`connect()` creates one) that applications use, playing the role of an
OLE DB session issuing command strings.

Name resolution follows the paper's "model as table" analogy: INSERT INTO
and DELETE FROM look the target up in the model catalog first, then fall
back to base tables, so the same statement forms work on both.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional

from repro.errors import BindError, CatalogError, Error, ParseError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_statement
from repro.obs import MetricsRegistry, Tracer, WorkloadRegistry
from repro.obs import trace as obs_trace
from repro.obs import workload as obs_workload
from repro.obs.repository import WorkloadRepository
from repro.shaping.shape import (
    execute_shape_stream,
    flatten_rowset,
    flatten_stream,
)
from repro.sqlstore.engine import Database, SourceRelation
from repro.sqlstore.rowset import DEFAULT_BATCH_SIZE, Rowset, RowStream
from repro.store.durable import is_mutating_statement
from repro.exec.pool import WorkerPool
from repro.core.bindings import iter_mapped_cases
from repro.core.casecache import CasesetCache, definition_fingerprint
from repro.core.columns import compile_model_definition
from repro.core.model import MiningModel
from repro.core.prediction import (
    execute_prediction_select,
    execute_prediction_stream,
)
from repro.core.schema_rowsets import model_content_rowset, system_rowset


def _condense(command: str, limit: int = 120) -> str:
    """Collapse whitespace and truncate a statement for error/log display."""
    text = " ".join(command.split())
    if len(text) > limit:
        text = text[:limit - 3] + "..."
    return text


def _attach_statement(exc: Error, command: str) -> None:
    """Append the failing statement text to a parse/bind error in place.

    Mutating ``args`` (rather than raising a new exception) preserves the
    concrete error type and any attributes such as ``ParseError.line``.
    """
    snippet = _condense(command)
    message = str(exc)
    if "[in statement:" in message:
        return
    exc.args = (f"{message} [in statement: {snippet}]",)


def _statement_kind(statement: ast.Statement, provider=None) -> str:
    """Classify an AST node for the query log / per-kind metrics."""
    if isinstance(statement, ast.ExplainStatement):
        return "EXPLAIN_ANALYZE" if statement.analyze else "EXPLAIN"
    if isinstance(statement, ast.CreateMiningModelStatement):
        return "CREATE_MODEL"
    if isinstance(statement, ast.InsertModelStatement):
        return "TRAIN"
    if isinstance(statement, ast.InsertValuesStatement):
        if provider is not None and provider.has_model(statement.table):
            return "TRAIN"
        return "INSERT"
    if isinstance(statement, ast.SelectStatement):
        if isinstance(statement.from_clause, ast.PredictionJoin):
            return "PREDICT"
        return "SELECT"
    if isinstance(statement, (ast.DeleteModelStatement, ast.DeleteStatement)):
        return "DELETE"
    if isinstance(statement, ast.DropMiningModelStatement):
        return "DROP_MODEL"
    if isinstance(statement, ast.DropTableStatement):
        return "DROP"
    if isinstance(statement, ast.ExportModelStatement):
        return "EXPORT"
    if isinstance(statement, ast.ImportModelStatement):
        return "IMPORT"
    name = type(statement).__name__
    if name.endswith("Statement"):
        name = name[:-len("Statement")]
    return re.sub(r"(?<=[a-z])(?=[A-Z])", "_", name).upper()


class Provider:
    """The provider: relational engine + mining-model catalog + dispatcher.

    ``batch_size`` sets the granularity of the streaming pipeline (rows per
    batch exchanged between operators); ``caseset_cache_capacity`` and
    ``caseset_cache_max_rows`` tune the LRU cache of bound casesets
    (capacity 0 disables it, casesets above ``max_rows`` are never cached).
    ``max_workers`` caps the shared worker pool used by partitioned
    training and parallel PREDICTION JOIN (1 = always serial), and
    ``pool_mode`` picks its transport (``auto``/``serial``/``thread``/
    ``process``); a statement's ``WITH MAXDOP n`` can only lower the cap.

    ``durable_path`` attaches a crash-safe store (:mod:`repro.store`): the
    directory's snapshot + journal are replayed into this provider at
    construction, and every subsequent mutating statement is journaled and
    fsync'd before it is acknowledged.  ``durable_checkpoint_interval``
    sets how many journaled statements trigger an automatic checkpoint
    (0 disables auto-checkpointing); ``durable_faults`` threads a
    :class:`repro.store.FaultInjector` through the write paths (tests).

    ``storage_path`` attaches the paged row store (:mod:`repro.sqlstore.
    storage`): base-table rows live in fixed-budget pages cached by a
    shared buffer pool of ``buffer_pages`` frames and spilled to versioned
    files, so tables larger than the pool stream from disk.  Alone, the
    paged store is itself the restart-surviving database (shadow-paged
    commit per mutation); combined with ``durable_path`` it runs ephemeral
    — journal replay stays the authority and the directory is pure spill
    space.  ``storage_page_bytes`` overrides the page budget (tests force
    tiny pages), ``storage_faults`` threads a FaultInjector through page
    and catalog writes.

    ``telemetry_path`` attaches a rotating JSONL slow-query sink: every
    statement whose latency reaches ``slow_query_ms`` (default 0 — log
    everything) is appended as one JSON record, including its span tree
    when span capture was on.  :meth:`serve_metrics` starts the HTTP
    telemetry endpoint (``/metrics``, ``/healthz``, ``/queries``,
    ``/statements``).

    ``repository`` gates the workload repository
    (:mod:`repro.obs.repository`): per-fingerprint statement aggregates
    and plan history behind ``$SYSTEM.DM_STATEMENT_STATS`` /
    ``DM_PLAN_HISTORY`` / ``DM_PLAN_CHANGES``.  On by default
    (observation-only, pinned by the differential suite); with a
    ``durable_path`` it persists to ``workload_repository.json`` in that
    directory.
    """

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE,
                 caseset_cache_capacity: int = 8,
                 caseset_cache_max_rows: int = 50_000,
                 max_workers: int = 1,
                 pool_mode: str = "auto",
                 durable_path: Optional[str] = None,
                 durable_checkpoint_interval: Optional[int] = None,
                 durable_faults=None,
                 storage_path: Optional[str] = None,
                 buffer_pages: Optional[int] = None,
                 storage_page_bytes: Optional[int] = None,
                 storage_faults=None,
                 slow_query_ms: Optional[float] = None,
                 telemetry_path: Optional[str] = None,
                 statistics: bool = True,
                 repository: bool = True):
        self.database = Database(external_resolver=self._resolve_external,
                                 batch_size=batch_size,
                                 statistics=statistics)
        self.models: Dict[str, MiningModel] = {}
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.database.metrics = self.metrics
        self.caseset_cache = CasesetCache(
            capacity=caseset_cache_capacity,
            max_rows=caseset_cache_max_rows,
            metrics=self.metrics)
        self.pool = WorkerPool(max_workers=max_workers, mode=pool_mode,
                               metrics=self.metrics)
        self.workload = WorkloadRegistry(metrics=self.metrics)
        repo_path = None
        if durable_path is not None:
            import os
            repo_path = os.path.join(durable_path, "workload_repository.json")
        self.repository = WorkloadRepository(path=repo_path,
                                             metrics=self.metrics)
        self.repository.enabled = bool(repository)
        self.tracer.on_statement = self._observe_statement
        self.slow_sink = None
        if telemetry_path is not None:
            from repro.obs.sink import SlowQuerySink
            self.slow_sink = SlowQuerySink(
                telemetry_path,
                threshold_ms=0.0 if slow_query_ms is None else slow_query_ms)
        self._metrics_server = None
        # Attached DMX network server (repro.server.DmxServer), if any;
        # set by the server itself so checkpoint() can drain in-flight
        # wire statements first and $SYSTEM.DM_SESSIONS can see sessions.
        self.dmx_server = None
        self.store = None
        self.recovery_info = None
        self.storage = None
        if storage_path is not None:
            from repro.sqlstore.buffer import DEFAULT_BUFFER_PAGES
            from repro.sqlstore.pages import DEFAULT_PAGE_BYTES
            from repro.sqlstore.storage import StorageManager
            # With a durable journal attached, replay is the authority and
            # the paged store is pure spill space (ephemeral); alone, the
            # paged store *is* the restart-surviving database.
            self.storage = StorageManager(
                storage_path,
                buffer_pages=(DEFAULT_BUFFER_PAGES if buffer_pages is None
                              else buffer_pages),
                faults=storage_faults, metrics=self.metrics,
                ephemeral=durable_path is not None,
                page_bytes=(DEFAULT_PAGE_BYTES if storage_page_bytes is None
                            else storage_page_bytes))
            self.database.store_factory = self.storage.make_store
            self.storage.open_into(self.database)
        if durable_path is not None:
            from repro.store.durable import (
                DEFAULT_CHECKPOINT_INTERVAL,
                DurableStore,
            )
            interval = (DEFAULT_CHECKPOINT_INTERVAL
                        if durable_checkpoint_interval is None
                        else durable_checkpoint_interval)
            self.store = DurableStore(
                durable_path, checkpoint_interval=interval,
                faults=durable_faults, metrics=self.metrics)
            self.recovery_info = self.store.recover(self)

    def close(self) -> None:
        """Release pooled workers (the pool revives lazily if reused), the
        durable store's journal handle, any telemetry endpoint, and an
        attached DMX network server (drained before teardown)."""
        if self.dmx_server is not None:
            self.dmx_server.close()
        if self._metrics_server is not None:
            self._metrics_server.close()
            self._metrics_server = None
        self.pool.shutdown()
        self.repository.save()
        if self.store is not None:
            self.store.close()
        if self.storage is not None:
            self.storage.close(self.database)

    def serve_metrics(self, port: int = 0, host: str = "127.0.0.1"):
        """Start (or return) the HTTP telemetry endpoint for this provider.

        Serves ``/metrics`` (Prometheus text exposition), ``/healthz``
        (200 while the store is writable, 503 once it turns read-only),
        and ``/queries`` (recent DM_QUERY_LOG as JSON) on a daemon thread.
        ``port=0`` binds an ephemeral port; read it back from
        ``server.port``.  A closed server is replaced rather than returned,
        so serve/close cycles on one provider always yield a live endpoint.
        """
        if self._metrics_server is None or self._metrics_server.closed:
            from repro.obs.export import TelemetryServer
            self._metrics_server = TelemetryServer(self, host=host,
                                                   port=port)
        return self._metrics_server

    def checkpoint(self) -> None:
        """Snapshot the durable store now and truncate its journal.

        With a DMX server attached, in-flight wire statements are drained
        first (`quiesce`): new statements briefly queue at the admission
        gate, running ones finish, and only then is the snapshot taken —
        so a checkpoint always lands on a statement boundary.
        """
        if self.store is None:
            raise Error("this provider has no durable store; open one with "
                        "connect(durable_path=...)")
        server = self.dmx_server
        if server is not None and not server.closed:
            with server.quiesce():
                self.store.checkpoint(self)
        else:
            self.store.checkpoint(self)
        self.repository.save()

    # -- catalog ----------------------------------------------------------------

    def model(self, name: str) -> MiningModel:
        try:
            return self.models[name.upper()]
        except KeyError as exc:
            raise BindError(f"no mining model named {name!r}") from exc

    def has_model(self, name: str) -> bool:
        return name.upper() in self.models

    def list_models(self) -> List[MiningModel]:
        return [self.models[key] for key in sorted(self.models)]

    # -- dispatch ----------------------------------------------------------------

    def execute(self, command: str) -> Any:
        """Parse and execute one command; Rowset for queries, int for DML.

        Every statement (except the TRACE verb itself, which controls the
        tracer) runs inside a :meth:`Tracer.statement` context so the
        ``$SYSTEM.DM_QUERY_LOG`` ring and provider metrics stay populated.
        """
        stripped = command.lstrip()
        first = stripped.split(None, 1)[0].upper() if stripped else ""
        if first == "TRACE":
            return self.execute_ast(parse_statement(command))
        previous = obs_trace.activate(self.tracer)
        try:
            with self.tracer.statement(command) as record:
                record.session = obs_workload.session_id()
                active = self.workload.register(record.statement_id, command)
                prior = obs_workload.activate(active)
                try:
                    obs_workload.set_phase("parse")
                    try:
                        statement = parse_statement(command)
                    except ParseError as exc:
                        _attach_statement(exc, command)
                        raise
                    record.kind = _statement_kind(statement, self)
                    if active is not None:
                        active.kind = record.kind
                    self.repository.annotate(record, self, statement,
                                             command)
                    return self._execute_statement(statement, command)
                finally:
                    obs_workload.deactivate(prior)
        finally:
            obs_trace.deactivate(previous)

    def _execute_statement(self, statement: ast.Statement,
                           command: str) -> Any:
        """Journal-aware execution shared by :meth:`execute` and EXPLAIN
        ANALYZE (which journals the *inner* statement's text, so crash
        replay re-runs the mutation rather than the EXPLAIN wrapper)."""
        journaled = (self.store is not None and
                     is_mutating_statement(statement))
        if journaled:
            # Refuse up front if a previous durability failure left
            # memory ahead of disk: don't widen the divergence.
            self.store.ensure_healthy()
            # {apply, journal} must be atomic against concurrent
            # mutations so journal order equals apply order.
            with self.store.mutation_lock:
                try:
                    result = self.execute_ast(statement)
                except BindError as exc:
                    _attach_statement(exc, command)
                    raise
                # Ack ordering: the statement is acknowledged
                # (returned to the caller) only after its journal
                # record is fsync'd.  A crash before this point
                # loses only an unacknowledged statement.
                self.store.record_statement(self, statement, command)
            return result
        try:
            result = self.execute_ast(statement)
        except BindError as exc:
            _attach_statement(exc, command)
            raise
        if self.storage is not None and not self.storage.ephemeral and \
                is_mutating_statement(statement):
            # Paged-store durability: shadow-page commit (flush dirty,
            # swap the catalog root) before the mutation is acknowledged.
            self.storage.commit(self.database)
        return result

    def execute_ast(self, statement: ast.Statement) -> Any:
        if isinstance(statement, ast.TraceStatement):
            return self._execute_trace(statement)
        if isinstance(statement, ast.CancelStatement):
            return self._execute_cancel(statement)
        if isinstance(statement, ast.ExplainStatement):
            return self._execute_explain(statement)
        if isinstance(statement, ast.CreateMiningModelStatement):
            return self._create_mining_model(statement)
        if isinstance(statement, ast.InsertModelStatement):
            return self._insert_model(statement)
        if isinstance(statement, ast.InsertValuesStatement):
            return self._insert_dispatch(statement)
        if isinstance(statement, ast.DeleteModelStatement):
            model = self.model(statement.name)
            with model.lock.write():
                model.reset()
            return 0
        if isinstance(statement, ast.DeleteStatement):
            if self.has_model(statement.table):
                if statement.where is not None:
                    raise Error(
                        f"DELETE FROM a mining model resets it entirely; "
                        f"a WHERE clause is not supported "
                        f"({statement.table!r} is a model)")
                model = self.model(statement.table)
                with model.lock.write():
                    model.reset()
                return 0
            return self.database.execute_ast(statement)
        if isinstance(statement, ast.DropMiningModelStatement):
            key = statement.name.upper()
            if key in self.models:
                del self.models[key]
            elif not statement.if_exists:
                raise CatalogError(
                    f"no mining model named {statement.name!r}")
            return 0
        if isinstance(statement, ast.DropTableStatement):
            if self.has_model(statement.name):
                del self.models[statement.name.upper()]
                return 0
            return self.database.execute_ast(statement)
        if isinstance(statement, ast.ExportModelStatement):
            return self._export_model(statement)
        if isinstance(statement, ast.ImportModelStatement):
            return self._import_model(statement)
        if isinstance(statement, ast.SelectStatement):
            return self._execute_select(statement)
        return self.database.execute_ast(statement)

    # -- observability ------------------------------------------------------------

    def _execute_explain(self, statement: ast.ExplainStatement) -> Rowset:
        """EXPLAIN [ANALYZE]: plan description, optionally with actuals.

        Plain EXPLAIN is pure — the planner pass reads catalog statistics
        only, so no data-path span is opened and no state is mutated.
        ANALYZE executes the wrapped statement with span capture forced on
        and reconciles the captured span tree back onto the plan.
        """
        from repro.obs.explain import build_plan, explain_rowset, \
            reconcile_plan

        inner = statement.statement
        plan = build_plan(self, inner)
        if not statement.analyze:
            return explain_rowset(plan, analyzed=False)

        from repro.lang.formatter import format_statement
        command = format_statement(inner)
        was_enabled = self.tracer.enabled
        self.tracer.enabled = True
        # execute() has already activated the tracer on this thread; do it
        # again defensively so a direct execute_ast() call still captures.
        previous = obs_trace.activate(self.tracer)
        span = self.tracer.start_span("explain.execute")
        try:
            result = self._execute_statement(inner, command)
        finally:
            self.tracer._finish_span(span)
            self.tracer.enabled = was_enabled
            obs_trace.deactivate(previous)
        if isinstance(result, RowStream):
            result = result.materialize()
        rows = len(result.rows) if isinstance(result, Rowset) else (
            result if isinstance(result, int) else None)
        reconcile_plan(plan, span, rows)
        return explain_rowset(plan, analyzed=True)

    def plan_external_source(self, ref: ast.TableRef):
        """The engine's EXPLAIN hook, mirroring :meth:`_resolve_external`."""
        from repro.obs.explain import PlanNode
        if isinstance(ref, ast.ShapeSource):
            from repro.shaping.shape import plan_shape
            return plan_shape(ref.shape, self.database,
                              self.plan_external_source)
        if isinstance(ref, ast.SystemRowsetRef):
            return PlanNode("system rowset",
                            target=f"$SYSTEM.{ref.rowset.upper()}",
                            strategy="materialized snapshot")
        if isinstance(ref, ast.ModelContentRef):
            model = self.model(ref.model)
            est = model.case_count if ref.facet == "CASES" else None
            return PlanNode(f"model {ref.facet.lower()}", target=model.name,
                            strategy="materialized", est_rows=est)
        if isinstance(ref, ast.NamedTable) and self.has_model(ref.name):
            raise Error(
                f"{ref.name!r} is a mining model; query its content with "
                f"SELECT * FROM [{ref.name}].CONTENT or predict with "
                f"PREDICTION JOIN (section 3.3)")
        return None

    def _execute_trace(self, statement: ast.TraceStatement) -> str:
        """TRACE ON|OFF|LAST|STATUS — control and inspect the tracer."""
        from repro import reporting
        mode = statement.mode.upper()
        if mode == "ON":
            self.tracer.enabled = True
            return "tracing is ON (span capture enabled)"
        if mode == "OFF":
            self.tracer.enabled = False
            return "tracing is OFF (statement log only)"
        if mode == "LAST":
            record = self.tracer.last()
            if record is None:
                return ("no traced statement in the ring — execute a "
                        "statement first (TRACE ON enables span capture)")
            return reporting.render_trace(record)
        state = "ON" if self.tracer.enabled else "OFF"
        return (f"tracing is {state}; "
                f"{len(self.tracer)} statement(s) in the ring "
                f"(capacity {self.tracer.ring_size})")

    def _execute_cancel(self, statement: ast.CancelStatement) -> str:
        """CANCEL <id> — request cooperative cancellation of a live statement.

        Returns immediately; the target unwinds at its next batch,
        partition, or training-iteration checkpoint and lands in
        ``DM_QUERY_LOG`` with status ``cancelled``.  When the CANCEL verb
        itself arrives over the wire, the request is scoped to the issuing
        session — a session can only cancel its own statements.
        """
        target = self.workload.cancel(statement.statement_id,
                                      session=obs_workload.session_id())
        return (f"cancel requested for statement {target.statement_id} "
                f"({target.kind}, phase {target.phase}); it will stop at "
                f"its next checkpoint")

    def export_trace(self, path: str) -> int:
        """Write the trace ring as Chrome-trace JSON (chrome://tracing,
        Perfetto).  Returns the number of statements exported."""
        from repro.obs.export import export_chrome_trace
        return export_chrome_trace(self, path)

    def _observe_statement(self, record) -> None:
        """Tracer callback: fold each finished statement into the metrics."""
        self.workload.observe(record)
        self.repository.observe(record)
        metrics = self.metrics
        metrics.counter("statements.total").inc()
        kind = (record.kind or "UNKNOWN").lower()
        metrics.counter(f"statements.{kind}.count").inc()
        metrics.histogram("statements.latency_ms").observe(record.duration_ms)
        metrics.histogram(f"statements.{kind}.latency_ms").observe(
            record.duration_ms)
        if record.status == "error":
            metrics.counter("statements.errors").inc()
        elif record.status == "cancelled":
            metrics.counter("statements.cancelled").inc()
        for name, amount in record.totals().items():
            metrics.counter(f"activity.{name}").inc(amount)
        resources = record.resources
        if resources is not None:
            metrics.counter("resource.cpu_ms").inc(resources["cpu_ms"])
            metrics.counter("resource.pool_cpu_ms").inc(
                resources["pool_cpu_ms"])
            metrics.counter("resource.lock_wait_ms").inc(
                resources["lock_wait_ms"])
            metrics.counter("resource.rows_processed").inc(
                resources["rows_processed"])
            metrics.histogram("resource.statement_cpu_ms").observe(
                resources["cpu_ms"])
        if self.slow_sink is not None:
            self.slow_sink.maybe_write(record)

    # -- model life cycle ---------------------------------------------------------

    def _create_mining_model(
            self, statement: ast.CreateMiningModelStatement) -> int:
        key = statement.name.upper()
        if key in self.models:
            raise CatalogError(
                f"mining model {statement.name!r} already exists")
        if self.database.has_table(statement.name):
            raise CatalogError(
                f"a table named {statement.name!r} already exists; model "
                f"names share the table name space")
        definition = compile_model_definition(statement)
        self.models[key] = MiningModel(definition)
        return 0

    def _insert_model(self, statement: ast.InsertModelStatement) -> int:
        model = self.model(statement.model)
        cases = self._bind_training_cases(model, statement)
        maxdop = statement.maxdop
        if maxdop is None:
            maxdop = getattr(statement.source, "maxdop", None)
        dop = self.pool.effective_dop(maxdop)
        obs_workload.set_phase("train")
        with model.lock.write():
            trained = model.train(cases, pool=self.pool, dop=dop)
        self.metrics.counter("training.cases_total").inc(len(cases))
        self.metrics.gauge(f"model.{model.name}.case_count").set(
            model.case_count)
        self.metrics.histogram("training.cases_per_insert").observe(
            len(cases))
        return trained

    def _bind_training_cases(self, model: MiningModel,
                             statement: ast.InsertModelStatement) -> list:
        """Stream the source into bound cases, via the caseset cache.

        The source rowset (SHAPE output included) is consumed batch by
        batch — only the bound :class:`MappedCase` list accumulates, which
        the model would retain anyway as its training caseset.
        """
        obs_workload.set_phase("bind")
        cache = self.caseset_cache
        key = None
        if cache.enabled:
            key = ("train", model.name.upper(),
                   definition_fingerprint(model.definition),
                   repr(statement.source), repr(statement.bindings),
                   self.database.data_version)
            cached = cache.get(key)
            if cached is not None:
                obs_trace.add("cache_hit", 1)
                obs_workload.note_cache(hit=True)
                return cached
            obs_trace.add("cache_miss", 1)
            obs_workload.note_cache(hit=False)
        if isinstance(statement.source, ast.ShapeExpr):
            stream = execute_shape_stream(statement.source, self.database)
        elif isinstance(statement.source, ast.SelectStatement):
            stream = self.database.execute_select_stream(statement.source)
        else:
            raise Error("INSERT INTO a model requires a SHAPE or SELECT "
                        "source")
        cases = []
        for batch in iter_mapped_cases(model.definition, stream,
                                       statement.bindings):
            cases.extend(batch)
            # Cancellation checkpoint per bound batch (row counts are
            # attributed by the engine's scan loop underneath).
            obs_workload.checkpoint()
        if key is not None:
            cache.put(key, cases, len(cases))
        return cases

    def _insert_dispatch(self, statement: ast.InsertValuesStatement) -> int:
        """INSERT whose target may be a base table or a model (paper: a
        model is 'analogous to a table in SQL')."""
        if self.has_model(statement.table):
            if statement.select is None:
                raise Error(
                    f"INSERT INTO mining model {statement.table!r} requires "
                    f"a SELECT or SHAPE source, not VALUES")
            bindings = [ast.BindingColumn(name)
                        for name in statement.columns]
            return self._insert_model(ast.InsertModelStatement(
                model=statement.table, bindings=bindings,
                source=statement.select))
        return self.database.execute_ast(statement)

    # -- SELECT ---------------------------------------------------------------------

    def _execute_select(self, statement: ast.SelectStatement) -> Rowset:
        if isinstance(statement.from_clause, ast.PredictionJoin):
            obs_workload.set_phase("predict")
            return execute_prediction_select(self, statement)
        obs_workload.set_phase("scan")
        result = self.database.execute_select(statement)
        if statement.flattened:
            result = flatten_rowset(result)
        return result

    def _execute_select_stream(self, statement: ast.SelectStatement,
                               batch_size: Optional[int] = None) -> RowStream:
        if isinstance(statement.from_clause, ast.PredictionJoin):
            obs_workload.set_phase("predict")
            return execute_prediction_stream(self, statement, batch_size)
        obs_workload.set_phase("scan")
        result = self.database.execute_select_stream(statement, batch_size)
        if statement.flattened:
            result = flatten_stream(result)
        return result

    def execute_stream(self, command: str,
                       batch_size: Optional[int] = None) -> RowStream:
        """Execute a SELECT (plain or PREDICTION JOIN) as a row stream.

        The returned :class:`RowStream` is single-use; blocking clauses
        (GROUP BY, ORDER BY, DISTINCT) still materialize internally, but
        pipelined shapes are produced batch by batch.
        """
        previous = obs_trace.activate(self.tracer)
        try:
            with self.tracer.statement(command) as record:
                record.session = obs_workload.session_id()
                active = self.workload.register(record.statement_id, command)
                prior = obs_workload.activate(active)
                try:
                    obs_workload.set_phase("parse")
                    try:
                        statement = parse_statement(command)
                    except ParseError as exc:
                        _attach_statement(exc, command)
                        raise
                    record.kind = _statement_kind(statement, self)
                    if active is not None:
                        active.kind = record.kind
                    self.repository.annotate(record, self, statement,
                                             command)
                    try:
                        if isinstance(statement, ast.UnionStatement):
                            return self.database.execute_union_stream(
                                statement, batch_size)
                        if isinstance(statement, ast.SelectStatement):
                            return self._execute_select_stream(statement,
                                                               batch_size)
                    except BindError as exc:
                        _attach_statement(exc, command)
                        raise
                    raise Error(
                        "execute_stream supports SELECT statements only; "
                        "use execute() for DDL/DML")
                finally:
                    obs_workload.deactivate(prior)
        finally:
            obs_trace.deactivate(previous)

    def _resolve_external(self, ref: ast.TableRef) -> Optional[SourceRelation]:
        """The engine's hook: models, SHAPE, $SYSTEM, <model>.CONTENT."""
        if isinstance(ref, ast.ShapeSource):
            stream = execute_shape_stream(ref.shape, self.database)
            return SourceRelation.from_stream(stream, ref.alias)
        if isinstance(ref, ast.SystemRowsetRef):
            rowset = system_rowset(self, ref.rowset)
            return SourceRelation.from_rowset(rowset, ref.alias or ref.rowset)
        if isinstance(ref, ast.ModelContentRef):
            model = self.model(ref.model)
            if ref.facet == "CONTENT":
                rowset = model_content_rowset(model)
            elif ref.facet == "PMML":
                from repro.pmml.writer import pmml_rowset
                rowset = pmml_rowset(model)
            elif ref.facet == "CASES":
                rowset = self._model_cases_rowset(model)
            else:  # pragma: no cover - parser restricts facets
                raise BindError(f"unknown model facet {ref.facet!r}")
            return SourceRelation.from_rowset(rowset, ref.alias or ref.model)
        if isinstance(ref, ast.NamedTable) and self.has_model(ref.name):
            raise Error(
                f"{ref.name!r} is a mining model; query its content with "
                f"SELECT * FROM [{ref.name}].CONTENT or predict with "
                f"PREDICTION JOIN (section 3.3)")
        return None

    def _model_cases_rowset(self, model: MiningModel) -> Rowset:
        """``<model>.CASES``: drill through to the accumulated caseset."""
        model.require_trained()
        from repro.sqlstore.rowset import RowsetColumn
        from repro.sqlstore.types import TEXT
        records = []
        for case in model.training_cases:
            record = {name: value for name, value in case.scalars.items()}
            for table_name, rows in case.tables.items():
                record[table_name] = ", ".join(
                    str(row.get(model.definition.find(table_name)
                                .key_column().name.upper()))
                    for row in rows)
            records.append(record)
        return Rowset.from_dicts(records)

    # -- PMML -------------------------------------------------------------------------

    def _export_model(self, statement: ast.ExportModelStatement) -> int:
        from repro.pmml.writer import write_pmml_file
        model = self.model(statement.name)
        write_pmml_file(model, statement.path)
        return 0

    def _import_model(self, statement: ast.ImportModelStatement) -> int:
        from repro.pmml.reader import read_pmml_file
        model = read_pmml_file(statement.path)
        if statement.rename_to:
            model.definition.name = statement.rename_to
        key = model.name.upper()
        if key in self.models:
            raise CatalogError(
                f"mining model {model.name!r} already exists; use "
                f"IMPORT ... AS <new name>")
        self.models[key] = model
        return 0


class Connection:
    """A session on a provider (the OLE DB session/command analogue)."""

    def __init__(self, provider: Optional[Provider] = None):
        self.provider = provider or Provider()
        self._closed = False

    def execute(self, command: str) -> Any:
        """Execute one SQL or DMX command string."""
        if self._closed:
            raise Error("connection is closed")
        return self.provider.execute(command)

    def execute_stream(self, command: str,
                       batch_size: Optional[int] = None) -> RowStream:
        """Execute one SELECT as a single-use stream of row batches."""
        if self._closed:
            raise Error("connection is closed")
        return self.provider.execute_stream(command, batch_size)

    def cancel(self, statement_id: int) -> str:
        """Request cooperative cancellation of a live statement by id.

        Equivalent to executing ``CANCEL <id>`` (the id space is the one in
        ``$SYSTEM.DM_ACTIVE_STATEMENTS`` / ``DM_QUERY_LOG``); safe to call
        from another thread while the target is executing.
        """
        if self._closed:
            raise Error("connection is closed")
        target = self.provider.workload.cancel(statement_id)
        return (f"cancel requested for statement {target.statement_id} "
                f"({target.kind}, phase {target.phase})")

    def execute_script(self, script: str) -> List[Any]:
        """Execute ';'-separated statements; returns each result."""
        results = []
        for command in split_statements(script):
            results.append(self.execute(command))
        return results

    @property
    def database(self) -> Database:
        return self.provider.database

    def models(self) -> List[MiningModel]:
        return self.provider.list_models()

    def model(self, name: str) -> MiningModel:
        return self.provider.model(name)

    def close(self) -> None:
        self._closed = True
        self.provider.close()

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(**kwargs) -> Connection:
    """Open a connection to an OLE DB DM provider.

    Keyword arguments (``batch_size``, ``caseset_cache_capacity``,
    ``caseset_cache_max_rows``, ``max_workers``, ``pool_mode``,
    ``durable_path``, ``durable_checkpoint_interval``, ``storage_path``,
    ``buffer_pages``, ``slow_query_ms``, ``telemetry_path``,
    ``statistics``, ``repository``) are forwarded to :class:`Provider`.
    ``repository=False`` disables the workload repository (per-fingerprint
    statement aggregates and plan history; observation-only either way).
    ``statistics=False`` disables table statistics and pins the planner to
    the pre-statistics heuristics (the cost-based planner's differential
    baseline).  Without ``durable_path`` the provider is purely
    in-memory; with it, existing state under that directory is recovered
    (snapshot + journal replay) and every acknowledged mutation survives
    process death.  ``storage_path``/``buffer_pages`` attach the paged row
    store so base tables larger than the buffer pool spill to disk.
    ``telemetry_path``/``slow_query_ms`` attach the rotating JSONL
    slow-query sink.
    """
    return Connection(Provider(**kwargs))


def split_statements(script: str) -> List[str]:
    """Split a script on ';' outside strings, brackets, and comments."""
    statements = []
    current: List[str] = []
    i = 0
    text = script
    while i < len(text):
        ch = text[i]
        if ch in "'\"":
            quote = ch
            current.append(ch)
            i += 1
            while i < len(text):
                current.append(text[i])
                if text[i] == quote:
                    if i + 1 < len(text) and text[i + 1] == quote:
                        current.append(text[i + 1])
                        i += 2
                        continue
                    i += 1
                    break
                i += 1
            continue
        if ch == "[":
            while i < len(text) and text[i] != "]":
                current.append(text[i])
                i += 1
            continue
        if ch == "-" and text[i:i + 2] == "--" or ch == "%" or \
                text[i:i + 2] == "//":
            while i < len(text) and text[i] != "\n":
                current.append(text[i])
                i += 1
            continue
        if text[i:i + 2] == "/*":
            end = text.find("*/", i + 2)
            end = len(text) if end < 0 else end + 2
            current.append(text[i:end])
            i = end
            continue
        if ch == ";":
            statement = "".join(current).strip()
            if statement:
                statements.append(statement)
            current = []
            i += 1
            continue
        current.append(ch)
        i += 1
    statement = "".join(current).strip()
    if statement:
        statements.append(statement)
    return statements
