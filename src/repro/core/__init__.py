"""The paper's primary contribution (systems S4-S8).

``repro.core`` implements the OLE DB DM object model: mining models as
first-class catalog objects with the CREATE / INSERT INTO / PREDICTION JOIN /
SELECT-content / DELETE / DROP life cycle, prediction functions, the content
graph, and the provider schema rowsets.
"""

from repro.core.columns import (
    AttributeType,
    ContentRole,
    ModelColumn,
    ModelDefinition,
    compile_model_definition,
)
from repro.core.model import MiningModel
from repro.core.provider import Provider, Connection, connect

__all__ = [
    "AttributeType",
    "ContentRole",
    "ModelColumn",
    "ModelDefinition",
    "compile_model_definition",
    "MiningModel",
    "Provider",
    "Connection",
    "connect",
]
