"""The mining model object: a first-class, table-like catalog entity.

Section 2 of the paper: a DMM "can be defined via the CREATE statement ...
populated, possibly repeatedly via the INSERT INTO statement ... emptied
(reset) via the DELETE statement" and "is populated by consuming a rowset but
its own internal structure can be more abstract".  :class:`MiningModel`
carries the compiled definition, the algorithm instance created from the
USING clause, the fitted attribute space, and the learned content.

Repeated INSERT INTO statements accumulate cases and refresh (retrain) the
model over the union — the model-maintenance story the paper calls out as
neglected by prior work.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import NotTrainedError, TrainError
from repro.core.bindings import MappedCase
from repro.core.columns import ModelDefinition
from repro.core.content import ContentNode
from repro.algorithms.attributes import AttributeSpace, Observation
from repro.algorithms.base import CasePrediction, MiningAlgorithm
from repro.algorithms.registry import create_algorithm
from repro.exec.locks import RWLock


class MiningModel:
    """One mining model in the provider catalog."""

    def __init__(self, definition: ModelDefinition):
        self.definition = definition
        self.algorithm: MiningAlgorithm = create_algorithm(
            definition.algorithm, definition.parameters)
        self.space: Optional[AttributeSpace] = None
        self.training_cases: List[MappedCase] = []
        self.insert_count = 0       # number of INSERT INTO statements consumed
        self._content_root: Optional[ContentNode] = None
        # Concurrency: predictions/content reads share, training/reset/DROP
        # are exclusive.  Not pickled — recreated on unpickle.  The name
        # keys the DM_LOCK_WAITS contention table.
        self.lock = RWLock(name=f"model:{definition.name.upper()}")

    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self.lock = RWLock(name=f"model:{self.definition.name.upper()}")

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def is_trained(self) -> bool:
        return self.algorithm.trained

    @property
    def case_count(self) -> int:
        return len(self.training_cases)

    # -- life cycle -----------------------------------------------------------

    def train(self, cases: List[MappedCase], pool=None, dop: int = 1) -> int:
        """Consume a caseset (INSERT INTO semantics); returns cases consumed.

        Cases accumulate across INSERT statements.  Services that declare
        ``SUPPORTS_INCREMENTAL`` absorb the new cases into the existing
        model when every case fits the fitted attribute space (same
        categories, items, and discretizer ranges); otherwise — and for all
        other services — the algorithm retrains over the full accumulated
        caseset, so a second INSERT acts as a refresh with more data.

        With a worker ``pool`` and ``dop > 1`` the refit may run
        partitioned (see :mod:`repro.exec.partition`); eligibility gates
        guarantee the result is identical to the serial refit.
        """
        if not cases:
            raise TrainError(
                f"INSERT INTO {self.name!r}: the source produced no cases")
        before = len(self.training_cases)
        self.training_cases.extend(cases)
        self.insert_count += 1
        try:
            if self._absorb_incrementally(cases):
                return len(cases)
            self._refit(pool=pool, dop=dop)
        except BaseException:
            # A failed (or cancelled) refit must not leave this INSERT's
            # cases in the accumulated caseset: the next INSERT would then
            # silently train over data no acknowledged statement delivered.
            del self.training_cases[before:]
            self.insert_count -= 1
            raise
        return len(cases)

    def _absorb_incrementally(self, cases: List[MappedCase]) -> bool:
        if not (self.is_trained and self.space is not None and
                self.algorithm.SUPPORTS_INCREMENTAL):
            return False
        if not all(self.space.covers(case) for case in cases):
            return False
        observations = self.space.encode_many(cases)
        self.algorithm.partial_train(observations)
        self.space.absorb(observations, len(cases))
        self._content_root = None
        return True

    def _refit(self, pool=None, dop: int = 1) -> None:
        space = AttributeSpace(self.definition)
        space.fit_schema(self.training_cases)
        if pool is not None and dop > 1:
            from repro.exec.partition import train_partitioned
            if train_partitioned(self, space, pool, dop):
                return
        observations = space.encode_many(self.training_cases)
        space.marginals_from_observations(observations)
        self.algorithm.train(space, observations)
        self.space = space
        self._content_root = None

    def adopt_cases(self, cases: List[MappedCase]) -> None:
        """Install a restored caseset without retraining (snapshot restore).

        The trained state travels separately (PMML); adopting the cases a
        snapshot preserved means a *subsequent* INSERT INTO still refreshes
        over the full accumulated history, exactly as if the process had
        never died.
        """
        self.training_cases = list(cases)

    def reset(self) -> None:
        """DELETE FROM semantics: drop content, keep the definition."""
        self.training_cases = []
        self.insert_count = 0
        self.space = None
        self._content_root = None
        self.algorithm.reset()

    def require_trained(self) -> None:
        if not self.is_trained or self.space is None:
            raise NotTrainedError(
                f"model {self.name!r} is not populated; INSERT INTO it "
                f"before predicting or browsing content")

    # -- prediction -----------------------------------------------------------

    def encode(self, case: MappedCase) -> Observation:
        self.require_trained()
        return self.space.encode(case)

    def predict_case(self, case: MappedCase) -> CasePrediction:
        self.require_trained()
        return self.algorithm.predict(self.space.encode(case))

    def predict_cases(self, cases: List[MappedCase]) -> List[CasePrediction]:
        return [self.predict_case(case) for case in cases]

    # -- content --------------------------------------------------------------

    def content_root(self) -> ContentNode:
        """The (cached) content graph of section 3.3."""
        self.require_trained()
        if self._content_root is None:
            self._content_root = self.algorithm.content_nodes()
        return self._content_root

    def __repr__(self) -> str:
        state = f"trained on {self.case_count} cases" if self.is_trained \
            else "not trained"
        return (f"MiningModel({self.name!r}, "
                f"USING {self.algorithm.SERVICE_NAME}, {state})")
