"""Compiled mining-model column structure (paper section 3.2).

``compile_model_definition`` validates a parsed CREATE MINING MODEL statement
and produces a :class:`ModelDefinition`: a tree of :class:`ModelColumn`
objects carrying the content roles (KEY / ATTRIBUTE / RELATION / QUALIFIER /
TABLE), attribute types (DISCRETE / CONTINUOUS / DISCRETIZED / ORDERED /
CYCLICAL / SEQUENCE_TIME), distribution hints, and prediction flags of
sections 3.2.1-3.2.4.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional

from repro.errors import SchemaError
from repro.lang import ast_nodes as ast
from repro.sqlstore.types import SqlType, type_from_name


class ContentRole(enum.Enum):
    """Section 3.2.1: what a column *is* within a case."""
    KEY = "KEY"
    ATTRIBUTE = "ATTRIBUTE"
    RELATION = "RELATION"      # RELATED TO <key or attribute>
    QUALIFIER = "QUALIFIER"    # PROBABILITY/SUPPORT/... OF <attribute>
    TABLE = "TABLE"            # nested table


class AttributeType(enum.Enum):
    """Section 3.2.2: how an attribute's values behave."""
    DISCRETE = "DISCRETE"
    CONTINUOUS = "CONTINUOUS"
    DISCRETIZED = "DISCRETIZED"
    ORDERED = "ORDERED"
    CYCLICAL = "CYCLICAL"
    SEQUENCE_TIME = "SEQUENCE_TIME"


QUALIFIER_KINDS = ("PROBABILITY", "VARIANCE", "SUPPORT",
                   "PROBABILITY_VARIANCE", "STDEV", "ORDER")

# Attribute types that behave categorically once training data is bound.
CATEGORICAL_TYPES = (AttributeType.DISCRETE, AttributeType.ORDERED,
                     AttributeType.CYCLICAL, AttributeType.DISCRETIZED)


class ModelColumn:
    """One compiled column of a mining model (scalar or nested table)."""

    def __init__(self, name: str, role: ContentRole,
                 data_type: Optional[SqlType] = None,
                 attribute_type: Optional[AttributeType] = None,
                 predict: bool = False, predict_only: bool = False,
                 related_to: Optional[str] = None,
                 qualifier: Optional[str] = None,
                 qualifier_of: Optional[str] = None,
                 distribution: Optional[str] = None,
                 model_existence_only: bool = False,
                 not_null: bool = False,
                 discretization_method: Optional[str] = None,
                 discretization_buckets: Optional[int] = None,
                 sequence_time: bool = False,
                 nested_columns: Optional[List["ModelColumn"]] = None):
        self.name = name
        self.role = role
        self.data_type = data_type
        self.attribute_type = attribute_type
        self.predict = predict
        self.predict_only = predict_only
        self.related_to = related_to
        self.qualifier = qualifier
        self.qualifier_of = qualifier_of
        self.distribution = distribution
        self.model_existence_only = model_existence_only
        self.not_null = not_null
        self.discretization_method = discretization_method
        self.discretization_buckets = discretization_buckets
        self.sequence_time = sequence_time
        self.nested_columns = nested_columns

    @property
    def is_table(self) -> bool:
        return self.role is ContentRole.TABLE

    @property
    def is_input(self) -> bool:
        """Usable as a source column for prediction (section 3.2.4)."""
        if self.role not in (ContentRole.ATTRIBUTE, ContentRole.TABLE,
                             ContentRole.RELATION):
            return False
        return not self.predict_only

    @property
    def is_output(self) -> bool:
        return self.predict and self.role in (ContentRole.ATTRIBUTE,
                                              ContentRole.TABLE)

    @property
    def is_categorical(self) -> bool:
        return self.attribute_type in CATEGORICAL_TYPES

    def find_nested(self, name: str) -> Optional["ModelColumn"]:
        for column in self.nested_columns or []:
            if column.name.upper() == name.upper():
                return column
        return None

    def key_column(self) -> Optional["ModelColumn"]:
        """The KEY column of a nested TABLE column."""
        for column in self.nested_columns or []:
            if column.role is ContentRole.KEY:
                return column
        return None

    def __repr__(self) -> str:
        return (f"ModelColumn({self.name!r}, {self.role.value}"
                f"{', PREDICT' if self.predict else ''})")


class ModelDefinition:
    """The full compiled schema of one mining model."""

    def __init__(self, name: str, columns: List[ModelColumn],
                 algorithm: str, parameters: Dict[str, object]):
        self.name = name
        self.columns = columns
        self.algorithm = algorithm
        self.parameters = parameters

    def find(self, name: str) -> Optional[ModelColumn]:
        for column in self.columns:
            if column.name.upper() == name.upper():
                return column
        return None

    def case_key(self) -> Optional[ModelColumn]:
        for column in self.columns:
            if column.role is ContentRole.KEY:
                return column
        return None

    def scalar_attributes(self) -> List[ModelColumn]:
        return [c for c in self.columns
                if c.role in (ContentRole.ATTRIBUTE, ContentRole.RELATION)]

    def nested_tables(self) -> List[ModelColumn]:
        return [c for c in self.columns if c.is_table]

    def qualifiers_for(self, target: ModelColumn) -> List[ModelColumn]:
        """QUALIFIER columns modifying ``target`` (same level, OF target)."""
        return [c for c in self.columns
                if c.role is ContentRole.QUALIFIER and
                c.qualifier_of and
                c.qualifier_of.upper() == target.name.upper()]

    def output_columns(self) -> List[ModelColumn]:
        return [c for c in self.columns if c.is_output]

    def __repr__(self) -> str:
        return (f"ModelDefinition({self.name!r}, {len(self.columns)} columns, "
                f"USING {self.algorithm})")


def compile_model_definition(
        statement: ast.CreateMiningModelStatement) -> ModelDefinition:
    """Validate a parsed CREATE MINING MODEL and compile its column tree."""
    columns = _compile_level(statement.columns, level_name=statement.name,
                             top_level=True)
    return ModelDefinition(
        name=statement.name,
        columns=columns,
        algorithm=statement.algorithm,
        parameters={name.upper(): value
                    for name, value in statement.parameters})


def _compile_level(defs: List[ast.ModelColumnDef], level_name: str,
                   top_level: bool) -> List[ModelColumn]:
    columns: List[ModelColumn] = []
    seen: Dict[str, ast.ModelColumnDef] = {}
    for definition in defs:
        key = definition.name.upper()
        if key in seen:
            raise SchemaError(
                f"duplicate column {definition.name!r} in {level_name!r}")
        seen[key] = definition
        columns.append(_compile_column(definition, level_name, top_level))

    keys = [c for c in columns if c.role is ContentRole.KEY]
    if len(keys) > 1:
        raise SchemaError(
            f"{level_name!r} declares {len(keys)} KEY columns; at most one "
            f"is allowed per level")
    if not top_level and not keys:
        raise SchemaError(
            f"nested table {level_name!r} requires a KEY column "
            f"(paper section 3.1: the key identifies a row of the nested "
            f"table)")

    names = {c.name.upper() for c in columns}
    for column in columns:
        if column.related_to and column.related_to.upper() not in names:
            raise SchemaError(
                f"column {column.name!r}: RELATED TO target "
                f"{column.related_to!r} not found in {level_name!r}")
        if column.qualifier_of:
            target_name = column.qualifier_of.upper()
            if target_name not in names:
                raise SchemaError(
                    f"column {column.name!r}: qualifier target "
                    f"{column.qualifier_of!r} not found in {level_name!r}")
            target = next(c for c in columns
                          if c.name.upper() == target_name)
            if target.role not in (ContentRole.ATTRIBUTE,
                                   ContentRole.RELATION):
                raise SchemaError(
                    f"column {column.name!r}: qualifiers may only modify "
                    f"attribute columns, not {target.role.value}")
    return columns


def _compile_column(definition: ast.ModelColumnDef, level_name: str,
                    top_level: bool) -> ModelColumn:
    if definition.is_table:
        if not top_level:
            raise SchemaError(
                f"nested table {definition.name!r} inside nested table "
                f"{level_name!r}: only one level of nesting is supported")
        nested = _compile_level(definition.nested_columns,
                                level_name=definition.name, top_level=False)
        return ModelColumn(
            name=definition.name, role=ContentRole.TABLE,
            predict=definition.predict, predict_only=definition.predict_only,
            nested_columns=nested)

    data_type = type_from_name(definition.data_type)
    content = (definition.content_type or "").upper()

    if definition.qualifier:
        if definition.predict:
            raise SchemaError(
                f"qualifier column {definition.name!r} cannot be PREDICT")
        return ModelColumn(
            name=definition.name, role=ContentRole.QUALIFIER,
            data_type=data_type, qualifier=definition.qualifier,
            qualifier_of=definition.qualifier_of,
            not_null=definition.not_null)

    if content == "KEY":
        if definition.predict:
            raise SchemaError(
                f"KEY column {definition.name!r} cannot be PREDICT")
        return ModelColumn(name=definition.name, role=ContentRole.KEY,
                           data_type=data_type,
                           sequence_time=definition.sequence_time)

    attribute_type = AttributeType(content) if content else \
        AttributeType.DISCRETE
    if attribute_type in (AttributeType.CONTINUOUS,
                          AttributeType.DISCRETIZED) and \
            data_type.name not in ("LONG", "DOUBLE", "DATE"):
        raise SchemaError(
            f"column {definition.name!r}: {attribute_type.value} requires a "
            f"numeric data type, got {data_type.name}")

    role = ContentRole.RELATION if definition.related_to else \
        ContentRole.ATTRIBUTE
    if role is ContentRole.RELATION and definition.predict:
        raise SchemaError(
            f"RELATION column {definition.name!r} cannot be PREDICT "
            f"(it classifies {definition.related_to!r}, it is not an "
            f"attribute of the case)")

    return ModelColumn(
        name=definition.name, role=role, data_type=data_type,
        attribute_type=attribute_type, predict=definition.predict,
        predict_only=definition.predict_only,
        related_to=definition.related_to,
        distribution=definition.distribution,
        model_existence_only=definition.model_existence_only,
        not_null=definition.not_null,
        discretization_method=definition.discretization_method,
        discretization_buckets=definition.discretization_buckets,
        sequence_time=(definition.sequence_time or
                       definition.content_type == "SEQUENCE_TIME"))
