"""Prediction functions (UDFs) on output columns — paper section 3.2.4.

"OLE DB DM defines a set of standard transformation functions on output
columns ... Some UDFs are scalar-valued, such as probability, or support.
Others have tables as values, such as histogram and hence return nested
tables when invoked."

Each function here receives the active :class:`PredictionScope` (model, the
current mapped case, and its lazily-computed :class:`CasePrediction`) plus
the raw argument AST, because most arguments name *attributes* rather than
values (``PredictProbability([Age])``).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import BindError, PredictionError
from repro.lang import ast_nodes as ast
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.types import DOUBLE, LONG, TEXT
from repro.algorithms.attributes import Attribute
from repro.algorithms.base import AttributePrediction, PredictionBucket


class PredictionScope:
    """Everything a UDF may consult for the current case."""

    def __init__(self, model, case, evaluator):
        self.model = model
        self.case = case
        self._prediction = None
        self.evaluate = evaluator  # evaluates plain (non-attribute) args

    @property
    def prediction(self):
        if self._prediction is None:
            self._prediction = self.model.predict_case(self.case)
        return self._prediction

    # -- argument resolution ----------------------------------------------------

    def strip_model_qualifier(self, parts) -> tuple:
        if len(parts) > 1 and parts[0].upper() == self.model.name.upper():
            return tuple(parts[1:])
        return tuple(parts)

    def target_attribute(self, arg: ast.Expr) -> Attribute:
        """Resolve a UDF argument naming a scalar model attribute."""
        if not isinstance(arg, ast.ColumnRef):
            raise PredictionError(
                "prediction functions take a model column reference, e.g. "
                "PredictProbability([Age])")
        parts = self.strip_model_qualifier(arg.parts)
        name = ".".join(parts) if len(parts) > 1 else parts[0]
        attribute = self.model.space.by_name(name)
        if attribute is None and len(parts) == 1:
            attribute = self.model.space.by_name(parts[0])
        if attribute is None:
            raise BindError(
                f"model {self.model.name!r} has no attribute {name!r}")
        return attribute

    def target_table(self, arg: ast.Expr) -> Optional[str]:
        """Resolve a UDF argument naming a nested TABLE column, or None."""
        if not isinstance(arg, ast.ColumnRef):
            return None
        parts = self.strip_model_qualifier(arg.parts)
        if len(parts) != 1:
            return None
        column = self.model.definition.find(parts[0])
        if column is not None and column.is_table:
            return column.name
        return None

    def attribute_prediction(self, arg: ast.Expr) -> AttributePrediction:
        attribute = self.target_attribute(arg)
        prediction = self.prediction.get(attribute)
        if prediction is None:
            # Not an output of this algorithm: fall back to the marginals.
            prediction = self.model.algorithm.marginal_prediction(attribute)
        return prediction


# ---------------------------------------------------------------------------
# Histogram rowsets
# ---------------------------------------------------------------------------

def histogram_rowset(name: str, buckets: List[PredictionBucket]) -> Rowset:
    """The nested rowset shape shared by PredictHistogram and friends."""
    columns = [
        RowsetColumn(name, TEXT),
        RowsetColumn("$SUPPORT", DOUBLE),
        RowsetColumn("$PROBABILITY", DOUBLE),
        RowsetColumn("$VARIANCE", DOUBLE),
        RowsetColumn("$STDEV", DOUBLE),
    ]
    rows = []
    for bucket in buckets:
        variance = bucket.variance
        stdev = variance ** 0.5 if variance is not None else None
        rows.append((bucket.value, bucket.support, bucket.probability,
                     variance, stdev))
    return Rowset(columns, rows)


def cluster_histogram_rowset(scope: PredictionScope) -> Rowset:
    columns = [
        RowsetColumn("$CLUSTER", LONG),
        RowsetColumn("$PROBABILITY", DOUBLE),
        RowsetColumn("$SUPPORT", DOUBLE),
    ]
    probabilities = scope.prediction.cluster_probabilities
    total = scope.model.space.total_weight
    rows = sorted(
        ((cluster + 1, float(p), float(p) * total)
         for cluster, p in enumerate(probabilities)),
        key=lambda row: -row[1])
    return Rowset(columns, rows)


# ---------------------------------------------------------------------------
# The functions
# ---------------------------------------------------------------------------

def fn_predict(scope: PredictionScope, args: List[ast.Expr]) -> Any:
    """Predict(<column>): best estimate; for TABLE columns, the
    recommendation rowset (association/sequence models)."""
    if not args:
        raise PredictionError("Predict() requires a column argument")
    table = scope.target_table(args[0])
    if table is not None:
        return fn_predict_association(scope, args)
    return scope.attribute_prediction(args[0]).value


def fn_predict_probability(scope: PredictionScope,
                           args: List[ast.Expr]) -> Optional[float]:
    """PredictProbability(col[, value]): probability of the predicted (or a
    specific) value."""
    prediction = scope.attribute_prediction(args[0])
    if len(args) == 1:
        return prediction.probability
    target = scope.evaluate(args[1])
    for bucket in prediction.histogram:
        if _value_equal(bucket.value, target):
            return bucket.probability
    return 0.0


def fn_predict_support(scope: PredictionScope,
                       args: List[ast.Expr]) -> Optional[float]:
    prediction = scope.attribute_prediction(args[0])
    if len(args) == 1:
        return prediction.support
    target = scope.evaluate(args[1])
    for bucket in prediction.histogram:
        if _value_equal(bucket.value, target):
            return bucket.support
    return 0.0


def fn_predict_variance(scope: PredictionScope,
                        args: List[ast.Expr]) -> Optional[float]:
    return scope.attribute_prediction(args[0]).variance


def fn_predict_stdev(scope: PredictionScope,
                     args: List[ast.Expr]) -> Optional[float]:
    variance = scope.attribute_prediction(args[0]).variance
    return variance ** 0.5 if variance is not None else None


def fn_predict_histogram(scope: PredictionScope,
                         args: List[ast.Expr]) -> Rowset:
    """PredictHistogram(col) or PredictHistogram(Cluster())."""
    if args and isinstance(args[0], ast.FuncCall) and \
            args[0].name.upper() == "CLUSTER":
        return cluster_histogram_rowset(scope)
    table = scope.target_table(args[0]) if args else None
    if table is not None:
        buckets = scope.prediction.recommendations.get(table.upper(), [])
        return histogram_rowset(_table_key_name(scope, table), buckets)
    prediction = scope.attribute_prediction(args[0])
    return histogram_rowset(prediction.attribute.name, prediction.histogram)


def fn_predict_association(scope: PredictionScope,
                           args: List[ast.Expr]) -> Rowset:
    """PredictAssociation(table[, n]): top-n recommended nested-table items."""
    if not args:
        raise PredictionError(
            "PredictAssociation requires a nested TABLE column argument")
    table = scope.target_table(args[0])
    if table is None:
        raise PredictionError(
            "PredictAssociation requires a nested TABLE column argument")
    buckets = scope.prediction.recommendations.get(table.upper())
    if buckets is None:
        # Models without explicit recommendations: rank existence attributes
        # by predicted membership probability.
        buckets = []
        for attribute in scope.model.space.existence_attributes(table):
            prediction = scope.prediction.get(attribute)
            if prediction is None:
                continue
            probability = 0.0
            for bucket in prediction.histogram:
                if bucket.value is True:
                    probability = bucket.probability
            buckets.append(PredictionBucket(attribute.key_value, probability,
                                            prediction.support))
        buckets.sort(key=lambda b: (-b.probability, str(b.value)))
    limit = None
    if len(args) > 1:
        limit = int(scope.evaluate(args[1]))
    if limit is not None:
        buckets = buckets[:limit]
    return histogram_rowset(_table_key_name(scope, table), buckets)


def fn_cluster(scope: PredictionScope, args: List[ast.Expr]) -> Optional[int]:
    """Cluster(): the 1-based id of the most probable cluster."""
    cluster = scope.prediction.cluster_id
    if cluster is None:
        raise PredictionError(
            f"model {scope.model.name!r} ({scope.model.algorithm.SERVICE_NAME}) "
            f"is not a clustering model")
    return cluster


def fn_cluster_probability(scope: PredictionScope,
                           args: List[ast.Expr]) -> float:
    probabilities = scope.prediction.cluster_probabilities
    if not probabilities:
        raise PredictionError(
            f"model {scope.model.name!r} is not a clustering model")
    if args:
        cluster = int(scope.evaluate(args[0]))
        if not 1 <= cluster <= len(probabilities):
            raise PredictionError(
                f"cluster id {cluster} out of range 1..{len(probabilities)}")
        return probabilities[cluster - 1]
    return max(probabilities)


def fn_cluster_distance(scope: PredictionScope,
                        args: List[ast.Expr]) -> float:
    distances = scope.prediction.cluster_distances
    if not distances:
        # EM models: use 1 - probability as a distance surrogate.
        return 1.0 - fn_cluster_probability(scope, args)
    if args:
        cluster = int(scope.evaluate(args[0]))
        return distances[cluster - 1]
    return distances[scope.prediction.cluster_id - 1]


def _range_bucket(scope: PredictionScope, args: List[ast.Expr]):
    attribute = scope.target_attribute(args[0])
    if attribute.discretizer is None:
        raise PredictionError(
            f"RangeMin/Mid/Max require a DISCRETIZED column; "
            f"{attribute.name!r} is not discretized")
    predicted = scope.attribute_prediction(args[0]).value
    for bucket in range(attribute.discretizer.bucket_count):
        if attribute.discretizer.label(bucket) == predicted:
            return attribute.discretizer, bucket
    raise PredictionError(
        f"predicted value {predicted!r} is not a bucket of "
        f"{attribute.name!r}")


def fn_range_min(scope: PredictionScope, args: List[ast.Expr]) -> float:
    discretizer, bucket = _range_bucket(scope, args)
    return discretizer.range_of(bucket)[0]


def fn_range_mid(scope: PredictionScope, args: List[ast.Expr]) -> float:
    discretizer, bucket = _range_bucket(scope, args)
    return discretizer.midpoint_of(bucket)


def fn_range_max(scope: PredictionScope, args: List[ast.Expr]) -> float:
    discretizer, bucket = _range_bucket(scope, args)
    return discretizer.range_of(bucket)[1]


# ---------------------------------------------------------------------------
# Table transforms: TopCount / TopSum / TopPercent
# ---------------------------------------------------------------------------

def _rank_column_index(rowset: Rowset, arg: ast.Expr) -> int:
    if isinstance(arg, ast.ColumnRef):
        return rowset.index_of(arg.parts[-1])
    if isinstance(arg, ast.Literal) and isinstance(arg.value, str):
        return rowset.index_of(arg.value)
    raise PredictionError(
        "the rank argument must name a column of the table expression, "
        "e.g. TopCount(PredictHistogram([Age]), [$PROBABILITY], 3)")


def _table_argument(scope: PredictionScope, arg: ast.Expr) -> Rowset:
    value = scope.evaluate(arg)
    if not isinstance(value, Rowset):
        raise PredictionError(
            "the first argument of TopCount/TopSum/TopPercent must be "
            "table-valued (e.g. PredictHistogram(...))")
    return value


def fn_top_count(scope: PredictionScope, args: List[ast.Expr]) -> Rowset:
    """TopCount(table, rank_column, n): n rows with the largest rank."""
    if len(args) != 3:
        raise PredictionError("TopCount(table, rank_column, n)")
    rowset = _table_argument(scope, args[0])
    rank = _rank_column_index(rowset, args[1])
    count = int(scope.evaluate(args[2]))
    rows = sorted(rowset.rows,
                  key=lambda row: -(row[rank] if row[rank] is not None
                                    else float("-inf")))
    return Rowset(rowset.columns, rows[:count])


def fn_top_sum(scope: PredictionScope, args: List[ast.Expr]) -> Rowset:
    """TopSum(table, rank_column, threshold): smallest prefix of rank-sorted
    rows whose rank values sum to at least the threshold."""
    if len(args) != 3:
        raise PredictionError("TopSum(table, rank_column, threshold)")
    rowset = _table_argument(scope, args[0])
    rank = _rank_column_index(rowset, args[1])
    threshold = float(scope.evaluate(args[2]))
    rows = sorted(rowset.rows,
                  key=lambda row: -(row[rank] if row[rank] is not None
                                    else float("-inf")))
    output = []
    accumulated = 0.0
    for row in rows:
        output.append(row)
        accumulated += row[rank] or 0.0
        if accumulated >= threshold:
            break
    return Rowset(rowset.columns, output)


def fn_top_percent(scope: PredictionScope, args: List[ast.Expr]) -> Rowset:
    """TopPercent(table, rank_column, percent): prefix covering percent% of
    the rank column's total."""
    if len(args) != 3:
        raise PredictionError("TopPercent(table, rank_column, percent)")
    rowset = _table_argument(scope, args[0])
    rank = _rank_column_index(rowset, args[1])
    percent = float(scope.evaluate(args[2]))
    total = sum(row[rank] or 0.0 for row in rowset.rows)
    return fn_top_sum_impl(rowset, rank, total * percent / 100.0)


def fn_top_sum_impl(rowset: Rowset, rank: int, threshold: float) -> Rowset:
    rows = sorted(rowset.rows,
                  key=lambda row: -(row[rank] if row[rank] is not None
                                    else float("-inf")))
    output = []
    accumulated = 0.0
    for row in rows:
        output.append(row)
        accumulated += row[rank] or 0.0
        if accumulated >= threshold:
            break
    return Rowset(rowset.columns, output)


def _table_key_name(scope: PredictionScope, table: str) -> str:
    """Column header for a nested recommendation histogram.

    For market-basket tables the recommended values are key values; for
    SEQUENCE_TIME tables they are states of the sequence state column.
    """
    column = scope.model.definition.find(table)
    if column is None:
        return table
    has_time = any(getattr(c, "sequence_time", False)
                   for c in column.nested_columns or [])
    if has_time:
        from repro.algorithms.attributes import AttributeSpace
        return AttributeSpace.sequence_state_column(column).name
    key = column.key_column()
    return key.name if key is not None else table


def _value_equal(a: Any, b: Any) -> bool:
    if a is None or b is None:
        return a is b
    if isinstance(a, str) and isinstance(b, str):
        return a.upper() == b.upper()
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        return float(a) == float(b)
    return a == b


PREDICTION_FUNCTIONS = {
    "PREDICT": fn_predict,
    "PREDICTPROBABILITY": fn_predict_probability,
    "PREDICTSUPPORT": fn_predict_support,
    "PREDICTVARIANCE": fn_predict_variance,
    "PREDICTSTDEV": fn_predict_stdev,
    "PREDICTHISTOGRAM": fn_predict_histogram,
    "PREDICTASSOCIATION": fn_predict_association,
    "CLUSTER": fn_cluster,
    "CLUSTERPROBABILITY": fn_cluster_probability,
    "CLUSTERDISTANCE": fn_cluster_distance,
    "RANGEMIN": fn_range_min,
    "RANGEMID": fn_range_mid,
    "RANGEMAX": fn_range_max,
    "TOPCOUNT": fn_top_count,
    "TOPSUM": fn_top_sum,
    "TOPPERCENT": fn_top_percent,
}
