"""OLE DB for Data Mining, reproduced in Python.

A from-scratch implementation of the API proposed in Netz, Chaudhuri,
Fayyad, Bernhardt: *Integrating Data Mining with SQL Databases: OLE DB for
Data Mining* (ICDE 2001): mining models as first-class database objects,
driven by a SQL-flavoured command language (DMX).

Quickstart::

    import repro

    conn = repro.connect()
    conn.execute("CREATE TABLE Customers ([Customer ID] LONG, Gender TEXT, "
                 "Age DOUBLE)")
    conn.execute("INSERT INTO Customers VALUES (1, 'Male', 35.0)")
    conn.execute('''
        CREATE MINING MODEL [Age Prediction] (
            [Customer ID] LONG KEY,
            [Gender] TEXT DISCRETE,
            [Age] DOUBLE DISCRETIZED PREDICT
        ) USING [Decision_Trees_101]
    ''')
    conn.execute("INSERT INTO [Age Prediction] "
                 "SELECT [Customer ID], Gender, Age FROM Customers")
    rows = conn.execute('''
        SELECT t.[Customer ID], [Age Prediction].[Age]
        FROM [Age Prediction] NATURAL PREDICTION JOIN
             (SELECT [Customer ID], Gender FROM Customers) AS t
    ''')

Public surface: :func:`connect`, :class:`Connection`, :class:`Provider`,
:class:`Rowset`, the exception hierarchy in :mod:`repro.errors`, and the
algorithm plug-in API (:class:`MiningAlgorithm`,
:func:`register_algorithm`).
"""

from repro.errors import (
    BindError,
    CapabilityError,
    CatalogError,
    Error,
    NotTrainedError,
    ParseError,
    PredictionError,
    SchemaError,
    TrainError,
)
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.engine import Database
from repro.shaping import Case, Caseset, execute_shape, flatten_rowset
from repro.core.provider import Connection, Provider, connect
from repro.core.model import MiningModel
from repro.core.persistence import (
    dump_provider,
    load_provider,
    open_provider,
    save_provider,
)
from repro.algorithms import (
    MiningAlgorithm,
    register_algorithm,
    algorithm_services,
)
from repro.reporting import render_model

__version__ = "1.0.0"

__all__ = [
    "connect",
    "Connection",
    "Provider",
    "MiningModel",
    "Database",
    "Rowset",
    "RowsetColumn",
    "Case",
    "Caseset",
    "execute_shape",
    "flatten_rowset",
    "MiningAlgorithm",
    "register_algorithm",
    "algorithm_services",
    "dump_provider",
    "load_provider",
    "save_provider",
    "open_provider",
    "render_model",
    "Error",
    "ParseError",
    "BindError",
    "SchemaError",
    "TrainError",
    "PredictionError",
    "NotTrainedError",
    "CatalogError",
    "CapabilityError",
    "__version__",
]
