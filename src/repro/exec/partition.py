"""Partitioned training and parallel PREDICTION JOIN drivers.

Both hot paths follow the same contract: **parallel execution must be
observationally identical to serial execution** — same model content, same
prediction rows in the same order — or the statement silently runs serially
and says so through ``pool.serial_fallbacks.*`` metrics.  The eligibility
gates here are therefore conservative:

* Partitioned training requires the algorithm to declare
  ``PARALLELIZABLE = True`` *and* accept the fitted space via
  ``can_parallelize`` (naive Bayes, for instance, demands an all-categorical
  space so every merged statistic is an exact integer sum — see
  ``docs/internals.md`` for the soundness argument).
* Parallel prediction requires no blocking clause (ORDER BY / DISTINCT run
  serially) and no subquery in the projection or WHERE (subqueries bind to
  the parent's database and cannot ship to a worker).
* In process mode both paths additionally pre-flight ``pickle`` on the task
  constants, so a custom unpicklable algorithm degrades to serial instead
  of crashing mid-statement.

Worker functions are module-level and pure: they receive everything through
their payload, return plain data, and never touch the parent's metrics or
tracer (worker-side spans cannot cross a process boundary; the parent pins
per-task counters onto its own captured span instead).
"""

from __future__ import annotations

import dataclasses
import functools
import pickle
from typing import Any, List, Optional, Sequence

from repro.lang import ast_nodes as ast
from repro.obs import trace as obs_trace
from repro.obs import workload as obs_workload
from repro.sqlstore.expressions import evaluate
from repro.core.bindings import case_mapper, pair_mapper
from repro.core.prediction import (
    PredictionEvalContext,
    _expand_select_list,
    _source_context,
    resolve_prediction_source_stream,
    split_on_condition,
)

# -- shared helpers ------------------------------------------------------------


def contiguous_chunks(items: Sequence[Any], parts: int) -> List[Sequence[Any]]:
    """Split into at most ``parts`` contiguous runs of near-equal size.

    Contiguity matters: concatenating the chunks reproduces the original
    order, which is what makes partition merges order-exact.
    """
    count = max(1, min(parts, len(items)))
    size = -(-len(items) // count)  # ceil division
    return [items[start:start + size]
            for start in range(0, len(items), size)]


def _picklable(*objects) -> bool:
    try:
        for obj in objects:
            pickle.dumps(obj)
        return True
    except Exception:
        return False


def _walk_expr_nodes(node):
    """Yield every AST dataclass reachable from ``node`` (depth-first)."""
    stack = [node]
    while stack:
        current = stack.pop()
        if isinstance(current, (list, tuple)):
            stack.extend(current)
            continue
        if not dataclasses.is_dataclass(current):
            continue
        yield current
        for field in dataclasses.fields(current):
            stack.append(getattr(current, field.name))


def _contains_subquery(nodes) -> bool:
    for root in nodes:
        for node in _walk_expr_nodes(root):
            if isinstance(node, (ast.SubSelect, ast.InSelect)):
                return True
    return False


# -- EXPLAIN previews ----------------------------------------------------------
#
# Read-only mirrors of the eligibility gates below, for the EXPLAIN planner.
# They must never touch pool metrics (no note_serial_fallback) and never
# require run-time state (a fitted space, the post-INSERT caseset size), so
# a gate that can only be decided mid-statement reports "candidate".


def training_parallelism_preview(model, pool, dop: int):
    """``(strategy, reason)`` for a training statement, without side effects."""
    algorithm = model.algorithm
    if pool is None or pool.mode == "serial":
        return "serial", "pool mode is serial"
    if dop < 2:
        return "serial", "effective dop is 1"
    if not algorithm.PARALLELIZABLE:
        return "serial", f"{algorithm.SERVICE_NAME} is not parallelizable"
    return ("parallel candidate",
            f"dop={dop}; space and caseset-size checks at run time")


def source_rows_estimate(provider, statement) -> Optional[int]:
    """Estimated PREDICTION JOIN source cardinality for the parallel gate.

    Only statistics-backed estimates count (``stats_enabled``) — without
    them the original always-parallel behaviour is kept, which is the
    differential suite's baseline.  Read-only, so the EXPLAIN preview may
    call it too.
    """
    database = provider.database
    if not getattr(database, "stats_enabled", False):
        return None
    try:
        return database._estimate_ref_rows(statement.from_clause.source)
    except Exception:
        return None


def prediction_parallelism_preview(provider, statement, dop: int):
    """``(strategy, reason)`` for a PREDICTION JOIN, without side effects."""
    pool = provider.pool
    if pool is None or pool.mode == "serial":
        return "serial", "pool mode is serial"
    if dop < 2:
        return "serial", "effective dop is 1"
    if statement.order_by or statement.distinct:
        return "serial", "blocking clause (ORDER BY / DISTINCT)"
    roots = [item.expr for item in statement.select_list]
    if statement.where is not None:
        roots.append(statement.where)
    if _contains_subquery(roots):
        return "serial", "subquery in projection or WHERE"
    est = source_rows_estimate(provider, statement)
    if est is not None and est < 2 * dop:
        return "serial", f"small input (~{est} rows < 2*dop={2 * dop})"
    reason = f"dop={dop}"
    if pool.mode == "process":
        reason += "; pickle check at run time"
    return "parallel", reason


# -- partitioned training ------------------------------------------------------


def _train_partition(space, algorithm_class, parameters, cases):
    """Worker task: encode one contiguous partition and train a replica.

    Returns ``(replica, marginal_partials)``.  Runs without an active
    tracer (worker threads/processes), so the algorithm's own spans no-op
    and the result is independent of observability state.
    """
    observations = space.encode_many(cases)
    partials = space.partial_marginals(observations)
    replica = algorithm_class(dict(parameters))
    replica.train(space, observations)
    return replica, partials


def train_partitioned(model, space, pool, dop: int) -> bool:
    """Try to refit ``model`` over ``dop`` partitions; True if it ran.

    ``space`` arrives with the dictionary pass done (``fit_schema``) but
    marginals unfitted; on success the partitions' marginal partials are
    merged in partition order and the merged replica is installed.  On any
    ineligibility the caller's serial refit proceeds with the same fitted
    schema, so no work is wasted.
    """
    algorithm = model.algorithm
    if not algorithm.PARALLELIZABLE:
        pool.note_serial_fallback("algorithm")
        return False
    if not algorithm.can_parallelize(space):
        pool.note_serial_fallback("space")
        return False
    chunks = contiguous_chunks(model.training_cases, dop)
    if len(chunks) < 2:
        pool.note_serial_fallback("caseset_size")
        return False
    parameters = dict(algorithm.parameters)
    if pool.mode == "process" and not _picklable(
            space, type(algorithm), parameters, chunks[0][:1]):
        pool.note_serial_fallback("pickle")
        return False

    span = obs_trace.span("train.partitioned",
                          service=algorithm.SERVICE_NAME,
                          partitions=len(chunks), dop=dop)
    with span:
        task = functools.partial(_train_partition, space, type(algorithm),
                                 parameters)
        # Collect incrementally (not run_all) so DM_ACTIVE_STATEMENTS shows
        # partitions_done advancing and a CANCEL lands between partitions.
        obs_workload.set_partitions(len(chunks))
        results = []
        for result in pool.map_ordered(task, chunks, dop=dop, span=span):
            results.append(result)
            obs_workload.partition_done()
        space.merge_marginal_partials([partials for _, partials in results])
        merged = results[0][0]
        merged.merge([replica for replica, _ in results[1:]])
        merged.space = space
        obs_trace.add_to(span, "training_partitions", len(chunks))
        obs_trace.add_to(span, "observations", len(model.training_cases))
    model.algorithm = merged
    model.space = space
    model._content_root = None
    pool.note_parallel_statement("train")
    return True


# -- parallel PREDICTION JOIN --------------------------------------------------


class _ColumnSource:
    """Column-metadata shim standing in for a Rowset/RowStream in workers.

    The case/pair mappers only consult column metadata (names, positions,
    nested columns), never rows — so this is all a worker needs to rebuild
    a mapper without shipping the source rowset.
    """

    __slots__ = ("columns", "_by_name")

    def __init__(self, columns):
        self.columns = columns
        self._by_name = {column.name.upper(): index
                         for index, column in enumerate(columns)}

    def column_names(self):
        return [column.name for column in self.columns]

    def has_column(self, name: str) -> bool:
        return name.upper() in self._by_name

    def index_of(self, name: str) -> int:
        try:
            return self._by_name[name.upper()]
        except KeyError as exc:
            from repro.errors import BindError
            raise BindError(
                f"no column {name!r} in rowset "
                f"(columns: {', '.join(self.column_names())})") from exc


def prediction_replica(model):
    """A lightweight view of the model for shipping to workers.

    Shares the (read-only) algorithm and space but drops the training
    caseset and cached content, so a process-mode task does not pickle the
    entire caseset per chunk.
    """
    import copy
    clone = copy.copy(model)
    clone.training_cases = []
    clone._content_root = None
    return clone


def _predict_chunk(constant, rows):
    """Worker task: bind + filter + project one chunk of source rows.

    ``constant`` is the statement-wide plan; ``rows`` one contiguous chunk.
    Returns ``(rows_bound, value_tuples)`` so the parent can keep the
    serial path's case accounting.
    """
    model, columns, alias, pairs, expanded, where = constant
    shim = _ColumnSource(columns)
    if pairs is None:
        mapper = case_mapper(model.definition, shim)
    else:
        mapper = pair_mapper(model.definition, shim, pairs, alias)
    source_context = _source_context(columns, alias)
    out = []
    for row in rows:
        case = mapper(row)
        context = PredictionEvalContext(model, source_context, row, case)
        if where is not None and evaluate(where, context) is not True:
            continue
        out.append(tuple(evaluate(expr, context) for expr, _ in expanded))
    return len(rows), out


def parallel_prediction_plan(provider, statement, dop: int,
                             batch_size: Optional[int] = None):
    """Plan a parallel PREDICTION JOIN, or None (+ fallback metric).

    Returns ``(expanded, batches)`` where ``batches`` lazily yields
    TOP-limited lists of output value tuples in exact source order —
    drop-in for the serial paths' value batches (column inference,
    FLATTENED, and materialization stay with the caller).
    """
    pool = provider.pool
    join: ast.PredictionJoin = statement.from_clause
    if statement.order_by or statement.distinct:
        pool.note_serial_fallback("blocking_clause")
        return None
    roots = [item.expr for item in statement.select_list]
    if statement.where is not None:
        roots.append(statement.where)
    if _contains_subquery(roots):
        pool.note_serial_fallback("subquery")
        return None
    est = source_rows_estimate(provider, statement)
    if est is not None and est < 2 * dop:
        # Fan-out overhead dominates on tiny sources; run serially.
        pool.note_serial_fallback("small_input")
        return None

    model = provider.model(join.model)
    model.require_trained()
    batch_size = batch_size or getattr(provider.database, "batch_size", 1024)
    stream, alias = resolve_prediction_source_stream(
        provider, join.source, batch_size)
    columns = list(stream.columns)
    expanded = _expand_select_list(statement, model, columns, alias)
    if join.natural or join.condition is None:
        pairs = None
    else:
        pairs = split_on_condition(model.name, alias, join.condition)
    constant = (prediction_replica(model), columns, alias, pairs,
                expanded, statement.where)
    if pool.mode == "process" and not _picklable(constant):
        pool.note_serial_fallback("pickle")
        return None

    span = obs_trace.span("predict.parallel", model=model.name, dop=dop)
    with span:
        obs_trace.add_to(span, "prediction_workers", dop)
    task = functools.partial(_predict_chunk, constant)
    pool.note_parallel_statement("predict")

    def batches():
        remaining = statement.top
        total = 0
        for bound, values in pool.map_ordered(task, stream.batches(),
                                              dop=dop, span=span):
            total += bound
            obs_trace.add_to(span, "cases_bound", bound)
            if remaining is not None:
                if len(values) >= remaining:
                    values = values[:remaining]
                    remaining = 0
                else:
                    remaining -= len(values)
            if values:
                yield values
            if remaining == 0:
                break
        obs_trace.add_to(span, "prediction_cases", total)
        provider.metrics.histogram("prediction.join_fanout").observe(total)

    return expanded, batches()
