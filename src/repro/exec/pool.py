"""The shared worker pool behind ``connect(max_workers=N)`` and MAXDOP.

One :class:`WorkerPool` lives on each provider.  It is deliberately lazy:
no executor exists until the first statement actually runs with an
effective degree of parallelism above one, so the default serial provider
pays nothing.  Three transports:

* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor` (the
  ``fork`` start method when the platform offers it).  This is the mode
  that yields wall-clock speedup for CPU-bound training/prediction under
  CPython's GIL; tasks must be picklable module-level functions.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.  Same
  semantics and ordering, no pickling, but no CPU speedup under the GIL;
  useful for tests and for I/O-ish workloads.
* ``serial`` — never parallelize, run every task inline.

``auto`` (the default) resolves to ``process`` where ``fork`` is available
and ``thread`` elsewhere.

Observability: the pool owns the ``pool.*`` metrics surfaced through
``$SYSTEM.DM_PROVIDER_METRICS`` and pins per-task counters onto the
caller's captured span via :func:`repro.obs.trace.add_to`, because results
may be consumed lazily after the planning span has closed (and, in process
mode, worker-side spans cannot cross the process boundary at all).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Any, Callable, Iterable, Iterator, Optional

from repro.errors import Error
from repro.obs import trace as obs_trace
from repro.obs import workload as obs_workload
from repro.obs.trace import NULL_SPAN

MODES = ("auto", "serial", "thread", "process")

_session_local = threading.local()


def set_session_dop_cap(cap: Optional[int]) -> None:
    """Cap the effective DOP for statements run on this thread.

    The DMX server binds each session thread to the client's negotiated
    ``max_dop`` knob; like ``WITH MAXDOP`` it can only lower the pool
    ceiling, never raise it.  ``None`` clears the cap (embedded default).
    """
    _session_local.cap = cap


def session_dop_cap() -> Optional[int]:
    """This thread's session DOP cap, or None when unbound."""
    return getattr(_session_local, "cap", None)


def _cpu_timed(func: Callable[[Any], Any], payload: Any) -> tuple:
    """Run one task, measuring its own CPU time where it executes.

    ``time.thread_time`` is per-thread, so the submitting thread cannot
    observe worker CPU; instead the delta is taken inside the task (worker
    thread, or worker *process* — the value is picklable either way) and
    shipped back alongside the result for the collector to aggregate onto
    the statement's resource account.
    """
    started = time.thread_time()
    result = func(payload)
    return time.thread_time() - started, result


def _fork_context():
    """The ``fork`` multiprocessing context, or None if unavailable."""
    import multiprocessing
    try:
        if "fork" in multiprocessing.get_all_start_methods():
            return multiprocessing.get_context("fork")
    except Exception:  # pragma: no cover - platform-specific
        pass
    return None


def resolve_mode(mode: str) -> str:
    """Normalize a ``pool_mode`` knob value to a concrete transport."""
    mode = (mode or "auto").lower()
    if mode not in MODES:
        raise Error(
            f"unknown pool_mode {mode!r}; expected one of {', '.join(MODES)}")
    if mode == "auto":
        return "process" if _fork_context() is not None else "thread"
    return mode


class WorkerPool:
    """A lazily-created, shared executor with ordered fan-out helpers.

    ``max_workers`` is the provider-level ceiling; a statement's
    ``WITH MAXDOP n`` can only lower it (SQL Server semantics — the server
    configuration wins).  ``effective_dop(None)`` and ``effective_dop(0)``
    both mean "use the configured maximum".
    """

    def __init__(self, max_workers: int = 1, mode: str = "auto",
                 metrics=None):
        self.max_workers = max(1, int(max_workers))
        self.mode = resolve_mode(mode)
        self.metrics = metrics
        self._executor = None
        self._lock = threading.Lock()
        if metrics is not None:
            metrics.gauge("pool.max_workers").set(self.max_workers)
            metrics.gauge("pool.workers_live").set(0)

    # -- knobs ----------------------------------------------------------------

    def effective_dop(self, requested: Optional[int] = None) -> int:
        """Clamp a statement's MAXDOP request against the pool ceiling.

        The ceiling is the provider's ``max_workers``, further lowered by
        the calling thread's session DOP cap when the statement arrived
        over the wire (:func:`set_session_dop_cap`).
        """
        if self.mode == "serial":
            return 1
        ceiling = self.max_workers
        session_cap = session_dop_cap()
        if session_cap is not None:
            ceiling = max(1, min(int(session_cap), ceiling))
        if requested is None or requested == 0:
            return ceiling
        return max(1, min(int(requested), ceiling))

    # -- bookkeeping ----------------------------------------------------------

    def _counter(self, name: str, amount: float = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def note_parallel_statement(self, kind: str) -> None:
        """One statement chose the parallel path (training or prediction)."""
        self._counter("pool.parallel_statements")
        self._counter(f"pool.parallel_statements.{kind}")

    def note_serial_fallback(self, reason: str) -> None:
        """One statement requested dop>1 but ran serially; say why."""
        self._counter("pool.serial_fallbacks")
        self._counter(f"pool.serial_fallbacks.{reason}")
        obs_trace.add("pool_serial_fallbacks", 1)

    # -- executor life cycle --------------------------------------------------

    def _ensure_executor(self):
        with self._lock:
            if self._executor is None:
                if self.mode == "process":
                    context = _fork_context()
                    if context is not None:
                        self._executor = ProcessPoolExecutor(
                            max_workers=self.max_workers, mp_context=context)
                    else:  # pragma: no cover - non-fork platforms
                        self._executor = ProcessPoolExecutor(
                            max_workers=self.max_workers)
                else:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="repro-pool")
                if self.metrics is not None:
                    self.metrics.gauge("pool.workers_live").set(
                        self.max_workers)
            return self._executor

    def shutdown(self, wait: bool = True) -> None:
        """Stop the executor; idempotent, and the pool lazily revives on
        the next parallel statement (so closing one connection of a shared
        provider is always safe)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait)
            if self.metrics is not None:
                self.metrics.gauge("pool.workers_live").set(0)

    # -- ordered fan-out ------------------------------------------------------

    def map_ordered(self, func: Callable[[Any], Any],
                    payloads: Iterable[Any],
                    dop: Optional[int] = None,
                    span=NULL_SPAN,
                    window_factor: int = 2) -> Iterator[Any]:
        """Apply ``func`` to each payload, yielding results in submission
        order — the order-preserving merge primitive shared by partitioned
        training and parallel PREDICTION JOIN.

        At most ``dop * window_factor`` tasks are in flight, so a lazy
        consumer keeps O(window) memory.  Abandoning the generator cancels
        whatever has not started.  Task exceptions re-raise in submission
        order, exactly where the serial loop would have raised them.
        """
        dop = self.effective_dop(dop)
        # Pin the active statement at entry, like the span: results may be
        # collected lazily, and worker threads/processes have no thread-local
        # statement of their own.
        stmt = obs_workload.current()
        if dop <= 1:
            for payload in payloads:
                if stmt is not None:
                    stmt.token.check()
                yield func(payload)
            return
        executor = self._ensure_executor()
        window = max(2, dop * window_factor)
        pending: deque = deque()
        iterator = iter(payloads)

        def submit(payload) -> Future:
            self._counter("pool.tasks_submitted")
            if stmt is not None:
                # Wrap so the task reports its own CPU delta from wherever
                # it runs; unwrapped tasks stay zero-overhead.
                future = executor.submit(_cpu_timed, func, payload)
                stmt.pool_tasks_in_flight += 1
            else:
                future = executor.submit(func, payload)
            future._repro_started = time.perf_counter()
            return future

        def collect(future: Future):
            result = future.result()
            elapsed_ms = (time.perf_counter() -
                          future._repro_started) * 1000.0
            self._counter("pool.tasks_completed")
            if self.metrics is not None:
                self.metrics.histogram("pool.task_ms").observe(elapsed_ms)
            obs_trace.add_to(span, "pool_tasks", 1)
            if stmt is not None:
                cpu_seconds, result = result
                stmt.pool_tasks_in_flight -= 1
                stmt.pool_tasks += 1
                stmt.pool_cpu_ms += cpu_seconds * 1000.0
            return result

        try:
            # The token checks run while every submitted future is still in
            # ``pending``, so a cancellation unwinds through the finally
            # below with the accounting invariant intact.
            for payload in iterator:
                if stmt is not None:
                    stmt.token.check()
                pending.append(submit(payload))
                if len(pending) >= window:
                    yield collect(pending.popleft())
            while pending:
                if stmt is not None:
                    stmt.token.check()
                yield collect(pending.popleft())
        finally:
            # Early exit (TOP, consumer error, CANCEL): account for every
            # submitted task so pool.tasks_submitted == completed +
            # cancelled + abandoned always holds — the "no torn counts"
            # invariant.
            while pending:
                future = pending.popleft()
                if stmt is not None:
                    stmt.pool_tasks_in_flight -= 1
                if future.cancel():
                    self._counter("pool.tasks_cancelled")
                else:
                    self._counter("pool.tasks_abandoned")

    def run_all(self, func: Callable[[Any], Any], payloads,
                dop: Optional[int] = None, span=NULL_SPAN) -> list:
        """Eager :meth:`map_ordered`: all results, in submission order."""
        return list(self.map_ordered(func, payloads, dop=dop, span=span))
