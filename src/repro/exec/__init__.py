"""Parallel execution subsystem for the provider.

The paper pushes mining *inside* the provider precisely so it can exploit
engine-side resources; this package supplies the engine-side parallelism:

* :class:`~repro.exec.locks.RWLock` — per-model readers/writer lock so
  concurrent predictions share a model while training/reset are exclusive;
* :class:`~repro.exec.pool.WorkerPool` — a shared thread/process worker
  pool with ``pool.*`` metrics and an order-preserving bounded map;
* :mod:`~repro.exec.partition` — the partitioned-training and parallel
  PREDICTION JOIN drivers, plus their eligibility gates (soundness first:
  a statement only parallelizes when the result is provably identical to
  serial execution, otherwise it falls back and says so in the metrics).
"""

from repro.exec.locks import RWLock
from repro.exec.pool import WorkerPool

__all__ = ["RWLock", "WorkerPool"]
