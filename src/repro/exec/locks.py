"""A small writer-priority readers/writer lock.

Mining models are read-mostly: many concurrent PREDICTION JOINs may share
one model, but INSERT INTO (training) and DELETE FROM (reset) must be
exclusive so a predictor never observes a half-swapped attribute space.
``threading`` has no RW lock; this one is writer-priority (a waiting writer
blocks *new* readers) so sustained prediction traffic cannot starve
training.

Locks are intentionally not picklable state: holders re-create them after
unpickling (see ``MiningModel.__setstate__``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """Readers share, writers exclude; writers have priority."""

    def __init__(self):
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1

    def release_read(self) -> None:
        with self._condition:
            if self._readers <= 0:
                # An unpaired release must fail loudly: silently driving
                # _readers negative makes acquire_write wait forever.
                raise RuntimeError(
                    "RWLock.release_read() without a matching acquire_read()")
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        with self._condition:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True

    def release_write(self) -> None:
        with self._condition:
            if not self._writer:
                raise RuntimeError(
                    "RWLock.release_write() without a matching "
                    "acquire_write()")
            self._writer = False
            self._condition.notify_all()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
