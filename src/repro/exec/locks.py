"""A small writer-priority readers/writer lock, with wait profiling.

Mining models are read-mostly: many concurrent PREDICTION JOINs may share
one model, but INSERT INTO (training) and DELETE FROM (reset) must be
exclusive so a predictor never observes a half-swapped attribute space.
``threading`` has no RW lock; this one is writer-priority (a waiting writer
blocks *new* readers) so sustained prediction traffic cannot starve
training.

Contended acquisitions are reported to the workload layer
(:func:`repro.obs.workload.note_lock_wait`): the blocked time lands on the
waiting statement's resource account and in the provider-wide
``$SYSTEM.DM_LOCK_WAITS`` contention table, keyed by the lock's ``name``.
The uncontended fast path takes no timestamps — profiling costs nothing
when nothing blocks.

Locks are intentionally not picklable state: holders re-create them after
unpickling (see ``MiningModel.__setstate__``).
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.obs import workload as obs_workload


class RWLock:
    """Readers share, writers exclude; writers have priority.

    ``name`` identifies the lock in lock-wait profiles (e.g.
    ``model:IRIS``); anonymous locks report as ``"lock"``.
    """

    def __init__(self, name: str = "lock"):
        self.name = name
        self._condition = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    def acquire_read(self) -> None:
        with self._condition:
            if not (self._writer or self._writers_waiting):
                self._readers += 1
                return
            waited = time.perf_counter()
            while self._writer or self._writers_waiting:
                self._condition.wait()
            self._readers += 1
        obs_workload.note_lock_wait(
            self.name, "read", (time.perf_counter() - waited) * 1000.0)

    def release_read(self) -> None:
        with self._condition:
            if self._readers <= 0:
                # An unpaired release must fail loudly: silently driving
                # _readers negative makes acquire_write wait forever.
                raise RuntimeError(
                    "RWLock.release_read() without a matching acquire_read()")
            self._readers -= 1
            if self._readers == 0:
                self._condition.notify_all()

    def acquire_write(self) -> None:
        waited = None
        with self._condition:
            self._writers_waiting += 1
            try:
                if self._writer or self._readers:
                    waited = time.perf_counter()
                while self._writer or self._readers:
                    self._condition.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = True
        if waited is not None:
            obs_workload.note_lock_wait(
                self.name, "write", (time.perf_counter() - waited) * 1000.0)

    def release_write(self) -> None:
        with self._condition:
            if not self._writer:
                raise RuntimeError(
                    "RWLock.release_write() without a matching "
                    "acquire_write()")
            self._writer = False
            self._condition.notify_all()

    @contextmanager
    def read(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()
