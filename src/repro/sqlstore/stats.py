"""Table and column statistics: the planner's estimate source.

The paper's integration argument (section 2) is that mining primitives
should sit *inside* the SQL engine precisely so they benefit from
database-style query processing.  Query processing without cardinality
estimates is guesswork, so this module maintains, per table:

* the row count;
* per column: distinct-value count (NDV), null fraction, min/max, and an
  equi-depth histogram over the non-null values.

Statistics are maintained incrementally: every INSERT adds to an exact
per-column value counter, every DELETE/UPDATE subtracts (the table calls
:meth:`TableStatistics.rebuild` after positional rewrites, which re-derives
the same counter from the stored rows — the hypothesis suite pins
incremental == rebuilt).  NDV, min/max, and the histogram are *derived*
lazily from the counter and cached against a mutation version, so reads
are cheap and writes stay O(changed rows).

The second half of the module is the estimation vocabulary the engine's
cost model consumes: predicate selectivity (:func:`estimate_selectivity`),
equi-join cardinality (:func:`estimate_join_rows`), and grouping output
size (:func:`estimate_group_rows`).  Every function degrades to a
documented default constant when statistics are absent — estimates are
advisory and must never raise out of a planning pass.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.sqlstore import values as V

# -- fallback constants (documented in docs/internals.md) ----------------------

#: WHERE-clause conjunct with no usable statistics (LIKE, subqueries,
#: expressions over functions): assume a third of the input survives.
DEFAULT_SELECTIVITY = 1.0 / 3.0
#: Equality against an un-statistics'd column.
DEFAULT_EQ_SELECTIVITY = 0.1
#: Range comparison against an un-statistics'd column.
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
#: IS NULL against an un-statistics'd column.
DEFAULT_NULL_SELECTIVITY = 0.1
#: Distinct-value count assumed for grouping keys without statistics.
DEFAULT_NDV = 10
#: Equi-depth histogram resolution (buckets hold ~rows/32 rows each).
HISTOGRAM_BUCKETS = 32
#: Page-touch cost of a buffer-resident page relative to a cold page.
BUFFERED_PAGE_COST = 0.25


class ColumnStats:
    """Exact value statistics for one column, maintained incrementally.

    The backbone is a counter ``group_key -> [representative value, count]``
    (the same NULL-safe keying GROUP BY uses), plus a null counter.  NDV,
    min/max, and the equi-depth histogram are derived views over the
    counter, cached until the next mutation.
    """

    __slots__ = ("name", "null_count", "counter", "version",
                 "_derived_version", "_min", "_max", "_histogram")

    def __init__(self, name: str):
        self.name = name
        self.null_count = 0
        self.counter: Dict[Any, List[Any]] = {}
        self.version = 0
        self._derived_version = -1
        self._min = None
        self._max = None
        self._histogram: List[Tuple[Any, Any, int, int]] = []

    # -- incremental maintenance ----------------------------------------------

    def note_insert(self, value: Any) -> None:
        self.version += 1
        if value is None:
            self.null_count += 1
            return
        entry = self.counter.get(V.group_key(value))
        if entry is None:
            self.counter[V.group_key(value)] = [value, 1]
        else:
            entry[1] += 1

    def note_delete(self, value: Any) -> None:
        self.version += 1
        if value is None:
            self.null_count = max(0, self.null_count - 1)
            return
        key = V.group_key(value)
        entry = self.counter.get(key)
        if entry is None:
            return
        entry[1] -= 1
        if entry[1] <= 0:
            del self.counter[key]

    def rebuild(self, column_values) -> None:
        self.version += 1
        self.null_count = 0
        self.counter = {}
        for value in column_values:
            if value is None:
                self.null_count += 1
                continue
            entry = self.counter.get(V.group_key(value))
            if entry is None:
                self.counter[V.group_key(value)] = [value, 1]
            else:
                entry[1] += 1

    # -- derived statistics ----------------------------------------------------

    @property
    def non_null_count(self) -> int:
        return sum(entry[1] for entry in self.counter.values())

    @property
    def ndv(self) -> int:
        return len(self.counter)

    def null_fraction(self, row_count: int) -> float:
        if row_count <= 0:
            return 0.0
        return self.null_count / row_count

    def _refresh_derived(self) -> None:
        if self._derived_version == self.version:
            return
        ordered = sorted(self.counter.values(),
                         key=lambda entry: V.sort_key(entry[0]))
        self._min = ordered[0][0] if ordered else None
        self._max = ordered[-1][0] if ordered else None
        self._histogram = _equi_depth(ordered, HISTOGRAM_BUCKETS)
        self._derived_version = self.version

    @property
    def min_value(self) -> Any:
        self._refresh_derived()
        return self._min

    @property
    def max_value(self) -> Any:
        self._refresh_derived()
        return self._max

    @property
    def histogram(self) -> List[Tuple[Any, Any, int, int]]:
        """Equi-depth buckets ``(lo, hi, rows, ndv)`` over non-null values."""
        self._refresh_derived()
        return self._histogram

    # -- selectivity ----------------------------------------------------------

    def eq_selectivity(self, value: Any, row_count: int) -> float:
        """Fraction of rows equal to ``value`` (exact: counter probe)."""
        if row_count <= 0:
            return 0.0
        if value is None:
            return 0.0  # SQL: column = NULL never matches
        entry = self.counter.get(V.group_key(value))
        return (entry[1] / row_count) if entry is not None else 0.0

    def range_selectivity(self, op: str, bound: Any,
                          row_count: int) -> float:
        """Fraction of rows with ``column <op> bound`` via the histogram.

        Full buckets on the matching side count whole; the bucket
        straddling the bound contributes a linearly interpolated share
        (half a bucket for non-numeric values).  NULLs never match.
        """
        if row_count <= 0 or bound is None:
            return 0.0
        total = self.non_null_count
        if total == 0:
            return 0.0
        matching = 0.0
        for lo, hi, rows, _ in self.histogram:
            try:
                cmp_lo = V.sql_compare(lo, bound)
                cmp_hi = V.sql_compare(hi, bound)
            except Exception:
                return DEFAULT_RANGE_SELECTIVITY
            if cmp_lo is None or cmp_hi is None:
                return DEFAULT_RANGE_SELECTIVITY
            matching += rows * _bucket_overlap(op, lo, hi, cmp_lo, cmp_hi,
                                               bound)
        return _clamp(matching / row_count)

    def snapshot(self, row_count: int) -> dict:
        """Canonical view for tests and ``$SYSTEM.DM_COLUMN_STATISTICS``."""
        return {
            "column": self.name,
            "rows": row_count,
            "ndv": self.ndv,
            "nulls": self.null_count,
            "null_fraction": round(self.null_fraction(row_count), 6),
            "min": self.min_value,
            "max": self.max_value,
            "histogram": list(self.histogram),
        }


def _bucket_overlap(op: str, lo, hi, cmp_lo, cmp_hi, bound) -> float:
    """Share of one histogram bucket matching ``value <op> bound``."""
    if op in ("<", "<="):
        if cmp_hi < 0 or (cmp_hi == 0 and op == "<="):
            return 1.0
        if cmp_lo > 0 or (cmp_lo == 0 and op == "<"):
            return 0.0
    else:  # ">", ">="
        if cmp_lo > 0 or (cmp_lo == 0 and op == ">="):
            return 1.0
        if cmp_hi < 0 or (cmp_hi == 0 and op == ">"):
            return 0.0
    # Bound falls inside the bucket: interpolate for numerics, halve else.
    numeric = all(isinstance(v, (int, float)) and not isinstance(v, bool)
                  for v in (lo, hi, bound))
    if numeric and hi != lo:
        below = (float(bound) - float(lo)) / (float(hi) - float(lo))
    else:
        below = 0.5
    return _clamp(below if op in ("<", "<=") else 1.0 - below)


def _equi_depth(ordered: List[List[Any]],
                buckets: int) -> List[Tuple[Any, Any, int, int]]:
    """Equi-depth buckets from sorted ``[value, count]`` pairs."""
    total = sum(entry[1] for entry in ordered)
    if total == 0:
        return []
    depth = max(1, -(-total // buckets))  # ceil(total / buckets)
    out: List[Tuple[Any, Any, int, int]] = []
    lo = None
    rows = 0
    ndv = 0
    hi = None
    for value, count in ordered:
        if lo is None:
            lo = value
        hi = value
        rows += count
        ndv += 1
        if rows >= depth:
            out.append((lo, hi, rows, ndv))
            lo, rows, ndv = None, 0, 0
    if rows:
        out.append((lo, hi, rows, ndv))
    return out


class TableStatistics:
    """Row count plus per-column :class:`ColumnStats` for one table."""

    __slots__ = ("row_count", "columns", "_by_name")

    def __init__(self, schema):
        self.row_count = 0
        self.columns: List[ColumnStats] = [
            ColumnStats(column.name) for column in schema.columns]
        self._by_name = {column.name.upper(): index
                         for index, column in enumerate(schema.columns)}

    def note_insert(self, row) -> None:
        self.row_count += 1
        for stats, value in zip(self.columns, row):
            stats.note_insert(value)

    def note_delete(self, row) -> None:
        self.row_count = max(0, self.row_count - 1)
        for stats, value in zip(self.columns, row):
            stats.note_delete(value)

    def rebuild(self, rows) -> None:
        rows = list(rows)
        self.row_count = len(rows)
        for position, stats in enumerate(self.columns):
            stats.rebuild(row[position] for row in rows)

    def column(self, name: str) -> Optional[ColumnStats]:
        index = self._by_name.get(name.upper())
        return None if index is None else self.columns[index]

    def snapshot(self) -> List[dict]:
        return [stats.snapshot(self.row_count) for stats in self.columns]


# ---------------------------------------------------------------------------
# Predicate selectivity
# ---------------------------------------------------------------------------
#
# ``resolver(parts) -> (ColumnStats, row_count) | None`` maps a column
# reference onto statistics; the engine supplies one per FROM source.  All
# estimation is read-only and exception-safe: anything unrecognised falls
# back to a constant, never an error.

def estimate_selectivity(expr: Optional[ast.Expr], resolver) -> float:
    """Estimated fraction of rows satisfying ``expr`` (1.0 when absent)."""
    if expr is None:
        return 1.0
    try:
        return _clamp(_selectivity(expr, resolver))
    except Exception:
        return DEFAULT_SELECTIVITY


def _selectivity(expr: ast.Expr, resolver) -> float:
    if isinstance(expr, ast.BinaryOp):
        if expr.op == "AND":
            return (_selectivity(expr.left, resolver) *
                    _selectivity(expr.right, resolver))
        if expr.op == "OR":
            a = _selectivity(expr.left, resolver)
            b = _selectivity(expr.right, resolver)
            return a + b - a * b  # inclusion–exclusion
        if expr.op in ("=", "<>", "<", "<=", ">", ">="):
            return _comparison_selectivity(expr, resolver)
        return DEFAULT_SELECTIVITY
    if isinstance(expr, ast.UnaryOp) and expr.op.upper() == "NOT":
        return 1.0 - _selectivity(expr.operand, resolver)
    if isinstance(expr, ast.IsNull):
        stats = _column_stats(expr.operand, resolver)
        if stats is None:
            fraction = DEFAULT_NULL_SELECTIVITY
        else:
            column, rows = stats
            fraction = column.null_fraction(rows)
        return 1.0 - fraction if expr.negated else fraction
    if isinstance(expr, ast.InList):
        fraction = sum(_eq_fraction(expr.operand, item, resolver)
                       for item in expr.items)
        fraction = _clamp(fraction)
        return 1.0 - fraction if expr.negated else fraction
    if isinstance(expr, ast.Between):
        low = _selectivity(
            ast.BinaryOp(">=", expr.operand, expr.low), resolver)
        high = _selectivity(
            ast.BinaryOp("<=", expr.operand, expr.high), resolver)
        fraction = _clamp(max(0.0, low + high - 1.0))
        return 1.0 - fraction if expr.negated else fraction
    if isinstance(expr, ast.Like):
        return DEFAULT_SELECTIVITY
    return DEFAULT_SELECTIVITY


def _comparison_selectivity(expr: ast.BinaryOp, resolver) -> float:
    column, literal = _column_vs_literal(expr.left, expr.right)
    op = expr.op
    if column is None:
        column, literal = _column_vs_literal(expr.right, expr.left)
        op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
    if column is None:
        return (DEFAULT_EQ_SELECTIVITY if expr.op == "="
                else DEFAULT_RANGE_SELECTIVITY)
    if op == "=":
        return _eq_fraction(column, literal, resolver)
    if op == "<>":
        return 1.0 - _eq_fraction(column, literal, resolver)
    stats = _column_stats(column, resolver)
    if stats is None:
        return DEFAULT_RANGE_SELECTIVITY
    column_stats, rows = stats
    return column_stats.range_selectivity(op, _literal_value(literal), rows)


def _eq_fraction(column_expr, literal_expr, resolver) -> float:
    if not isinstance(column_expr, ast.ColumnRef) or \
            not _is_literal(literal_expr):
        return DEFAULT_EQ_SELECTIVITY
    stats = _column_stats(column_expr, resolver)
    if stats is None:
        return DEFAULT_EQ_SELECTIVITY
    column_stats, rows = stats
    return column_stats.eq_selectivity(_literal_value(literal_expr), rows)


def _column_vs_literal(a, b):
    if isinstance(a, ast.ColumnRef) and _is_literal(b):
        return a, b
    return None, None


def _is_literal(expr) -> bool:
    if isinstance(expr, ast.Literal):
        return True
    return (isinstance(expr, ast.UnaryOp) and expr.op == "-" and
            isinstance(expr.operand, ast.Literal))


def _literal_value(expr):
    if isinstance(expr, ast.Literal):
        return expr.value
    value = expr.operand.value  # UnaryOp("-", Literal)
    return -value if isinstance(value, (int, float)) else value


def _column_stats(expr, resolver):
    if not isinstance(expr, ast.ColumnRef) or resolver is None:
        return None
    return resolver(expr.parts)


def _clamp(fraction: float) -> float:
    return min(1.0, max(0.0, fraction))


# ---------------------------------------------------------------------------
# Cardinality estimates for joins and grouping
# ---------------------------------------------------------------------------

def estimate_join_rows(kind: str, left_rows: Optional[int],
                       right_rows: Optional[int],
                       equi: bool,
                       key_ndvs: Tuple[Optional[int], Optional[int]] =
                       (None, None)) -> Optional[int]:
    """Estimated output cardinality of one join operator.

    * CROSS: ``|L| * |R|``.
    * Equi join with key NDVs: ``|L| * |R| / max(ndv_l, ndv_r)`` — the
      textbook containment assumption.
    * Equi join without key statistics: ``max(|L|, |R|)`` (foreign-key
      shape, the common case).
    * Non-equi (nested loop): ``|L| * |R| * DEFAULT_SELECTIVITY``.
    * LEFT joins never drop a left row: the estimate is floored at ``|L|``.
    """
    if left_rows is None or right_rows is None:
        return None
    if kind == "CROSS":
        return left_rows * right_rows
    if equi:
        ndv = max((n for n in key_ndvs if n), default=0)
        if ndv > 0:
            est = left_rows * right_rows / ndv
        else:
            est = float(max(left_rows, right_rows))
    else:
        est = left_rows * right_rows * DEFAULT_SELECTIVITY
    if kind == "LEFT":
        est = max(est, float(left_rows))
    return int(round(min(est, float(left_rows * right_rows))))


def estimate_group_rows(input_rows: int,
                        key_ndvs: List[Optional[int]]) -> int:
    """Estimated group count: product of key NDVs, capped by the input."""
    if not key_ndvs:
        return 1  # global aggregate: one output row
    product = 1
    for ndv in key_ndvs:
        product *= ndv if ndv and ndv > 0 else DEFAULT_NDV
        if product >= input_rows:
            return max(0, input_rows)
    return max(0, min(product, input_rows))
