"""Relational substrate for the OLE DB DM provider (system S1).

This package is the stand-in for the "core relational engine" of Figure 1 in
the paper: an in-memory SQL engine with tables, views, expressions, joins,
grouping and ordering.  The mining layer (`repro.core`) runs its source
queries — including the queries embedded in SHAPE blocks and PREDICTION JOINs
— through :class:`Database`.
"""

from repro.sqlstore.types import (
    SqlType,
    LONG,
    DOUBLE,
    TEXT,
    BOOLEAN,
    DATE,
    TABLE,
    type_from_name,
)
from repro.sqlstore.values import NULL, is_null, sql_equal, sql_compare
from repro.sqlstore.schema import ColumnSchema, TableSchema
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.table import Table
from repro.sqlstore.engine import Database

__all__ = [
    "SqlType",
    "LONG",
    "DOUBLE",
    "TEXT",
    "BOOLEAN",
    "DATE",
    "TABLE",
    "type_from_name",
    "NULL",
    "is_null",
    "sql_equal",
    "sql_compare",
    "ColumnSchema",
    "TableSchema",
    "Rowset",
    "RowsetColumn",
    "Table",
    "Database",
]
