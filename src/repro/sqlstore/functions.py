"""Built-in SQL scalar and aggregate functions.

Scalar functions are plain Python callables over already-evaluated argument
values (NULL-propagating unless noted).  Aggregates are small accumulator
classes instantiated per GROUP BY bucket.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

from repro.errors import BindError


def _null_safe(func: Callable) -> Callable:
    """Wrap a scalar so that any NULL argument yields NULL."""
    def wrapper(*args):
        if any(a is None for a in args):
            return None
        return func(*args)
    return wrapper


def _coalesce(*args):
    for arg in args:
        if arg is not None:
            return arg
    return None


def _nullif(a, b):
    if a is None:
        return None
    return None if a == b else a


def _iif(condition, then, otherwise):
    return then if condition else otherwise


def _round(value, digits=0):
    return round(float(value), int(digits))


SCALAR_FUNCTIONS: Dict[str, Callable] = {
    "UPPER": _null_safe(lambda s: str(s).upper()),
    "LOWER": _null_safe(lambda s: str(s).lower()),
    "LENGTH": _null_safe(lambda s: len(str(s))),
    "LEN": _null_safe(lambda s: len(str(s))),
    "TRIM": _null_safe(lambda s: str(s).strip()),
    "SUBSTRING": _null_safe(
        lambda s, start, length: str(s)[int(start) - 1:int(start) - 1 + int(length)]),
    "REPLACE": _null_safe(lambda s, old, new: str(s).replace(str(old), str(new))),
    "CONCAT": lambda *args: "".join(str(a) for a in args if a is not None),
    "ABS": _null_safe(abs),
    "ROUND": _null_safe(_round),
    "FLOOR": _null_safe(lambda v: math.floor(v)),
    "CEILING": _null_safe(lambda v: math.ceil(v)),
    "SQRT": _null_safe(lambda v: math.sqrt(v)),
    "LN": _null_safe(lambda v: math.log(v)),
    "LOG": _null_safe(lambda v: math.log10(v)),
    "EXP": _null_safe(lambda v: math.exp(v)),
    "POWER": _null_safe(lambda b, e: float(b) ** float(e)),
    "MOD": _null_safe(lambda a, b: a % b),
    "SIGN": _null_safe(lambda v: (v > 0) - (v < 0)),
    "COALESCE": _coalesce,
    "NULLIF": _nullif,
    "IIF": _iif,
    "CAST_LONG": _null_safe(lambda v: int(float(v))),
    "CAST_DOUBLE": _null_safe(lambda v: float(v)),
    "CAST_TEXT": _null_safe(lambda v: str(v)),
}


class Aggregate:
    """Accumulator interface: feed values, then read ``result``."""

    def add(self, value: Any) -> None:
        raise NotImplementedError

    def result(self) -> Any:
        raise NotImplementedError


class CountAgg(Aggregate):
    """COUNT(expr) counts non-NULL values; COUNT(*) counts rows."""

    def __init__(self, count_rows: bool = False, distinct: bool = False):
        self.count_rows = count_rows
        self.distinct = distinct
        self.count = 0
        self._seen = set()

    def add(self, value: Any) -> None:
        if self.count_rows:
            self.count += 1
            return
        if value is None:
            return
        if self.distinct:
            if value in self._seen:
                return
            self._seen.add(value)
        self.count += 1

    def result(self) -> int:
        return self.count


class SumAgg(Aggregate):
    def __init__(self):
        self.total = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total = value if self.total is None else self.total + value

    def result(self):
        return self.total


class AvgAgg(Aggregate):
    def __init__(self):
        self.total = 0.0
        self.count = 0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.total += float(value)
        self.count += 1

    def result(self) -> Optional[float]:
        return self.total / self.count if self.count else None


class MinAgg(Aggregate):
    def __init__(self):
        self.best = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value < self.best:
            self.best = value

    def result(self):
        return self.best


class MaxAgg(Aggregate):
    def __init__(self):
        self.best = None

    def add(self, value: Any) -> None:
        if value is None:
            return
        if self.best is None or value > self.best:
            self.best = value

    def result(self):
        return self.best


class VarAgg(Aggregate):
    """Sample variance via Welford's online algorithm."""

    def __init__(self, stdev: bool = False):
        self.stdev = stdev
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value: Any) -> None:
        if value is None:
            return
        self.count += 1
        delta = float(value) - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (float(value) - self.mean)

    def result(self) -> Optional[float]:
        if self.count < 2:
            return None
        variance = self.m2 / (self.count - 1)
        return math.sqrt(variance) if self.stdev else variance


def make_aggregate(name: str, count_rows: bool = False,
                   distinct: bool = False) -> Aggregate:
    """Instantiate a fresh accumulator for one GROUP BY bucket."""
    upper = name.upper()
    if upper == "COUNT":
        return CountAgg(count_rows=count_rows, distinct=distinct)
    if upper == "SUM":
        return SumAgg()
    if upper == "AVG":
        return AvgAgg()
    if upper == "MIN":
        return MinAgg()
    if upper == "MAX":
        return MaxAgg()
    if upper == "STDEV":
        return VarAgg(stdev=True)
    if upper == "VAR":
        return VarAgg(stdev=False)
    raise BindError(f"unknown aggregate function {name!r}")
