"""Expression evaluation for the relational engine.

An :class:`EvalContext` resolves column references against the current row;
the evaluator walks the AST nodes from :mod:`repro.lang.ast_nodes` using SQL
three-valued logic from :mod:`repro.sqlstore.values`.

The mining layer reuses this evaluator for prediction-query projections by
supplying its own context subclass that also resolves prediction UDFs.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import BindError, Error
from repro.lang import ast_nodes as ast
from repro.sqlstore import values as V
from repro.sqlstore.functions import SCALAR_FUNCTIONS


class EvalContext:
    """Resolves names and functions during expression evaluation.

    ``columns`` maps *normalized* name tuples to row ordinals.  A reference
    ``t.[Age]`` is looked up first as ``("T", "AGE")``, then as ``("AGE",)``;
    unqualified references must be unambiguous.
    """

    def __init__(self, columns: Dict[Tuple[str, ...], int],
                 row: Optional[tuple] = None):
        self.columns = columns
        self.row = row
        # Executes an uncorrelated subquery (SelectStatement) -> Rowset;
        # supplied by the engine.  Results are cached per statement node
        # since correlated subqueries are not supported.
        self.subquery_executor = None
        self._subquery_cache: Dict[int, Any] = {}

    @staticmethod
    def normalize(parts) -> Tuple[str, ...]:
        return tuple(p.upper() for p in parts)

    @classmethod
    def from_names(cls, names: List[str],
                   qualifier: Optional[str] = None) -> "EvalContext":
        """Build a context over a flat list of column names."""
        columns: Dict[Tuple[str, ...], int] = {}
        for index, name in enumerate(names):
            columns.setdefault((name.upper(),), index)
            if qualifier:
                columns.setdefault((qualifier.upper(), name.upper()), index)
        return cls(columns)

    def with_row(self, row: tuple) -> "EvalContext":
        context = EvalContext(self.columns, row)
        context.subquery_executor = self.subquery_executor
        context._subquery_cache = self._subquery_cache
        return context

    def run_subquery(self, select) -> Any:
        """Execute (and cache) an uncorrelated subquery, returning a Rowset."""
        if self.subquery_executor is None:
            raise Error(
                "subqueries are not available in this context")
        key = id(select)
        if key not in self._subquery_cache:
            self._subquery_cache[key] = self.subquery_executor(select)
        return self._subquery_cache[key]

    def resolve_index(self, parts: Tuple[str, ...]) -> Optional[int]:
        """Ordinal for a (qualified) column reference, or None if unknown."""
        key = self.normalize(parts)
        if key in self.columns:
            return self.columns[key]
        # Drop leading qualifiers one at a time: t.Age -> Age.
        while len(key) > 1:
            key = key[1:]
            if key in self.columns:
                return self.columns[key]
        return None

    def resolve_column(self, ref: ast.ColumnRef) -> Any:
        index = self.resolve_index(ref.parts)
        if index is None:
            raise BindError(
                f"cannot resolve column {'.'.join(ref.parts)!r}")
        return self.row[index]

    def call_function(self, call: ast.FuncCall, evaluator) -> Any:
        """Evaluate a non-aggregate function call.

        Subclasses (the prediction layer) override this to add UDFs; the
        base implementation only knows the SQL scalar functions.
        """
        handler = SCALAR_FUNCTIONS.get(call.name.upper())
        if handler is None:
            raise BindError(f"unknown function {call.name!r}")
        args = [evaluator(a) for a in call.args]
        return handler(*args)


_AGGREGATE_NAMES = {"COUNT", "SUM", "AVG", "MIN", "MAX", "STDEV", "VAR"}


def is_aggregate_call(expr: ast.Expr) -> bool:
    return isinstance(expr, ast.FuncCall) and expr.name.upper() in _AGGREGATE_NAMES


def contains_aggregate(expr: ast.Expr) -> bool:
    """True if the expression tree contains an aggregate function call."""
    if expr is None:
        return False
    if is_aggregate_call(expr):
        return True
    children: List[ast.Expr] = []
    if isinstance(expr, ast.BinaryOp):
        children = [expr.left, expr.right]
    elif isinstance(expr, ast.UnaryOp):
        children = [expr.operand]
    elif isinstance(expr, ast.FuncCall):
        children = expr.args
    elif isinstance(expr, (ast.IsNull, ast.Like, ast.Between, ast.InList)):
        children = [expr.operand]
        if isinstance(expr, ast.Between):
            children += [expr.low, expr.high]
        elif isinstance(expr, ast.Like):
            children.append(expr.pattern)
        elif isinstance(expr, ast.InList):
            children += expr.items
    elif isinstance(expr, ast.Case):
        for condition, result in expr.whens:
            children += [condition, result]
        if expr.else_result is not None:
            children.append(expr.else_result)
    return any(contains_aggregate(c) for c in children if c is not None)


def evaluate(expr: ast.Expr, context: EvalContext) -> Any:
    """Evaluate an expression against one row."""
    if isinstance(expr, ast.Literal):
        return expr.value
    if isinstance(expr, ast.ColumnRef):
        return context.resolve_column(expr)
    if isinstance(expr, ast.Star):
        raise Error("'*' is only valid in a select list or COUNT(*)")
    if isinstance(expr, ast.FuncCall):
        return context.call_function(
            expr, lambda a: evaluate(a, context))
    if isinstance(expr, ast.BinaryOp):
        return _evaluate_binary(expr, context)
    if isinstance(expr, ast.UnaryOp):
        if expr.op == "NOT":
            return V.truth_not(_as_bool(evaluate(expr.operand, context)))
        value = evaluate(expr.operand, context)
        return None if value is None else -value
    if isinstance(expr, ast.IsNull):
        result = evaluate(expr.operand, context) is None
        return (not result) if expr.negated else result
    if isinstance(expr, ast.InList):
        return _evaluate_in(expr, context)
    if isinstance(expr, ast.Between):
        value = evaluate(expr.operand, context)
        low = evaluate(expr.low, context)
        high = evaluate(expr.high, context)
        c_low = V.sql_compare(value, low)
        c_high = V.sql_compare(value, high)
        if c_low is None or c_high is None:
            return None
        result = c_low >= 0 and c_high <= 0
        return (not result) if expr.negated else result
    if isinstance(expr, ast.Like):
        value = evaluate(expr.operand, context)
        pattern = evaluate(expr.pattern, context)
        if value is None or pattern is None:
            return None
        result = like_match(str(value), str(pattern))
        return (not result) if expr.negated else result
    if isinstance(expr, ast.Case):
        for condition, result in expr.whens:
            if _as_bool(evaluate(condition, context)) is True:
                return evaluate(result, context)
        if expr.else_result is not None:
            return evaluate(expr.else_result, context)
        return None
    if isinstance(expr, ast.SubSelect):
        rowset = context.run_subquery(expr.select)
        if len(rowset.columns) != 1:
            raise Error(
                f"scalar subquery must return one column, got "
                f"{len(rowset.columns)}")
        if len(rowset.rows) == 0:
            return None
        if len(rowset.rows) > 1:
            raise Error(
                f"scalar subquery returned {len(rowset.rows)} rows")
        return rowset.rows[0][0]
    if isinstance(expr, ast.InSelect):
        rowset = context.run_subquery(expr.select)
        if len(rowset.columns) != 1:
            raise Error(
                f"IN (SELECT ...) must return one column, got "
                f"{len(rowset.columns)}")
        value = evaluate(expr.operand, context)
        if value is None:
            return None
        saw_null = False
        for row in rowset.rows:
            comparison = V.sql_equal(value, row[0])
            if comparison is True:
                return False if expr.negated else True
            if comparison is None:
                saw_null = True
        if saw_null:
            return None
        return True if expr.negated else False
    raise Error(f"cannot evaluate expression node {type(expr).__name__}")


def _as_bool(value: Any) -> Optional[bool]:
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise Error(f"expected a boolean, got {value!r}")


def _evaluate_binary(expr: ast.BinaryOp, context: EvalContext) -> Any:
    op = expr.op
    if op == "AND":
        left = _as_bool(evaluate(expr.left, context))
        if left is False:  # short circuit
            return False
        return V.truth_and(left, _as_bool(evaluate(expr.right, context)))
    if op == "OR":
        left = _as_bool(evaluate(expr.left, context))
        if left is True:
            return True
        return V.truth_or(left, _as_bool(evaluate(expr.right, context)))
    left = evaluate(expr.left, context)
    right = evaluate(expr.right, context)
    if op == "=":
        return V.sql_equal(left, right)
    if op == "<>":
        result = V.sql_equal(left, right)
        return None if result is None else not result
    if op in ("<", "<=", ">", ">="):
        comparison = V.sql_compare(left, right)
        if comparison is None:
            return None
        return {"<": comparison < 0, "<=": comparison <= 0,
                ">": comparison > 0, ">=": comparison >= 0}[op]
    if left is None or right is None:
        return None
    if op == "||":
        return str(left) + str(right)
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        if right == 0:
            return None  # SQL-ish: division by zero yields NULL here
        result = left / right
        return result
    raise Error(f"unknown binary operator {op!r}")


def _evaluate_in(expr: ast.InList, context: EvalContext) -> Optional[bool]:
    value = evaluate(expr.operand, context)
    if value is None:
        return None
    saw_null = False
    for item in expr.items:
        candidate = evaluate(item, context)
        comparison = V.sql_equal(value, candidate)
        if comparison is True:
            return False if expr.negated else True
        if comparison is None:
            saw_null = True
    if saw_null:
        return None
    return True if expr.negated else False


def like_match(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` (any run) and ``_`` (single char), case-insensitive."""
    regex = "".join(
        ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
        for ch in pattern)
    return re.fullmatch(regex, value, flags=re.IGNORECASE) is not None
