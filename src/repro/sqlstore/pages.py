"""Fixed-budget row pages: the on-disk unit of the paged sqlstore.

A *page* is the unit the buffer pool caches and the disk manager writes: a
bounded run of consecutive table rows with a deterministic byte encoding.
Pages target :data:`DEFAULT_PAGE_BYTES` of encoded payload — a page accepts
rows until the next row would push it past the budget (a single oversized
row still gets a page of its own, so arbitrarily wide rows never wedge the
store).

The encoding is byte-deterministic so the differential suites can compare
page-level state across processes:

======  ======================================================
offset  field
======  ======================================================
0       magic ``b"RPG1"``
4       page id (u32 big-endian)
8       row count (u32)
12      payload length (u32)
16      CRC-32 of the payload (u32)
20      payload: UTF-8 JSON array of row arrays
======  ======================================================

Scalar cells reuse the persistence tag scheme (``{"$datetime": iso}`` /
``{"$date": iso}`` — the same tags the snapshot format and the wire
protocol use), and TABLE-typed cells nest as ``{"$rowset": ...}``.  The
CRC makes a torn or bit-flipped page detectable on read:
:func:`decode_page` raises :class:`PageFormatError` rather than ever
serving half a page.
"""

from __future__ import annotations

import datetime
import json
import struct
import zlib
from typing import Any, List, Optional, Tuple

from repro.errors import Error

PAGE_MAGIC = b"RPG1"
HEADER = struct.Struct(">4sIIII")
DEFAULT_PAGE_BYTES = 4096


class PageFormatError(Error):
    """A page's bytes are torn, truncated, or fail their checksum."""


def encode_scalar(value: Any) -> Any:
    """Tag temporal scalars for JSON (``$datetime``/``$date``, ISO strings).

    This is the canonical scalar codec shared by provider snapshots
    (:mod:`repro.core.persistence`), the wire protocol, and page payloads —
    one tag scheme, so every layer round-trips temporal values identically.
    datetime subclasses date: test it first, else a datetime would be
    tagged ``$date`` and its time part lost on decode.
    """
    if isinstance(value, datetime.datetime):
        return {"$datetime": value.isoformat()}
    if isinstance(value, datetime.date):
        return {"$date": value.isoformat()}
    return value


def decode_scalar(value: Any) -> Any:
    if isinstance(value, dict):
        if "$datetime" in value:
            return datetime.datetime.fromisoformat(value["$datetime"])
        if "$date" in value:
            return datetime.date.fromisoformat(value["$date"])
    return value


def _encode_cell(value: Any) -> Any:
    # Local import: Rowset lives above the page layer in the module graph.
    from repro.sqlstore.rowset import Rowset
    if isinstance(value, Rowset):
        return {"$rowset": {
            "columns": [{"name": c.name,
                         "type": c.type.name if c.type else None}
                        for c in value.columns],
            "rows": [[_encode_cell(v) for v in row] for row in value.rows],
        }}
    return encode_scalar(value)


def _decode_cell(value: Any) -> Any:
    if isinstance(value, dict) and "$rowset" in value:
        from repro.sqlstore.rowset import Rowset, RowsetColumn
        from repro.sqlstore.types import type_from_name
        entry = value["$rowset"]
        columns = [RowsetColumn(c["name"],
                                type_from_name(c["type"]) if c["type"]
                                else None)
                   for c in entry["columns"]]
        rows = [tuple(_decode_cell(v) for v in row) for row in entry["rows"]]
        return Rowset(columns, rows)
    return decode_scalar(value)


def encode_row(row: Tuple) -> bytes:
    """One row as canonical UTF-8 JSON bytes (deterministic key order)."""
    return json.dumps([_encode_cell(v) for v in row], sort_keys=True,
                      ensure_ascii=False,
                      separators=(",", ":")).encode("utf-8")


def decode_row(data: bytes) -> Tuple:
    return tuple(_decode_cell(v) for v in json.loads(data.decode("utf-8")))


class Page:
    """A resident page: decoded rows plus buffer-pool bookkeeping.

    ``rows`` is append-only while the page is live (DELETE/UPDATE build
    replacement pages instead of mutating), so concurrent readers can slice
    a stable prefix without locking.  ``payload_size`` tracks the encoded
    byte size incrementally so admission checks never re-encode the page.
    """

    __slots__ = ("page_id", "rows", "payload_size", "dirty", "pins",
                 "handle")

    def __init__(self, page_id: int, rows: Optional[List[Tuple]] = None,
                 payload_size: Optional[int] = None):
        self.page_id = page_id
        self.rows: List[Tuple] = rows if rows is not None else []
        if payload_size is None:
            sizes = [len(encode_row(r)) for r in self.rows]
            payload_size = 2 + sum(sizes) + max(0, len(sizes) - 1)
        self.payload_size = payload_size
        self.dirty = False
        self.pins = 0
        self.handle = None  # set by the storage layer

    def has_room(self, row_bytes: int, budget: int) -> bool:
        """Admission rule: fits in the budget, or the page is still empty."""
        if not self.rows:
            return True
        return self.payload_size + row_bytes + 1 <= budget

    def append(self, row: Tuple, row_bytes: int) -> None:
        self.payload_size += row_bytes + (1 if self.rows else 0)
        self.rows.append(row)
        self.dirty = True

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        flags = "dirty" if self.dirty else "clean"
        return (f"Page(id={self.page_id}, rows={len(self.rows)}, "
                f"{flags}, pins={self.pins})")


def encode_page(page_id: int, rows: List[Tuple]) -> bytes:
    """Serialise rows into the deterministic page byte layout."""
    payload = b"[" + b",".join(encode_row(r) for r in rows) + b"]"
    header = HEADER.pack(PAGE_MAGIC, page_id, len(rows), len(payload),
                         zlib.crc32(payload) & 0xFFFFFFFF)
    return header + payload


def decode_page(data: bytes, expect_page_id: Optional[int] = None) -> Page:
    """Parse page bytes, verifying magic, lengths, and the CRC.

    Any mismatch raises :class:`PageFormatError` — the caller must treat
    the page as torn and fail the read, never serve a partial row set.
    """
    if len(data) < HEADER.size:
        raise PageFormatError(
            f"page truncated: {len(data)} bytes is shorter than the "
            f"{HEADER.size}-byte header")
    magic, page_id, row_count, payload_len, crc = HEADER.unpack_from(data)
    if magic != PAGE_MAGIC:
        raise PageFormatError(f"bad page magic {magic!r}")
    payload = data[HEADER.size:]
    if len(payload) != payload_len:
        raise PageFormatError(
            f"torn page {page_id}: header promises {payload_len} payload "
            f"bytes, file holds {len(payload)}")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise PageFormatError(f"page {page_id} failed its CRC check")
    if expect_page_id is not None and page_id != expect_page_id:
        raise PageFormatError(
            f"page id mismatch: expected {expect_page_id}, file says "
            f"{page_id}")
    try:
        raw_rows = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise PageFormatError(
            f"page {page_id} payload is not valid JSON: {exc}") from exc
    if len(raw_rows) != row_count:
        raise PageFormatError(
            f"page {page_id} row-count mismatch: header says {row_count}, "
            f"payload holds {len(raw_rows)}")
    rows = [tuple(_decode_cell(v) for v in row) for row in raw_rows]
    return Page(page_id, rows, payload_size=payload_len)
