"""SQL value semantics: NULL handling, equality, and ordering.

SQL three-valued logic is implemented with Python's ``None`` standing in for
both NULL and the UNKNOWN truth value.  The comparison helpers here are the
single source of truth for every WHERE clause, join predicate, ORDER BY, and
GROUP BY bucket in the engine.
"""

from __future__ import annotations

import datetime
from typing import Any, Optional

NULL = None


def is_null(value: Any) -> bool:
    """True when ``value`` is SQL NULL."""
    return value is None


def sql_equal(left: Any, right: Any) -> Optional[bool]:
    """SQL ``=``: NULL on either side yields UNKNOWN (None)."""
    if left is None or right is None:
        return None
    if isinstance(left, bool) != isinstance(right, bool):
        # Avoid bool == 1 surprises across declared types.
        left, right = _normalize_pair(left, right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return float(left) == float(right)
    return left == right


def sql_compare(left: Any, right: Any) -> Optional[int]:
    """Three-way comparison for SQL ``<``/``>``: None when either is NULL.

    Returns -1, 0, or 1.  Mixed numeric types compare numerically; anything
    else must be of matching Python type or the values compare as strings.
    """
    if left is None or right is None:
        return None
    left, right = _normalize_pair(left, right)
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def _normalize_pair(left: Any, right: Any) -> tuple:
    """Bring two non-NULL values into a comparable pair."""
    if isinstance(left, bool) and isinstance(right, (int, float)):
        return int(left), right
    if isinstance(right, bool) and isinstance(left, (int, float)):
        return left, int(right)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return left, right
    if isinstance(left, datetime.date) and isinstance(right, datetime.date):
        return left, right
    if type(left) is type(right):
        return left, right
    return str(left), str(right)


def sort_key(value: Any):
    """A total-order key that places NULLs first (SQL Server convention).

    The returned tuple begins with a null flag, then a type class so that
    heterogeneous columns still sort deterministically.
    """
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 1, int(value))
    if isinstance(value, (int, float)):
        return (1, 1, float(value))
    if isinstance(value, datetime.date):
        return (1, 2, value.toordinal())
    return (1, 3, str(value))


def group_key(value: Any):
    """A hashable key for GROUP BY / DISTINCT buckets (NULLs group together)."""
    if value is None:
        return ("\x00null",)
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, (int, float)):
        return ("n", float(value))
    if isinstance(value, datetime.date):
        return ("d", value.toordinal())
    return ("s", str(value))


def truth_and(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """Three-valued AND."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def truth_or(a: Optional[bool], b: Optional[bool]) -> Optional[bool]:
    """Three-valued OR."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def truth_not(a: Optional[bool]) -> Optional[bool]:
    """Three-valued NOT."""
    if a is None:
        return None
    return not a
