"""Disk manager: durable page-file I/O underneath the buffer pool.

Page files are *immutable once written*: every flush of a page writes a new
versioned file (``t<id>/p<page>_v<version>.pg``) rather than overwriting the
old one, and the catalog (the root pointer) is swapped atomically afterwards.
A crash at any byte offset therefore leaves the previous catalog pointing at
previous, intact files — shadow paging, the same discipline the durable
store's snapshot/journal pair uses one layer up.

Each write goes through a temp file + flush + fsync + ``os.replace``, with
:class:`~repro.store.faults.FaultInjector` consulted at the same stations
the journal exposes (``page.before_write``, ``page.torn_write``,
``page.before_fsync``, ``page.before_replace``), so the crash suite can
kill the writer mid-page and assert no torn page is ever served.
"""

from __future__ import annotations

import os
import tempfile
from typing import List, Optional

from repro.errors import Error
from repro.sqlstore.pages import Page, decode_page, encode_page
from repro.store.atomic import fsync_directory


class StorageError(Error):
    """The paged store's on-disk state is missing, torn, or inconsistent."""


class DiskManager:
    """Owns the storage directory layout and all page-file byte I/O.

    Layout::

        <root>/catalog.json          the atomically-replaced root pointer
        <root>/pages/t<id>/          one directory per table (stable id)
        <root>/pages/t<id>/p<p>_v<v>.pg   one immutable file per page flush
    """

    def __init__(self, root: str, faults=None):
        self.root = os.path.abspath(root)
        self.pages_root = os.path.join(self.root, "pages")
        self.faults = faults
        os.makedirs(self.pages_root, exist_ok=True)

    # -- paths ----------------------------------------------------------------

    def table_dir(self, table_id: int) -> str:
        return os.path.join(self.pages_root, f"t{table_id}")

    def ensure_table_dir(self, table_id: int) -> str:
        path = self.table_dir(table_id)
        os.makedirs(path, exist_ok=True)
        return path

    def page_path(self, table_id: int, filename: str) -> str:
        return os.path.join(self.table_dir(table_id), filename)

    @staticmethod
    def page_filename(page_id: int, version: int) -> str:
        return f"p{page_id}_v{version}.pg"

    # -- page I/O -------------------------------------------------------------

    def write_page(self, table_id: int, page_id: int, version: int,
                   rows: List[tuple]) -> str:
        """Write one page durably; returns the page's file name.

        The write is staged through a temp sibling and atomically renamed,
        with fault points before the write, after half the bytes (the torn
        page), before fsync, and before the rename.
        """
        data = encode_page(page_id, rows)
        directory = self.ensure_table_dir(table_id)
        filename = self.page_filename(page_id, version)
        final = os.path.join(directory, filename)
        if self.faults is not None:
            self.faults.hit("page.before_write")
        fd, temp_path = tempfile.mkstemp(prefix=filename + ".",
                                         suffix=".tmp", dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                if self.faults is not None:
                    half = len(data) // 2
                    handle.write(data[:half])
                    handle.flush()
                    self.faults.hit("page.torn_write")
                    handle.write(data[half:])
                else:
                    handle.write(data)
                handle.flush()
                if self.faults is not None:
                    self.faults.hit("page.before_fsync")
                os.fsync(handle.fileno())
            if self.faults is not None:
                self.faults.hit("page.before_replace")
            os.replace(temp_path, final)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        fsync_directory(directory)
        return filename

    def read_page(self, table_id: int, filename: str,
                  expect_page_id: Optional[int] = None) -> Page:
        """Read and CRC-verify one page file."""
        path = self.page_path(table_id, filename)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError as exc:
            raise StorageError(
                f"cannot read page file {path!r}: {exc}") from exc
        return decode_page(data, expect_page_id=expect_page_id)

    # -- housekeeping ---------------------------------------------------------

    def delete_page(self, table_id: int, filename: str) -> None:
        try:
            os.unlink(self.page_path(table_id, filename))
        except OSError:
            pass

    def drop_table_dir(self, table_id: int) -> None:
        directory = self.table_dir(table_id)
        if not os.path.isdir(directory):
            return
        for name in os.listdir(directory):
            try:
                os.unlink(os.path.join(directory, name))
            except OSError:
                pass
        try:
            os.rmdir(directory)
        except OSError:
            pass

    def sweep(self, referenced: dict) -> int:
        """Delete table dirs and page files the catalog does not reference.

        ``referenced`` maps table id -> set of referenced file names.  Temp
        files (torn writes abandoned by a crash) are always swept.  Returns
        the number of files removed.
        """
        removed = 0
        if not os.path.isdir(self.pages_root):
            return 0
        for entry in os.listdir(self.pages_root):
            directory = os.path.join(self.pages_root, entry)
            if not (entry.startswith("t") and os.path.isdir(directory)):
                continue
            try:
                table_id = int(entry[1:])
            except ValueError:
                continue
            keep = referenced.get(table_id)
            for name in os.listdir(directory):
                if keep is not None and name in keep:
                    continue
                try:
                    os.unlink(os.path.join(directory, name))
                    removed += 1
                except OSError:
                    pass
            if keep is None:
                try:
                    os.rmdir(directory)
                except OSError:
                    pass
        return removed
