"""SQL type system for the relational substrate.

The paper's CREATE MINING MODEL examples use OLE DB DM data types (LONG,
DOUBLE, TEXT, plus the special TABLE type for nested tables).  The same types
serve the plain relational tables, so one type system covers both layers.
"""

from __future__ import annotations

import datetime
from typing import Any

from repro.errors import TypeError_


class SqlType:
    """A scalar (or nested-table) SQL data type.

    Instances are singletons (``LONG``, ``DOUBLE``, ...); equality is
    identity.  ``coerce`` converts a Python value to the canonical Python
    representation for the type, raising :class:`TypeError_` on mismatch.
    """

    def __init__(self, name: str, python_types: tuple, aliases: tuple = ()):
        self.name = name
        self.python_types = python_types
        self.aliases = tuple(a.upper() for a in aliases)

    def __repr__(self) -> str:
        return f"SqlType({self.name})"

    def __reduce__(self):
        # Identity IS equality for types, so unpickling must hand back the
        # module-level singleton, not a fresh instance (process-pool workers
        # receive pickled model definitions and coerce with `is` checks).
        return (type_from_name, (self.name,))

    def __str__(self) -> str:
        return self.name

    def coerce(self, value: Any) -> Any:
        """Convert ``value`` to this type's canonical representation.

        ``None`` (SQL NULL) passes through every type unchanged.  Numeric
        widening (int -> float for DOUBLE) and narrowing of integral floats
        (2.0 -> 2 for LONG) are allowed; anything else raises.
        """
        if value is None:
            return None
        if self is LONG:
            if isinstance(value, bool):
                return int(value)
            if isinstance(value, int):
                return value
            if isinstance(value, float) and value.is_integer():
                return int(value)
            if isinstance(value, str):
                try:
                    return int(value)
                except ValueError as exc:
                    raise TypeError_(f"cannot coerce {value!r} to LONG") from exc
            raise TypeError_(f"cannot coerce {value!r} to LONG")
        if self is DOUBLE:
            if isinstance(value, bool):
                return float(value)
            if isinstance(value, (int, float)):
                return float(value)
            if isinstance(value, str):
                try:
                    return float(value)
                except ValueError as exc:
                    raise TypeError_(f"cannot coerce {value!r} to DOUBLE") from exc
            raise TypeError_(f"cannot coerce {value!r} to DOUBLE")
        if self is TEXT:
            if isinstance(value, str):
                return value
            if isinstance(value, (int, float, bool, datetime.date)):
                return str(value)
            raise TypeError_(f"cannot coerce {value!r} to TEXT")
        if self is BOOLEAN:
            if isinstance(value, bool):
                return value
            if isinstance(value, int) and value in (0, 1):
                return bool(value)
            if isinstance(value, str) and value.upper() in ("TRUE", "FALSE"):
                return value.upper() == "TRUE"
            raise TypeError_(f"cannot coerce {value!r} to BOOLEAN")
        if self is DATE:
            if isinstance(value, datetime.date):
                return value
            if isinstance(value, str):
                try:
                    return datetime.date.fromisoformat(value)
                except ValueError as exc:
                    raise TypeError_(f"cannot coerce {value!r} to DATE") from exc
            raise TypeError_(f"cannot coerce {value!r} to DATE")
        if self is TABLE:
            # Nested-table values are Rowset-like; validated by the shaping
            # layer, not here.
            return value
        raise TypeError_(f"unknown type {self.name}")

    def accepts(self, value: Any) -> bool:
        """Return True if ``value`` coerces cleanly to this type."""
        try:
            self.coerce(value)
        except TypeError_:
            return False
        return True


LONG = SqlType("LONG", (int,), aliases=("INT", "INTEGER", "BIGINT"))
DOUBLE = SqlType("DOUBLE", (float,), aliases=("FLOAT", "REAL", "NUMERIC"))
TEXT = SqlType("TEXT", (str,), aliases=("VARCHAR", "CHAR", "STRING", "NVARCHAR"))
BOOLEAN = SqlType("BOOLEAN", (bool,), aliases=("BOOL", "BIT"))
DATE = SqlType("DATE", (datetime.date,), aliases=("DATETIME", "TIMESTAMP"))
TABLE = SqlType("TABLE", (object,))

_ALL_TYPES = (LONG, DOUBLE, TEXT, BOOLEAN, DATE, TABLE)

_BY_NAME = {}
for _t in _ALL_TYPES:
    _BY_NAME[_t.name] = _t
    for _a in _t.aliases:
        _BY_NAME[_a] = _t


def type_from_name(name: str) -> SqlType:
    """Resolve a type keyword (or alias) to its :class:`SqlType` singleton."""
    try:
        return _BY_NAME[name.upper()]
    except KeyError as exc:
        raise TypeError_(f"unknown SQL type {name!r}") from exc


def infer_type(value: Any) -> SqlType:
    """Infer the narrowest SqlType for a Python value (used by VALUES rows)."""
    if isinstance(value, bool):
        return BOOLEAN
    if isinstance(value, int):
        return LONG
    if isinstance(value, float):
        return DOUBLE
    if isinstance(value, datetime.date):
        return DATE
    if isinstance(value, str):
        return TEXT
    return TEXT
