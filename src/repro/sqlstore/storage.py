"""Row storage behind :class:`~repro.sqlstore.table.Table`: list or paged.

Two interchangeable row stores implement the same small contract
(``append`` / ``replace_all`` / ``iter_batches`` / ``iter_positions`` /
``row_at`` / ``snapshot``):

* :class:`ListRowStore` — the original in-memory list.  The default, and
  the behavioural reference: DELETE/UPDATE swap in a fresh list so scans
  started earlier keep reading pre-mutation rows.
* :class:`PagedRowStore` — rows packed into fixed-budget pages, cached by
  the shared :class:`~repro.sqlstore.buffer.BufferPool` and spilled to
  versioned files by the :class:`~repro.sqlstore.diskmgr.DiskManager`.
  Scans snapshot ``(handle, row_count)`` pairs, so the same
  pre-mutation-stability contract holds: appends beyond the snapshot are
  invisible, and replaced pages stay readable from their retired files
  (deleted only at open/close, never at commit).

:class:`StorageManager` owns the shared pool, the disk layout, and the
commit protocol — shadow paging: flush dirty pages to *new* versioned
files, then atomically swap ``catalog.json`` to reference them.  A crash
at any byte offset leaves the old catalog pointing at old, intact files.

With a durable journal attached (``connect(durable_path=...,
storage_path=...)``) the manager runs *ephemeral*: journal replay is the
authority on open, so the storage directory is wiped and serves purely as
spill space.  ``storage_path`` alone makes the paged store itself the
authoritative, restart-surviving database.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.sqlstore.buffer import DEFAULT_BUFFER_PAGES, BufferPool
from repro.sqlstore.catalog import DiskCatalog
from repro.sqlstore.diskmgr import DiskManager, StorageError
from repro.sqlstore.pages import DEFAULT_PAGE_BYTES, Page, encode_row

# Cost discount for a buffer-resident page relative to a cold one: CPU work
# to walk the rows without the disk read.
RESIDENT_PAGE_COST = 0.25


class ListRowStore:
    """The in-memory reference store: one Python list."""

    __slots__ = ("rows",)

    def __init__(self, rows: Optional[List[Tuple]] = None):
        self.rows: List[Tuple] = rows if rows is not None else []

    def append(self, row: Tuple) -> None:
        self.rows.append(row)

    def replace_all(self, rows: Iterable[Tuple]) -> None:
        # A fresh list, never in-place: scans holding the old list keep
        # reading pre-mutation rows.
        self.rows = list(rows)

    def truncate(self) -> None:
        self.rows = []

    def __len__(self) -> int:
        return len(self.rows)

    def snapshot(self) -> List[Tuple]:
        return self.rows

    def row_at(self, position: int) -> Tuple:
        return self.rows[position]

    def fetch_rows(self, positions: List[int]) -> List[Tuple]:
        rows = self.rows
        return [rows[position] for position in positions]

    def iter_batches(self, batch_size: int) -> Iterable[List[Tuple]]:
        rows = self.rows
        for start in range(0, len(rows), batch_size):
            yield rows[start:start + batch_size]

    def iter_positions(self, positions: List[int],
                       batch_size: int) -> Iterable[List[Tuple]]:
        rows = self.rows
        for start in range(0, len(positions), batch_size):
            yield [rows[p] for p in positions[start:start + batch_size]]

    def seek_expectation(self, positions: List[int]) -> Optional[str]:
        """No buffer to expect anything of — memory rows are always hot."""
        return None

    def seek_cost(self, positions: List[int]) -> float:
        """Optimizer cost of fetching these positions: rows touched (every
        row is equally hot in memory)."""
        return float(len(positions))

    def scan_cost(self) -> float:
        """Optimizer cost of the full sequential scan: rows stored."""
        return float(len(self.rows))

    def dispose(self) -> None:
        pass


class PageHandle:
    """Durable identity of one page: where its current bytes live.

    The handle outlives buffer-pool residency: evict the page and the
    handle still knows the (immutable, versioned) file to reload from.
    """

    __slots__ = ("uid", "table_id", "page_id", "version", "row_count",
                 "current_file")

    def __init__(self, uid: int, table_id: int, page_id: int,
                 version: int = 0, row_count: int = 0,
                 current_file: Optional[str] = None):
        self.uid = uid
        self.table_id = table_id
        self.page_id = page_id
        self.version = version
        self.row_count = row_count
        self.current_file = current_file


class PagedRowStore:
    """Rows packed into pages, resident only while the pool caches them."""

    def __init__(self, manager: "StorageManager", table_id: int,
                 next_page_id: int = 0, next_version: int = 1,
                 handles: Optional[List[PageHandle]] = None,
                 row_total: int = 0):
        self.manager = manager
        self.table_id = table_id
        self.handles: List[PageHandle] = handles if handles is not None \
            else []
        self._next_page_id = next_page_id
        self._next_version = next_version
        self._rows = row_total
        self._lock = manager.pool.lock

    # -- page access ----------------------------------------------------------

    def _page(self, handle: PageHandle, pin: bool = False) -> Page:
        def loader() -> Page:
            if handle.current_file is None:
                raise StorageError(
                    f"page {handle.page_id} of table {self.table_id} was "
                    f"never flushed and is no longer resident")
            page = self.manager.disk.read_page(
                handle.table_id, handle.current_file,
                expect_page_id=handle.page_id)
            page.handle = handle
            return page
        return self.manager.pool.get(handle.uid, loader, pin=pin)

    def bump_version(self) -> int:
        version = self._next_version
        self._next_version += 1
        return version

    # -- mutation -------------------------------------------------------------

    def append(self, row: Tuple) -> None:
        data = encode_row(row)
        with self._lock:
            if self.handles:
                last = self.handles[-1]
                # Pinned: on a miss, admission runs eviction, and with every
                # other frame pinned by concurrent scans the freshly loaded
                # page is the only candidate — unpinned it would be dropped
                # (clean, no flush) and the rows below would mutate an
                # orphan object the pool no longer tracks: never flushed,
                # handle.row_count diverging from the on-disk page, and
                # concurrent scans silently skipping the phantom rows.
                page = self._page(last, pin=True)
                try:
                    if page.has_room(len(data), self.manager.page_bytes):
                        page.append(row, len(data))
                        last.row_count += 1
                        self._rows += 1
                        return
                finally:
                    self.manager.pool.unpin(page)
            self._new_page([row], [len(data)])
            self._rows += 1

    def _new_page(self, rows: List[Tuple], sizes: List[int]) -> None:
        page = Page(self._next_page_id)
        self._next_page_id += 1
        for row, size in zip(rows, sizes):
            page.append(row, size)
        handle = PageHandle(self.manager.new_uid(), self.table_id,
                            page.page_id, row_count=len(rows))
        page.handle = handle
        self.handles.append(handle)
        self.manager.pool.put(handle.uid, page)

    def replace_all(self, rows: Iterable[Tuple]) -> None:
        with self._lock:
            self._retire_handles()
            pending: List[Tuple] = []
            sizes: List[int] = []
            budget = self.manager.page_bytes
            payload = 2
            total = 0
            for row in rows:
                data = encode_row(row)
                grown = payload + len(data) + (1 if pending else 0)
                if pending and grown > budget:
                    self._new_page(pending, sizes)
                    pending, sizes, payload = [], [], 2
                    grown = payload + len(data)
                pending.append(row)
                sizes.append(len(data))
                payload = grown
                total += 1
            if pending:
                self._new_page(pending, sizes)
            self._rows = total

    def truncate(self) -> None:
        self.replace_all([])

    def dispose(self) -> None:
        with self._lock:
            self._retire_handles()
            self._rows = 0
            self.manager.forget_store(self.table_id)

    def _retire_handles(self) -> None:
        """Drop every current page, keeping retired bytes readable.

        A dirty resident page is flushed first so an in-flight scan that
        snapshotted its handle can still reload a consistent version; the
        superseded files are garbage-collected at open/close, never here.
        """
        pool = self.manager.pool
        resident = dict(pool.resident())
        for handle in self.handles:
            page = resident.get(handle.uid)
            if page is not None and page.dirty:
                self.manager.flush_page(page)
                page.dirty = False
            pool.discard(handle.uid)
        self.handles = []

    # -- reads ----------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return self._rows

    def snapshot(self) -> List[Tuple]:
        rows: List[Tuple] = []
        for batch in self.iter_batches(4096):
            rows.extend(batch)
        return rows

    def row_at(self, position: int) -> Tuple:
        with self._lock:
            base = 0
            for handle in self.handles:
                if position < base + handle.row_count:
                    page = self._page(handle)
                    return page.rows[position - base]
                base += handle.row_count
        raise IndexError(position)

    def fetch_rows(self, positions: List[int]) -> List[Tuple]:
        out: List[Tuple] = []
        for batch in self.iter_positions(positions, 4096):
            out.extend(batch)
        return out

    def seek_expectation(self, positions: List[int]) -> Optional[str]:
        """EXPLAIN detail: of the pages this seek will touch, how many are
        buffer-resident right now (the plan's buffer-hit expectation)."""
        with self._lock:
            needed = set()
            base = 0
            cursor = 0
            for position in positions:
                while cursor < len(self.handles) and \
                        position >= base + self.handles[cursor].row_count:
                    base += self.handles[cursor].row_count
                    cursor += 1
                if cursor >= len(self.handles):
                    break
                needed.add(self.handles[cursor].uid)
            resident = {uid for uid, _ in self.manager.pool.resident()}
            hot = len(needed & resident)
            return f"{hot}/{len(needed)} pages buffered"

    def _needed_pages(self, positions: List[int]) -> set:
        """UIDs of the pages holding the given (ascending) positions."""
        needed = set()
        base = 0
        cursor = 0
        for position in positions:
            while cursor < len(self.handles) and \
                    position >= base + self.handles[cursor].row_count:
                base += self.handles[cursor].row_count
                cursor += 1
            if cursor >= len(self.handles):
                break
            needed.add(self.handles[cursor].uid)
        return needed

    def _page_cost(self, uids: Iterable[int], resident: set) -> float:
        return sum(RESIDENT_PAGE_COST if uid in resident else 1.0
                   for uid in uids)

    def seek_cost(self, positions: List[int]) -> float:
        """Optimizer cost of fetching these positions: pages touched,
        buffer-resident pages discounted (no disk read needed)."""
        with self._lock:
            needed = self._needed_pages(positions)
            resident = {uid for uid, _ in self.manager.pool.resident()}
            return self._page_cost(needed, resident)

    def scan_cost(self) -> float:
        """Optimizer cost of the full sequential scan, page-weighted the
        same way as :meth:`seek_cost`."""
        with self._lock:
            resident = {uid for uid, _ in self.manager.pool.resident()}
            return self._page_cost(
                (handle.uid for handle in self.handles), resident)

    def _scan_snapshot(self) -> List[Tuple[PageHandle, int]]:
        with self._lock:
            return [(handle, handle.row_count) for handle in self.handles]

    def iter_batches(self, batch_size: int) -> Iterable[List[Tuple]]:
        """Scan in exact ``batch_size`` chunks (mirrors the list store).

        The current page stays pinned between yields — a consumer that
        abandons the generator (TOP, CANCEL, a closed wire session)
        releases the pin through the ``finally``.
        """
        snapshot = self._scan_snapshot()
        pool = self.manager.pool

        def produce():
            pending: List[Tuple] = []
            current: Optional[Page] = None
            try:
                for handle, count in snapshot:
                    if count == 0:
                        continue
                    page = self._page(handle, pin=True)
                    if current is not None:
                        pool.unpin(current)
                    current = page
                    rows = page.rows
                    index = 0
                    while index < count:
                        take = min(batch_size - len(pending), count - index)
                        pending.extend(rows[index:index + take])
                        index += take
                        if len(pending) == batch_size:
                            yield pending
                            pending = []
                if pending:
                    yield pending
            finally:
                if current is not None:
                    pool.unpin(current)
        return produce()

    def iter_positions(self, positions: List[int],
                       batch_size: int) -> Iterable[List[Tuple]]:
        """Fetch specific row positions (ascending) in exact-size batches."""
        snapshot = self._scan_snapshot()
        pool = self.manager.pool

        def produce():
            pending: List[Tuple] = []
            current: Optional[Page] = None
            cursor = 0  # index into snapshot
            base = 0    # first position of snapshot[cursor]
            rows: List[Tuple] = []
            try:
                for position in positions:
                    while cursor < len(snapshot) and \
                            position >= base + snapshot[cursor][1]:
                        base += snapshot[cursor][1]
                        cursor += 1
                        rows = []
                    if cursor >= len(snapshot):
                        break
                    if not rows:
                        page = self._page(snapshot[cursor][0], pin=True)
                        if current is not None:
                            pool.unpin(current)
                        current = page
                        rows = page.rows
                    pending.append(rows[position - base])
                    if len(pending) == batch_size:
                        yield pending
                        pending = []
                if pending:
                    yield pending
            finally:
                if current is not None:
                    pool.unpin(current)
        return produce()


class StorageManager:
    """Owns one storage directory: pool + disk manager + catalog + commit.

    One manager serves every table of a provider; ``buffer_pages`` is the
    *global* page budget, shared across tables, so a pathologically small
    budget (the forced-spill differential grid uses 2) exercises eviction
    on every statement.
    """

    def __init__(self, root: str, buffer_pages: int = DEFAULT_BUFFER_PAGES,
                 faults=None, metrics=None, ephemeral: bool = False,
                 page_bytes: int = DEFAULT_PAGE_BYTES):
        self.root = os.path.abspath(root)
        self.ephemeral = ephemeral
        self.page_bytes = max(64, int(page_bytes))
        self.disk = DiskManager(self.root, faults=faults)
        self.catalog = DiskCatalog(os.path.join(self.root, "catalog.json"),
                                   faults=faults)
        self.pool = BufferPool(buffer_pages, flusher=self.flush_page,
                               metrics=metrics)
        self.metrics = metrics
        self.next_table_id = 1
        self.commit_seq = 0
        self._uid = 0
        self._stores: Dict[int, PagedRowStore] = {}
        self._restore_entries: Dict[str, dict] = {}
        if ephemeral:
            # Journal replay is authoritative: whatever a previous process
            # spilled here is dead weight.
            self.catalog.remove()
            self.disk.sweep({})

    # -- identities -----------------------------------------------------------

    def new_uid(self) -> int:
        with self.pool.lock:
            self._uid += 1
            return self._uid

    def forget_store(self, table_id: int) -> None:
        self._stores.pop(table_id, None)

    # -- store factory (plugged into Database.create_table) -------------------

    def make_store(self, schema) -> PagedRowStore:
        with self.pool.lock:
            entry = self._restore_entries.pop(schema.name.upper(), None)
            if entry is None:
                table_id = self.next_table_id
                self.next_table_id += 1
                store = PagedRowStore(self, table_id)
            else:
                store = self._restore_store(entry)
            self._stores[store.table_id] = store
            return store

    def _restore_store(self, entry: dict) -> PagedRowStore:
        handles = []
        total = 0
        max_page = -1
        max_version = 0
        for page in entry["pages"]:
            handle = PageHandle(self.new_uid(), entry["id"], page["id"],
                                version=page["version"],
                                row_count=page["rows"],
                                current_file=page["file"])
            handles.append(handle)
            total += page["rows"]
            max_page = max(max_page, page["id"])
            max_version = max(max_version, page["version"])
        return PagedRowStore(self, entry["id"], next_page_id=max_page + 1,
                             next_version=max_version + 1, handles=handles,
                             row_total=total)

    # -- flush / commit (shadow paging) ---------------------------------------

    def flush_page(self, page: Page) -> None:
        """Write a dirty page to a fresh versioned file (never overwrite)."""
        handle = page.handle
        store = self._stores.get(handle.table_id)
        version = store.bump_version() if store is not None \
            else handle.version + 1
        filename = self.disk.write_page(handle.table_id, handle.page_id,
                                        version, list(page.rows))
        handle.version = version
        handle.current_file = filename

    def commit(self, database) -> None:
        """Make the current logical state durable: flush, then swap root."""
        with self.pool.lock:
            self.pool.flush_dirty()
            self.commit_seq += 1
            document = self._document(database)
        self.catalog.save(document)
        if self.metrics is not None:
            self.metrics.counter("buffer.commits").inc()

    def _document(self, database) -> dict:
        from repro.lang.formatter import format_statement

        tables = {}
        for key in sorted(database.tables):
            table = database.tables[key]
            store = table.store
            tables[key] = {
                "id": store.table_id,
                "name": table.schema.name,
                "version": table.version,
                "columns": [
                    {"name": c.name, "type": c.type.name,
                     "nullable": c.nullable, "primary_key": c.primary_key}
                    for c in table.schema.columns],
                "pages": [
                    {"id": h.page_id, "version": h.version,
                     "rows": h.row_count, "file": h.current_file}
                    for h in store.handles],
                "indexes": [
                    {"name": index.name, "column": index.column_name}
                    for index in table.indexes.values()],
                # Like indexes, statistics persist as a flag only; the
                # content re-derives deterministically from rows on open.
                "statistics": table.stats is not None,
            }
        views = {key: format_statement(select)
                 for key, select in sorted(database.views.items())}
        return {
            "next_table_id": self.next_table_id,
            "commit_seq": self.commit_seq,
            "data_version": database.data_version,
            "tables": tables,
            "views": views,
        }

    @staticmethod
    def _referenced(document: dict) -> Dict[int, set]:
        return {entry["id"]: {page["file"] for page in entry["pages"]}
                for entry in document["tables"].values()}

    # -- lifecycle ------------------------------------------------------------

    def open_into(self, database) -> None:
        """Load the committed catalog into an empty database, then GC.

        Ephemeral managers skip the load (the directory was wiped at
        construction).  The sweep removes superseded page versions and
        torn temp files a crashed writer left behind.
        """
        if self.ephemeral:
            return
        document = self.catalog.load()
        if document is None:
            self.disk.sweep({})
            return
        from repro.lang.parser import parse_statement
        from repro.sqlstore.schema import ColumnSchema, TableSchema
        from repro.sqlstore.types import type_from_name

        self.next_table_id = document["next_table_id"]
        self.commit_seq = document["commit_seq"]
        self._restore_entries = dict(document["tables"])
        for key in sorted(document["tables"]):
            entry = document["tables"][key]
            schema = TableSchema(entry["name"], [
                ColumnSchema(c["name"], type_from_name(c["type"]),
                             nullable=c["nullable"],
                             primary_key=c["primary_key"])
                for c in entry["columns"]])
            table = database.create_table(schema)
            table.version = entry["version"]
            table.rebuild_indexes()
            for index in entry.get("indexes", []):
                table.create_index(index["name"], index["column"])
            # Pages bypass table.insert on reopen, so incremental stats
            # never saw these rows.  Marked stale, not rebuilt: open must
            # stay free of page reads (the rebuild scans every page), so
            # the first consumer re-derives them lazily.
            if table.stats is not None or entry.get("statistics"):
                table.mark_statistics_stale()
        for key, sql in sorted(document.get("views", {}).items()):
            database.views[key.upper()] = parse_statement(sql)
        database.advance_data_version(document.get("data_version", 0))
        self.disk.sweep(self._referenced(document))

    def close(self, database) -> None:
        """Final commit plus garbage collection of superseded versions."""
        if self.ephemeral:
            self.catalog.remove()
            self.disk.sweep({})
            return
        self.commit(database)
        self.disk.sweep(self._referenced(self._document(database)))

    # -- introspection ($SYSTEM.DM_BUFFER_POOL) --------------------------------

    def pool_rows(self, database) -> List[tuple]:
        """(table, page id, rows, dirty, pins, bytes) per resident page,
        LRU-first — the DM_BUFFER_POOL schema rowset's data."""
        names = {table.store.table_id: table.schema.name
                 for table in database.tables.values()
                 if isinstance(table.store, PagedRowStore)}
        out = []
        for uid, page in self.pool.resident():
            handle = page.handle
            table_name = names.get(handle.table_id,
                                   f"t{handle.table_id}") if handle else "?"
            out.append((table_name, page.page_id, len(page.rows),
                        page.dirty, page.pins, page.payload_size))
        return out
