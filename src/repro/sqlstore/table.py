"""In-memory table storage with optional primary-key and hash indexes."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import SchemaError, TypeError_
from repro.sqlstore.schema import TableSchema
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.values import group_key


class Table:
    """A stored base table: schema + row storage + secondary hash indexes.

    Rows are tuples aligned with the schema.  A declared PRIMARY KEY column is
    enforced unique through a hash map; callers may additionally build
    secondary (non-unique) hash indexes to accelerate equi-joins.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self.rows: List[Tuple] = []
        # Monotonic mutation counter; the caseset cache keys on the sum of
        # these across the catalog so cached shapes can never serve stale
        # rows after a mutation.
        self.version = 0
        self._pk_index: Optional[Dict[Any, int]] = None
        self._secondary: Dict[int, Dict[Any, List[int]]] = {}
        if schema.primary_key_index() is not None:
            self._pk_index = {}

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self.rows)

    # -- mutation -------------------------------------------------------------

    def insert(self, values: Iterable[Any]) -> None:
        """Insert one row, coercing each value to its column type."""
        row = tuple(values)
        if len(row) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(row)}")
        coerced = []
        for value, column in zip(row, self.schema.columns):
            value = column.type.coerce(value)
            if value is None and not column.nullable:
                raise TypeError_(
                    f"column {column.name!r} of table {self.name!r} "
                    f"is NOT NULL")
            coerced.append(value)
        row = tuple(coerced)
        pk = self.schema.primary_key_index()
        if pk is not None:
            key = group_key(row[pk])
            if key in self._pk_index:
                raise SchemaError(
                    f"duplicate primary key {row[pk]!r} in table {self.name!r}")
            self._pk_index[key] = len(self.rows)
        position = len(self.rows)
        self.rows.append(row)
        self.version += 1
        for column_index, index in self._secondary.items():
            index.setdefault(group_key(row[column_index]), []).append(position)

    def insert_many(self, rows: Iterable[Iterable[Any]]) -> int:
        """Insert many rows; returns the count inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_where(self, predicate) -> int:
        """Delete rows where ``predicate(row)`` is truthy; returns the count."""
        kept = [row for row in self.rows if not predicate(row)]
        removed = len(self.rows) - len(kept)
        if removed:
            self.rows = kept
            self.version += 1
            self._rebuild_indexes()
        return removed

    def update_where(self, predicate, updater) -> int:
        """Apply ``updater(row) -> row`` to rows matching ``predicate``."""
        changed = 0
        new_rows = []
        for row in self.rows:
            if predicate(row):
                new_row = tuple(
                    column.type.coerce(value)
                    for value, column in zip(updater(row), self.schema.columns))
                new_rows.append(new_row)
                changed += 1
            else:
                new_rows.append(row)
        if changed:
            self.rows = new_rows
            self.version += 1
            self._rebuild_indexes()
        return changed

    def truncate(self) -> None:
        self.rows = []
        self.version += 1
        self._rebuild_indexes()

    # -- indexes --------------------------------------------------------------

    def ensure_index(self, column_name: str) -> Dict[Any, List[int]]:
        """Build (or fetch) a non-unique hash index on one column."""
        column_index = self.schema.index_of(column_name)
        if column_index not in self._secondary:
            index: Dict[Any, List[int]] = {}
            for position, row in enumerate(self.rows):
                index.setdefault(group_key(row[column_index]), []).append(position)
            self._secondary[column_index] = index
        return self._secondary[column_index]

    def lookup_pk(self, value: Any) -> Optional[Tuple]:
        """Fetch the row with the given primary-key value, or None."""
        if self._pk_index is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        position = self._pk_index.get(group_key(value))
        return None if position is None else self.rows[position]

    def _rebuild_indexes(self) -> None:
        pk = self.schema.primary_key_index()
        if pk is not None:
            self._pk_index = {
                group_key(row[pk]): position
                for position, row in enumerate(self.rows)}
        for column_index in list(self._secondary):
            index: Dict[Any, List[int]] = {}
            for position, row in enumerate(self.rows):
                index.setdefault(group_key(row[column_index]), []).append(position)
            self._secondary[column_index] = index

    # -- export ---------------------------------------------------------------

    def rowset_columns(self) -> List[RowsetColumn]:
        return [RowsetColumn(c.name, c.type) for c in self.schema.columns]

    def to_rowset(self) -> Rowset:
        """Materialise the full table as a rowset."""
        return Rowset(self.rowset_columns(), list(self.rows))

    def iter_batches(self, batch_size: int = 1024) -> Iterable[List[Tuple]]:
        """Scan the stored rows in batches (length snapshot at start).

        The row list itself is never mutated in place by DELETE/UPDATE (both
        swap in a fresh list), so a scan started before a mutation keeps
        reading the pre-mutation rows; only same-statement INSERT ... SELECT
        style self-reads go through a fully materialised snapshot instead.
        """
        rows = self.rows
        for start in range(0, len(rows), batch_size):
            yield rows[start:start + batch_size]
