"""Base tables: schema + pluggable row storage + primary/secondary indexes.

Row bytes live behind a *row store* (:mod:`repro.sqlstore.storage`) — the
in-memory list by default, or the paged/buffered store when the provider is
opened with ``storage_path=...``.  The table keeps everything semantic:
type coercion, PRIMARY KEY uniqueness, the legacy positional hash indexes,
and the named user indexes (``CREATE INDEX``) the engine consults for
WHERE seeks and join builds.  All index structures are in-memory and are
rebuilt from the store on open — only rows and index *definitions* are
persisted.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import CatalogError, SchemaError, TypeError_
from repro.sqlstore.indexes import TableIndex
from repro.sqlstore.schema import TableSchema
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.storage import ListRowStore
from repro.sqlstore.values import group_key


class Table:
    """A stored base table: schema + row store + indexes.

    Rows are tuples aligned with the schema.  A declared PRIMARY KEY column
    is enforced unique through a hash map; named secondary indexes (hash +
    sorted) are created with CREATE INDEX and accelerate WHERE seeks and
    equi-join builds.
    """

    def __init__(self, schema: TableSchema, store=None):
        self.schema = schema
        self.store = store if store is not None else ListRowStore()
        # Monotonic mutation counter; the caseset cache keys on the sum of
        # these across the catalog so cached shapes can never serve stale
        # rows after a mutation.
        self.version = 0
        # Named user indexes (CREATE INDEX), keyed by upper-cased name,
        # insertion-ordered — the engine picks the first index on a column.
        self.indexes: Dict[str, TableIndex] = {}
        self._pk_index: Optional[Dict[Any, int]] = None
        self._secondary: Dict[int, Dict[Any, List[int]]] = {}
        if schema.primary_key_index() is not None:
            self._pk_index = {}

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def rows(self) -> List[Tuple]:
        """All rows, materialised (page reads for a paged store)."""
        return self.store.snapshot()

    def __len__(self) -> int:
        return len(self.store)

    # -- mutation -------------------------------------------------------------

    def insert(self, values: Iterable[Any]) -> None:
        """Insert one row, coercing each value to its column type."""
        row = tuple(values)
        if len(row) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(row)}")
        coerced = []
        for value, column in zip(row, self.schema.columns):
            value = column.type.coerce(value)
            if value is None and not column.nullable:
                raise TypeError_(
                    f"column {column.name!r} of table {self.name!r} "
                    f"is NOT NULL")
            coerced.append(value)
        row = tuple(coerced)
        pk = self.schema.primary_key_index()
        position = len(self.store)
        if pk is not None:
            key = group_key(row[pk])
            if key in self._pk_index:
                raise SchemaError(
                    f"duplicate primary key {row[pk]!r} in table {self.name!r}")
            self._pk_index[key] = position
        self.store.append(row)
        self.version += 1
        for column_index, index in self._secondary.items():
            index.setdefault(group_key(row[column_index]), []).append(position)
        for index in self.indexes.values():
            index.note_insert(row, position)

    def insert_many(self, rows: Iterable[Iterable[Any]]) -> int:
        """Insert many rows; returns the count inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_where(self, predicate) -> int:
        """Delete rows where ``predicate(row)`` is truthy; returns the count."""
        rows = self.rows
        kept = [row for row in rows if not predicate(row)]
        removed = len(rows) - len(kept)
        if removed:
            self.store.replace_all(kept)
            self.version += 1
            self.rebuild_indexes()
        return removed

    def update_where(self, predicate, updater) -> int:
        """Apply ``updater(row) -> row`` to rows matching ``predicate``."""
        changed = 0
        new_rows = []
        for row in self.rows:
            if predicate(row):
                new_row = tuple(
                    column.type.coerce(value)
                    for value, column in zip(updater(row), self.schema.columns))
                new_rows.append(new_row)
                changed += 1
            else:
                new_rows.append(row)
        if changed:
            self.store.replace_all(new_rows)
            self.version += 1
            self.rebuild_indexes()
        return changed

    def truncate(self) -> None:
        self.store.truncate()
        self.version += 1
        self.rebuild_indexes()

    def dispose(self) -> None:
        """Release storage resources (DROP TABLE on a paged store)."""
        self.store.dispose()

    # -- named (CREATE INDEX) indexes -----------------------------------------

    def create_index(self, name: str, column_name: str) -> TableIndex:
        key = name.upper()
        if key in self.indexes:
            raise CatalogError(
                f"index {name!r} already exists on table {self.name!r}")
        column_index = self.schema.index_of(column_name)
        column = self.schema.columns[column_index]
        index = TableIndex(name, column.name, column_index, column.type.name)
        index.rebuild(self.rows)
        self.indexes[key] = index
        return index

    def drop_index(self, name: str, if_exists: bool = False) -> None:
        key = name.upper()
        if key in self.indexes:
            del self.indexes[key]
        elif not if_exists:
            raise CatalogError(
                f"no index named {name!r} on table {self.name!r}")

    def index_on(self, column_index: int) -> Optional[TableIndex]:
        """The first user index on a column ordinal, or None."""
        for index in self.indexes.values():
            if index.column_index == column_index:
                return index
        return None

    # -- legacy positional indexes --------------------------------------------

    def ensure_index(self, column_name: str) -> Dict[Any, List[int]]:
        """Build (or fetch) a non-unique hash index on one column."""
        column_index = self.schema.index_of(column_name)
        if column_index not in self._secondary:
            index: Dict[Any, List[int]] = {}
            for position, row in enumerate(self.rows):
                index.setdefault(group_key(row[column_index]), []).append(position)
            self._secondary[column_index] = index
        return self._secondary[column_index]

    def lookup_pk(self, value: Any) -> Optional[Tuple]:
        """Fetch the row with the given primary-key value, or None."""
        if self._pk_index is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        position = self._pk_index.get(group_key(value))
        return None if position is None else self.store.row_at(position)

    def rebuild_indexes(self) -> None:
        """Re-derive every index structure from the stored rows.

        Called after positional shifts (DELETE/UPDATE/TRUNCATE) and when a
        paged table is reopened from its catalog (indexes are in-memory;
        only their definitions persist).
        """
        pk = self.schema.primary_key_index()
        needs_rows = (pk is not None or self._secondary or self.indexes)
        rows = self.rows if needs_rows else []
        if pk is not None:
            self._pk_index = {
                group_key(row[pk]): position
                for position, row in enumerate(rows)}
        for column_index in list(self._secondary):
            index: Dict[Any, List[int]] = {}
            for position, row in enumerate(rows):
                index.setdefault(group_key(row[column_index]), []).append(position)
            self._secondary[column_index] = index
        for index in self.indexes.values():
            index.rebuild(rows)

    # -- export ---------------------------------------------------------------

    def rowset_columns(self) -> List[RowsetColumn]:
        return [RowsetColumn(c.name, c.type) for c in self.schema.columns]

    def to_rowset(self) -> Rowset:
        """Materialise the full table as a rowset."""
        return Rowset(self.rowset_columns(), list(self.rows))

    def iter_batches(self, batch_size: int = 1024) -> Iterable[List[Tuple]]:
        """Scan the stored rows in batches (length snapshot at start).

        Storage is never mutated in place by DELETE/UPDATE (both swap in
        fresh storage), so a scan started before a mutation keeps reading
        the pre-mutation rows; only same-statement INSERT ... SELECT style
        self-reads go through a fully materialised snapshot instead.
        """
        return self.store.iter_batches(batch_size)
