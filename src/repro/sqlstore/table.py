"""Base tables: schema + pluggable row storage + primary/secondary indexes.

Row bytes live behind a *row store* (:mod:`repro.sqlstore.storage`) — the
in-memory list by default, or the paged/buffered store when the provider is
opened with ``storage_path=...``.  The table keeps everything semantic:
type coercion, PRIMARY KEY uniqueness, the legacy positional hash indexes,
and the named user indexes (``CREATE INDEX``) the engine consults for
WHERE seeks and join builds.  All index structures are in-memory and are
rebuilt from the store on open — only rows and index *definitions* are
persisted.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import CatalogError, SchemaError, TypeError_
from repro.sqlstore.indexes import TableIndex
from repro.sqlstore.schema import TableSchema
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.stats import TableStatistics
from repro.sqlstore.storage import ListRowStore
from repro.sqlstore.values import group_key


class Table:
    """A stored base table: schema + row store + indexes.

    Rows are tuples aligned with the schema.  A declared PRIMARY KEY column
    is enforced unique through a hash map; named secondary indexes (hash +
    sorted) are created with CREATE INDEX and accelerate WHERE seeks and
    equi-join builds.
    """

    def __init__(self, schema: TableSchema, store=None,
                 with_stats: bool = False):
        self.schema = schema
        self.store = store if store is not None else ListRowStore()
        # Monotonic mutation counter; the caseset cache keys on the sum of
        # these across the catalog so cached shapes can never serve stale
        # rows after a mutation.
        self.version = 0
        # Named user indexes (CREATE INDEX), keyed by upper-cased name,
        # insertion-ordered — the engine picks the first index on a column.
        self.indexes: Dict[str, TableIndex] = {}
        # Optimizer statistics (repro.sqlstore.stats): maintained inline by
        # insert/delete/update below, rebuilt wholesale by
        # rebuild_statistics (UPDATE STATISTICS, paged reopen).
        self.stats: Optional[TableStatistics] = \
            TableStatistics(schema) if with_stats else None
        # True after a paged reopen: page reads are deferred, so statistics
        # re-derive lazily on first use instead of at open (open must never
        # touch page bytes — a torn page surfaces at first read, not open).
        self.stats_stale = False
        self._pk_index: Optional[Dict[Any, int]] = None
        self._secondary: Dict[int, Dict[Any, List[int]]] = {}
        if schema.primary_key_index() is not None:
            self._pk_index = {}

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def rows(self) -> List[Tuple]:
        """All rows, materialised (page reads for a paged store)."""
        return self.store.snapshot()

    def __len__(self) -> int:
        return len(self.store)

    # -- mutation -------------------------------------------------------------

    def insert(self, values: Iterable[Any]) -> None:
        """Insert one row, coercing each value to its column type."""
        row = tuple(values)
        if len(row) != len(self.schema):
            raise SchemaError(
                f"table {self.name!r} expects {len(self.schema)} values, "
                f"got {len(row)}")
        coerced = []
        for value, column in zip(row, self.schema.columns):
            value = column.type.coerce(value)
            if value is None and not column.nullable:
                raise TypeError_(
                    f"column {column.name!r} of table {self.name!r} "
                    f"is NOT NULL")
            coerced.append(value)
        row = tuple(coerced)
        if self.stats is not None and self.stats_stale:
            self.rebuild_statistics()    # before the append: exact baseline
        pk = self.schema.primary_key_index()
        position = len(self.store)
        if pk is not None:
            key = group_key(row[pk])
            if key in self._pk_index:
                raise SchemaError(
                    f"duplicate primary key {row[pk]!r} in table {self.name!r}")
            self._pk_index[key] = position
        self.store.append(row)
        self.version += 1
        for column_index, index in self._secondary.items():
            index.setdefault(group_key(row[column_index]), []).append(position)
        for index in self.indexes.values():
            index.note_insert(row, position)
        if self.stats is not None:
            self.stats.note_insert(row)

    def insert_many(self, rows: Iterable[Iterable[Any]]) -> int:
        """Insert many rows; returns the count inserted."""
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def delete_where(self, predicate) -> int:
        """Delete rows where ``predicate(row)`` is truthy; returns the count."""
        rows = self.rows
        if self.stats is not None and self.stats_stale:
            self.stats.rebuild(rows)
            self.stats_stale = False
        kept = []
        removed = 0
        for row in rows:
            if predicate(row):
                removed += 1
                if self.stats is not None:
                    self.stats.note_delete(row)
            else:
                kept.append(row)
        if removed:
            self.store.replace_all(kept)
            self.version += 1
            self.rebuild_indexes()
        return removed

    def update_where(self, predicate, updater) -> int:
        """Apply ``updater(row) -> row`` to rows matching ``predicate``."""
        changed = 0
        new_rows = []
        rows = self.rows
        if self.stats is not None and self.stats_stale:
            self.stats.rebuild(rows)
            self.stats_stale = False
        for row in rows:
            if predicate(row):
                new_row = tuple(
                    column.type.coerce(value)
                    for value, column in zip(updater(row), self.schema.columns))
                new_rows.append(new_row)
                changed += 1
                if self.stats is not None:
                    self.stats.note_delete(row)
                    self.stats.note_insert(new_row)
            else:
                new_rows.append(row)
        if changed:
            self.store.replace_all(new_rows)
            self.version += 1
            self.rebuild_indexes()
        return changed

    def truncate(self) -> None:
        self.store.truncate()
        self.version += 1
        self.rebuild_indexes()
        if self.stats is not None:
            self.stats.rebuild([])
            self.stats_stale = False

    def dispose(self) -> None:
        """Release storage resources (DROP TABLE on a paged store)."""
        self.store.dispose()

    # -- named (CREATE INDEX) indexes -----------------------------------------

    def create_index(self, name: str, column_name: str) -> TableIndex:
        key = name.upper()
        if key in self.indexes:
            raise CatalogError(
                f"index {name!r} already exists on table {self.name!r}")
        column_index = self.schema.index_of(column_name)
        column = self.schema.columns[column_index]
        index = TableIndex(name, column.name, column_index, column.type.name)
        index.rebuild(self.rows)
        self.indexes[key] = index
        return index

    def drop_index(self, name: str, if_exists: bool = False) -> None:
        key = name.upper()
        if key in self.indexes:
            del self.indexes[key]
        elif not if_exists:
            raise CatalogError(
                f"no index named {name!r} on table {self.name!r}")

    def index_on(self, column_index: int) -> Optional[TableIndex]:
        """The first user index on a column ordinal, or None."""
        for index in self.indexes.values():
            if index.column_index == column_index:
                return index
        return None

    # -- legacy positional indexes --------------------------------------------

    def ensure_index(self, column_name: str) -> Dict[Any, List[int]]:
        """Build (or fetch) a non-unique hash index on one column."""
        column_index = self.schema.index_of(column_name)
        if column_index not in self._secondary:
            index: Dict[Any, List[int]] = {}
            for position, row in enumerate(self.rows):
                index.setdefault(group_key(row[column_index]), []).append(position)
            self._secondary[column_index] = index
        return self._secondary[column_index]

    def lookup_pk(self, value: Any) -> Optional[Tuple]:
        """Fetch the row with the given primary-key value, or None."""
        if self._pk_index is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        position = self._pk_index.get(group_key(value))
        return None if position is None else self.store.row_at(position)

    def rebuild_indexes(self) -> None:
        """Re-derive every index structure from the stored rows.

        Called after positional shifts (DELETE/UPDATE/TRUNCATE) and when a
        paged table is reopened from its catalog (indexes are in-memory;
        only their definitions persist).
        """
        pk = self.schema.primary_key_index()
        needs_rows = (pk is not None or self._secondary or self.indexes)
        rows = self.rows if needs_rows else []
        if pk is not None:
            self._pk_index = {
                group_key(row[pk]): position
                for position, row in enumerate(rows)}
        for column_index in list(self._secondary):
            index: Dict[Any, List[int]] = {}
            for position, row in enumerate(rows):
                index.setdefault(group_key(row[column_index]), []).append(position)
            self._secondary[column_index] = index
        for index in self.indexes.values():
            index.rebuild(rows)

    # -- optimizer statistics --------------------------------------------------

    def rebuild_statistics(self) -> TableStatistics:
        """(Re)derive optimizer statistics from the stored rows.

        Backs the ``UPDATE STATISTICS`` verb and the paged-store reopen
        path; creates the statistics object when the table was built
        without one, so the verb also enables statistics on demand.
        """
        if self.stats is None:
            self.stats = TableStatistics(self.schema)
        self.stats.rebuild(self.rows)
        self.stats_stale = False
        return self.stats

    def mark_statistics_stale(self) -> None:
        """Enable statistics without deriving them yet (paged reopen).

        The rebuild costs a full scan, so it is deferred to the first
        consumer — :meth:`statistics` or the next mutation — keeping open
        free of page reads.
        """
        if self.stats is None:
            self.stats = TableStatistics(self.schema)
        self.stats_stale = True

    def statistics(self) -> Optional[TableStatistics]:
        """Current statistics, lazily re-derived after a paged reopen."""
        if self.stats is not None and self.stats_stale:
            self.rebuild_statistics()
        return self.stats

    # -- export ---------------------------------------------------------------

    def rowset_columns(self) -> List[RowsetColumn]:
        return [RowsetColumn(c.name, c.type) for c in self.schema.columns]

    def to_rowset(self) -> Rowset:
        """Materialise the full table as a rowset."""
        return Rowset(self.rowset_columns(), list(self.rows))

    def iter_batches(self, batch_size: int = 1024) -> Iterable[List[Tuple]]:
        """Scan the stored rows in batches (length snapshot at start).

        Storage is never mutated in place by DELETE/UPDATE (both swap in
        fresh storage), so a scan started before a mutation keeps reading
        the pre-mutation rows; only same-statement INSERT ... SELECT style
        self-reads go through a fully materialised snapshot instead.
        """
        return self.store.iter_batches(batch_size)
