"""The relational engine: statement execution over the in-memory catalog.

:class:`Database` executes plain-SQL AST nodes (SELECT with joins, grouping,
ordering; INSERT/UPDATE/DELETE; CREATE/DROP TABLE/VIEW).  FROM-clause sources
it does not know about — mining models, SHAPE blocks, ``$SYSTEM`` rowsets,
``<model>.CONTENT`` — are delegated to an optional ``external_resolver``
callback which the mining provider supplies.  That hook is precisely the
layering of Figure 1 in the paper: the analysis server (mining layer) sits on
top of the relational engine and extends its name space.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import BindError, CatalogError, Error, SchemaError
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_statement
from repro.obs import trace as obs_trace
from repro.obs import workload as obs_workload
from repro.sqlstore import values as V
from repro.sqlstore.expressions import (
    EvalContext,
    contains_aggregate,
    evaluate,
    is_aggregate_call,
)
from repro.sqlstore.functions import make_aggregate
from repro.sqlstore import stats as stats_mod
from repro.sqlstore.indexes import choose_index
from repro.sqlstore.rowset import (
    DEFAULT_BATCH_SIZE,
    Rowset,
    RowsetColumn,
    RowStream,
)
from repro.sqlstore.schema import ColumnSchema, TableSchema
from repro.sqlstore.table import Table
from repro.sqlstore.types import TABLE, TEXT, infer_type, type_from_name


class SourceRelation:
    """An executed FROM source: qualified column descriptors plus rows.

    The rows may be held either materialised (``rows``) or as a pending
    batch iterator; downstream operators that can stream pull
    :meth:`batches`, while legacy/blocking consumers read :attr:`rows`,
    which drains the iterator on first access.
    """

    def __init__(self, columns: List[Tuple[Optional[str], RowsetColumn]],
                 rows: Optional[List[tuple]] = None,
                 batches: Optional[Iterable[List[tuple]]] = None):
        self.columns = columns
        self._rows = list(rows) if rows is not None else None
        self._batches = batches

    @property
    def rows(self) -> List[tuple]:
        """Materialised rows (drains the batch iterator if still pending)."""
        if self._rows is None:
            rows: List[tuple] = []
            for batch in self._batches or ():
                rows.extend(batch)
            self._rows = rows
            self._batches = None
        return self._rows

    def batches(self, batch_size: int = DEFAULT_BATCH_SIZE) \
            -> Iterable[List[tuple]]:
        """Yield row batches; streams when pending, re-slices when not."""
        if self._rows is not None:
            rows = self._rows
            for start in range(0, len(rows), batch_size):
                yield rows[start:start + batch_size]
            return
        pending, self._batches = self._batches, None
        if pending is None:
            raise BindError("relation rows already consumed")
        yield from pending

    def context(self) -> EvalContext:
        """Name-resolution map (qualified + bare) over this relation."""
        mapping: Dict[Tuple[str, ...], int] = {}
        for index, (qualifier, column) in enumerate(self.columns):
            mapping.setdefault((column.name.upper(),), index)
            if qualifier:
                mapping.setdefault((qualifier.upper(), column.name.upper()),
                                   index)
        return EvalContext(mapping)

    @classmethod
    def from_rowset(cls, rowset: Rowset,
                    qualifier: Optional[str]) -> "SourceRelation":
        """Wrap a rowset, qualifying every column with ``qualifier``."""
        columns = [(qualifier, c) for c in rowset.columns]
        return cls(columns, list(rowset.rows))

    @classmethod
    def from_stream(cls, stream: RowStream,
                    qualifier: Optional[str]) -> "SourceRelation":
        """Wrap a row stream without draining it."""
        columns = [(qualifier, c) for c in stream.columns]
        return cls(columns, batches=stream.batches())


class Database:
    """In-memory SQL database: table/view catalog plus an executor."""

    # Views may reference views; this bounds expansion so a (directly or
    # mutually) recursive view definition fails cleanly instead of blowing
    # the interpreter stack.
    MAX_VIEW_DEPTH = 32

    def __init__(self, external_resolver: Optional[Callable] = None,
                 batch_size: int = DEFAULT_BATCH_SIZE,
                 statistics: bool = True):
        self.tables: Dict[str, Table] = {}
        self.views: Dict[str, ast.SelectStatement] = {}
        # external_resolver(table_ref) -> SourceRelation | None
        self.external_resolver = external_resolver
        # Streaming pipeline granularity: operators exchange row batches of
        # (at most) this many rows; memory is O(batch_size), not O(rows).
        self.batch_size = max(1, int(batch_size))
        # Cost-based planning switch.  When off, tables carry no statistics
        # and every execution-affecting decision (join build side, seek vs
        # scan, parallel gating, prediction pushdown) falls back to the
        # original heuristics — the baseline the differential suite compares
        # against.  Display-only estimates (EST_ROWS/COST) are always
        # computed.
        self.stats_enabled = bool(statistics)
        # store_factory(schema) -> row store; installed by the provider when
        # a paged StorageManager is attached, else tables use the in-memory
        # list store.  metrics is the provider's registry (index counters).
        self.store_factory: Optional[Callable] = None
        self.metrics = None
        self._view_depth = 0
        # Separate depth guard for cardinality estimation, which recurses
        # through view definitions the same way execution does.
        self._est_depth = 0
        self._catalog_version = 0

    @property
    def data_version(self) -> int:
        """Monotonic counter covering catalog DDL and every table mutation.

        Cheap to read and strictly increasing, so callers (the caseset
        cache) can key cached derived data on it and never serve stale rows.
        """
        return self._catalog_version + sum(
            table.version for table in self.tables.values())

    def advance_data_version(self, floor: int) -> None:
        """Raise ``data_version`` to at least ``floor`` (snapshot restore).

        Rebuilding a catalog from a snapshot replays fewer mutations than
        the original provider performed, so the freshly computed version
        would restart low; bumping it to the snapshot's recorded value keeps
        the counter monotonic across restore, so version-keyed consumers
        (the caseset cache) can never alias pre-crash state.
        """
        current = self.data_version
        if floor > current:
            self._catalog_version += floor - current

    # -- catalog --------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        key = schema.name.upper()
        if key in self.tables or key in self.views:
            raise CatalogError(f"table or view {schema.name!r} already exists")
        store = self.store_factory(schema) if self.store_factory else None
        table = Table(schema, store=store, with_stats=self.stats_enabled)
        self.tables[key] = table
        self._catalog_version += 1
        return table

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.upper()
        if key in self.tables:
            # Fold the dropped table's mutation count into the catalog
            # counter so data_version never moves backwards.
            self._catalog_version += 1 + self.tables[key].version
            self.tables[key].dispose()
            del self.tables[key]
        elif key in self.views:
            self._catalog_version += 1
            del self.views[key]
        elif not if_exists:
            raise CatalogError(f"no table or view named {name!r}")

    def table(self, name: str) -> Table:
        try:
            return self.tables[name.upper()]
        except KeyError as exc:
            raise BindError(f"no table named {name!r}") from exc

    def has_table(self, name: str) -> bool:
        return name.upper() in self.tables or name.upper() in self.views

    # -- entry points ---------------------------------------------------------

    def execute(self, command: str) -> Any:
        """Parse and execute one SQL statement; returns a Rowset or a count."""
        return self.execute_ast(parse_statement(command))

    def execute_ast(self, statement: ast.Statement) -> Any:
        if isinstance(statement, ast.SelectStatement):
            return self.execute_select(statement)
        if isinstance(statement, ast.UnionStatement):
            return self.execute_union(statement)
        if isinstance(statement, ast.CreateTableStatement):
            return self._execute_create_table(statement)
        if isinstance(statement, ast.CreateViewStatement):
            key = statement.name.upper()
            if key in self.tables or key in self.views:
                raise CatalogError(
                    f"table or view {statement.name!r} already exists")
            self.views[key] = statement.select
            self._catalog_version += 1
            return 0
        if isinstance(statement, ast.InsertValuesStatement):
            return self._execute_insert(statement)
        if isinstance(statement, ast.DeleteStatement):
            return self._execute_delete(statement)
        if isinstance(statement, ast.UpdateStatement):
            return self._execute_update(statement)
        if isinstance(statement, ast.DropTableStatement):
            self.drop_table(statement.name, statement.if_exists)
            return 0
        if isinstance(statement, ast.CreateIndexStatement):
            self.table(statement.table).create_index(statement.name,
                                                     statement.column)
            self._catalog_version += 1
            return 0
        if isinstance(statement, ast.DropIndexStatement):
            self.table(statement.table).drop_index(statement.name,
                                                   statement.if_exists)
            self._catalog_version += 1
            return 0
        if isinstance(statement, ast.UpdateStatisticsStatement):
            return self._execute_update_statistics(statement)
        raise Error(
            f"statement {type(statement).__name__} is not supported by the "
            f"relational engine (is it a DMX statement issued without a "
            f"mining provider?)")

    # -- DDL / DML ------------------------------------------------------------

    def _execute_create_table(self, statement: ast.CreateTableStatement) -> int:
        columns = [
            ColumnSchema(c.name, type_from_name(c.type_name),
                         nullable=c.nullable, primary_key=c.primary_key)
            for c in statement.columns]
        self.create_table(TableSchema(statement.name, columns))
        return 0

    def _execute_update_statistics(
            self, statement: ast.UpdateStatisticsStatement) -> int:
        """Rebuild optimizer statistics from stored rows; returns the table
        count refreshed.  A rebuild changes no stored data, so cached
        casesets stay valid — but the verb also enables cost-based
        planning on a database opened with ``statistics=False``, and a
        planning-input change must be visible to plan-capture consumers,
        so the catalog version is bumped."""
        if statement.table is not None:
            targets = [self.table(statement.table)]
        else:
            targets = list(self.tables.values())
        for table in targets:
            table.rebuild_statistics()
        self.stats_enabled = True
        self._catalog_version += 1
        return len(targets)

    def _execute_insert(self, statement: ast.InsertValuesStatement) -> int:
        table = self.table(statement.table)
        schema = table.schema
        if statement.columns:
            positions = [schema.index_of(name) for name in statement.columns]
        else:
            positions = list(range(len(schema)))

        def widen(values: List[Any]) -> List[Any]:
            if len(values) != len(positions):
                raise SchemaError(
                    f"INSERT expects {len(positions)} values, got {len(values)}")
            row = [None] * len(schema)
            for position, value in zip(positions, values):
                row[position] = value
            return row

        count = 0
        if statement.select is not None:
            result = self.execute_select(statement.select)
            for row in result.rows:
                table.insert(widen(list(row)))
                count += 1
            return count
        empty_context = EvalContext({}, ())
        for value_row in statement.rows:
            values = [evaluate(e, empty_context) for e in value_row]
            table.insert(widen(values))
            count += 1
        return count

    def _execute_delete(self, statement: ast.DeleteStatement) -> int:
        table = self.table(statement.table)
        if statement.where is None:
            count = len(table)
            table.truncate()
            return count
        relation = SourceRelation.from_rowset(table.to_rowset(),
                                              statement.table)
        context = relation.context()
        context.subquery_executor = self.execute_select

        def predicate(row):
            return evaluate(statement.where, context.with_row(row)) is True

        return table.delete_where(predicate)

    def _execute_update(self, statement: ast.UpdateStatement) -> int:
        table = self.table(statement.table)
        schema = table.schema
        relation = SourceRelation.from_rowset(table.to_rowset(),
                                              statement.table)
        context = relation.context()
        context.subquery_executor = self.execute_select
        assignments = [(schema.index_of(name), expr)
                       for name, expr in statement.assignments]

        def predicate(row):
            if statement.where is None:
                return True
            return evaluate(statement.where, context.with_row(row)) is True

        def updater(row):
            new_row = list(row)
            row_context = context.with_row(row)
            for position, expr in assignments:
                new_row[position] = evaluate(expr, row_context)
            return tuple(new_row)

        return table.update_where(predicate, updater)

    # -- SELECT ---------------------------------------------------------------

    def execute_union(self, statement: ast.UnionStatement) -> Rowset:
        """Concatenate branch results; plain UNION dedups (SQL semantics)."""
        return self.execute_union_stream(statement).materialize()

    def execute_union_stream(self, statement: ast.UnionStatement,
                             batch_size: Optional[int] = None) -> RowStream:
        """Streaming UNION: ALL-only chains stream branch by branch.

        Branch schemas must agree in width; the first branch names the
        output columns.  Any plain (deduplicating) UNION makes the whole
        chain blocking, because each dedup applies to everything
        accumulated so far (left-associative SQL semantics).
        """
        batch_size = batch_size or self.batch_size
        if statement.all_rows and all(statement.all_rows):
            streams = [self.execute_select_stream(branch, batch_size)
                       for branch in statement.branches]
            width = len(streams[0].columns)
            for position, stream in enumerate(streams[1:], start=2):
                if len(stream.columns) != width:
                    raise SchemaError(
                        f"UNION branch {position} has {len(stream.columns)} "
                        f"columns, expected {width}")

            def produce():
                for stream in streams:
                    yield from stream.batches()
            return RowStream(streams[0].columns, produce())
        return RowStream.from_rowset(
            self._execute_union_blocking(statement), batch_size)

    def _execute_union_blocking(self, statement: ast.UnionStatement) -> Rowset:
        results = [self.execute_select(branch)
                   for branch in statement.branches]
        width = len(results[0].columns)
        for position, result in enumerate(results[1:], start=2):
            if len(result.columns) != width:
                raise SchemaError(
                    f"UNION branch {position} has {len(result.columns)} "
                    f"columns, expected {width}")
        def dedup(candidate_rows: List[tuple]) -> List[tuple]:
            seen = set()
            unique: List[tuple] = []
            for row in candidate_rows:
                key = tuple(V.group_key(v) if not isinstance(v, Rowset)
                            else id(v) for v in row)
                if key not in seen:
                    seen.add(key)
                    unique.append(row)
            return unique

        # Left-associative: each plain UNION dedups everything so far,
        # UNION ALL just concatenates.
        rows: List[tuple] = list(results[0].rows)
        for keep_all, result in zip(statement.all_rows, results[1:]):
            rows.extend(result.rows)
            if not keep_all:
                rows = dedup(rows)
        return Rowset(results[0].columns, rows)

    def execute_select(self, statement: ast.SelectStatement) -> Rowset:
        return self.execute_select_stream(statement).materialize()

    def execute_select_stream(self, statement: ast.SelectStatement,
                              batch_size: Optional[int] = None) -> RowStream:
        """Execute a SELECT as a stream of row batches.

        Pipelined operators — scans, joins, WHERE, projection, DISTINCT-free
        TOP — produce output batch by batch, so peak memory for them is
        O(batch_size).  Blocking operators (GROUP BY / aggregates, ORDER BY,
        DISTINCT) consume the stream and materialise, exactly as before, so
        their semantics are unchanged.  Name resolution and planning happen
        eagerly (errors surface at call time); only row production is lazy.

        The ``engine.select`` span covers planning (and, on the blocking
        path, execution); lazily produced batches pin their counters back
        onto that span so trace rows stay attributed correctly.
        """
        span = obs_trace.span("engine.select")
        with span:
            return self._build_select_stream(statement, batch_size, span)

    def _build_select_stream(self, statement: ast.SelectStatement,
                             batch_size: Optional[int], span) -> RowStream:
        batch_size = batch_size or self.batch_size
        if statement.from_clause is None:
            result = self._select_without_from(statement)
            obs_trace.add_to(span, "rows_out", len(result.rows))
            return RowStream.from_rowset(result, batch_size)
        relation = self._seek_relation(statement.from_clause,
                                       statement.where, batch_size, span)
        if relation is None:
            relation = self.resolve_table_ref(statement.from_clause,
                                              batch_size=batch_size)
        context = relation.context()
        context.subquery_executor = self.execute_select

        grouped = bool(statement.group_by) or any(
            contains_aggregate(item.expr) for item in statement.select_list)
        if grouped or statement.order_by or statement.distinct:
            result = self._execute_select_blocking(statement, relation,
                                                   context, grouped, span)
            obs_trace.add_to(span, "rows_out", len(result.rows))
            return RowStream.from_rowset(result, batch_size)
        return self._select_streaming(statement, relation, context,
                                      batch_size, span)

    def _filtered_batches(self, statement: ast.SelectStatement,
                          relation: SourceRelation, context: EvalContext,
                          batch_size: int, span):
        """Scan + WHERE, batch at a time, counting scanned rows.

        Each batch boundary is also a workload checkpoint: live progress
        (rows processed) for ``DM_ACTIVE_STATEMENTS``, and the point where
        a ``CANCEL`` lands mid-scan.
        """
        for batch in relation.batches(batch_size):
            obs_trace.add_to(span, "rows_scanned", len(batch))
            obs_trace.add_to(span, "batches", 1)
            obs_workload.checkpoint(rows=len(batch))
            if statement.where is not None:
                batch = [
                    row for row in batch
                    if evaluate(statement.where,
                                context.with_row(row)) is True]
            if batch:
                yield batch

    def _select_streaming(self, statement: ast.SelectStatement,
                          relation: SourceRelation, context: EvalContext,
                          batch_size: int, span) -> RowStream:
        """The non-blocking pipeline: WHERE -> project -> TOP, per batch."""
        expanded = self._expand_select_list(statement, relation)
        source = self._filtered_batches(statement, relation, context,
                                        batch_size, span)
        # Column typing needs sample rows; buffer the head of the stream
        # (same 20-row sample the materialised path uses) and replay it.
        head: List[List[tuple]] = []
        sample_rows: List[tuple] = []
        for batch in source:
            head.append(batch)
            sample_rows.extend(batch)
            if len(sample_rows) >= 20:
                break
        output_columns = [
            self._column_meta(expr, name, relation, sample_rows, context)
            for expr, name in expanded]

        def produce():
            remaining = statement.top
            if remaining is not None and remaining <= 0:
                return
            for batch in _chain_batches(head, source):
                out = []
                for row in batch:
                    row_context = context.with_row(row)
                    out.append(tuple(evaluate(expr, row_context)
                                     for expr, _ in expanded))
                    if remaining is not None:
                        remaining -= 1
                        if remaining == 0:
                            obs_trace.add_to(span, "rows_out", len(out))
                            yield out
                            return
                if out:
                    obs_trace.add_to(span, "rows_out", len(out))
                    yield out
        return RowStream(output_columns, produce())

    def _execute_select_blocking(self, statement: ast.SelectStatement,
                                 relation: SourceRelation,
                                 context: EvalContext,
                                 grouped: bool, span) -> Rowset:
        """GROUP BY / ORDER BY / DISTINCT path: consume, then materialise."""
        rows = [row
                for batch in self._filtered_batches(
                    statement, relation, context, self.batch_size, span)
                for row in batch]
        if grouped:
            output_columns, output_rows = self._execute_grouped(
                statement, relation, context, rows)
        else:
            output_columns, output_rows = self._execute_projection(
                statement, relation, context, rows)

        if statement.distinct:
            # Dedup output rows while keeping each survivor paired with its
            # source row, so ORDER BY over source expressions stays aligned.
            seen = set()
            unique_rows = []
            unique_sources = []
            for position, row in enumerate(output_rows):
                key = tuple(V.group_key(v) if not isinstance(v, Rowset) else id(v)
                            for v in row)
                if key not in seen:
                    seen.add(key)
                    unique_rows.append(row)
                    if not grouped:
                        unique_sources.append(rows[position])
            output_rows = unique_rows
            if not grouped:
                rows = unique_sources

        if statement.order_by:
            output_rows = self._order_rows(
                statement, output_columns, output_rows, context, rows, grouped)

        if statement.top is not None:
            output_rows = output_rows[:statement.top]

        return Rowset(output_columns, output_rows)

    def _select_without_from(self, statement: ast.SelectStatement) -> Rowset:
        context = EvalContext({}, ())
        context.subquery_executor = self.execute_select
        columns: List[RowsetColumn] = []
        values: List[Any] = []
        for position, item in enumerate(statement.select_list):
            if isinstance(item.expr, ast.Star):
                raise BindError("SELECT * requires a FROM clause")
            value = evaluate(item.expr, context)
            values.append(value)
            columns.append(RowsetColumn(
                item.alias or f"Expr{position + 1}", infer_type(value)))
        return Rowset(columns, [tuple(values)])

    def _expand_select_list(self, statement: ast.SelectStatement,
                            relation: SourceRelation):
        """Expand ``*``/``alias.*`` into concrete (expr, name) pairs."""
        expanded: List[Tuple[ast.Expr, str]] = []
        for position, item in enumerate(statement.select_list):
            if isinstance(item.expr, ast.Star):
                for qualifier, column in relation.columns:
                    if item.expr.qualifier is not None and (
                            qualifier or "").upper() != item.expr.qualifier.upper():
                        continue
                    parts = ((qualifier, column.name) if qualifier
                             else (column.name,))
                    expanded.append((ast.ColumnRef(parts=parts), column.name))
                continue
            name = item.alias or self._default_name(item.expr, position)
            expanded.append((item.expr, name))
        return expanded

    @staticmethod
    def _default_name(expr: ast.Expr, position: int) -> str:
        if isinstance(expr, ast.ColumnRef):
            return expr.name
        if isinstance(expr, ast.FuncCall):
            return expr.name
        return f"Expr{position + 1}"

    def _column_meta(self, expr: ast.Expr, name: str,
                     relation: SourceRelation,
                     sample_rows: List[tuple],
                     context: EvalContext) -> RowsetColumn:
        """Best-effort output column typing (declared type for plain refs)."""
        if isinstance(expr, ast.ColumnRef):
            index = context.resolve_index(expr.parts)
            if index is not None:
                source = relation.columns[index][1]
                return RowsetColumn(name, source.type,
                                    nested_columns=source.nested_columns)
        for row in sample_rows[:20]:
            value = evaluate(expr, context.with_row(row))
            if isinstance(value, Rowset):
                return RowsetColumn(name, TABLE,
                                    nested_columns=list(value.columns))
            if value is not None:
                return RowsetColumn(name, infer_type(value))
        return RowsetColumn(name, TEXT)

    def _execute_projection(self, statement, relation, context, rows):
        expanded = self._expand_select_list(statement, relation)
        output_columns = [
            self._column_meta(expr, name, relation, rows, context)
            for expr, name in expanded]
        output_rows = []
        for row in rows:
            row_context = context.with_row(row)
            output_rows.append(tuple(
                evaluate(expr, row_context) for expr, _ in expanded))
        return output_columns, output_rows

    # -- grouping -------------------------------------------------------------

    def _execute_grouped(self, statement, relation, context, rows):
        expanded = self._expand_select_list(statement, relation)
        aggregate_nodes: List[ast.FuncCall] = []

        def collect(expr):
            if expr is None:
                return
            if is_aggregate_call(expr):
                aggregate_nodes.append(expr)
                return
            for child in _children(expr):
                collect(child)

        for expr, _ in expanded:
            collect(expr)
        collect(statement.having)
        for item in statement.order_by:
            collect(item.expr)

        # Bucket rows by the GROUP BY key (one global bucket if none).
        buckets: Dict[tuple, List[tuple]] = {}
        order: List[tuple] = []
        for row in rows:
            row_context = context.with_row(row)
            if statement.group_by:
                key = tuple(V.group_key(evaluate(g, row_context))
                            for g in statement.group_by)
            else:
                key = ()
            if key not in buckets:
                buckets[key] = []
                order.append(key)
            buckets[key].append(row)
        if not statement.group_by and not buckets:
            buckets[()] = []
            order.append(())

        output_rows = []
        representative_rows = []
        for key in order:
            bucket = buckets[key]
            values: Dict[int, Any] = {}
            for node in aggregate_nodes:
                count_rows = bool(node.args) and isinstance(
                    node.args[0], ast.Star) or not node.args
                accumulator = make_aggregate(
                    node.name, count_rows=count_rows, distinct=node.distinct)
                for row in bucket:
                    if count_rows:
                        accumulator.add(None)
                    else:
                        accumulator.add(
                            evaluate(node.args[0], context.with_row(row)))
                values[id(node)] = accumulator.result()
            representative = bucket[0] if bucket else tuple(
                [None] * len(relation.columns))
            row_context = context.with_row(representative)

            if statement.having is not None:
                having_value = evaluate(
                    _substitute(statement.having, values), row_context)
                if having_value is not True:
                    continue
            output_rows.append(tuple(
                evaluate(_substitute(expr, values), row_context)
                for expr, _ in expanded))
            representative_rows.append((representative, values))

        output_columns = []
        for position, (expr, name) in enumerate(expanded):
            sample = next(
                (row[position] for row in output_rows if row[position] is not None),
                None)
            output_columns.append(RowsetColumn(name, infer_type(sample)))

        # ORDER BY for grouped queries: resolve against output columns or
        # re-evaluate with the bucket's aggregates substituted.
        if statement.order_by:
            keys = []
            names = [c.name.upper() for c in output_columns]
            for out_row, (representative, values) in zip(
                    output_rows, representative_rows):
                key = []
                for item in statement.order_by:
                    if isinstance(item.expr, ast.ColumnRef) and \
                            item.expr.name.upper() in names:
                        value = out_row[names.index(item.expr.name.upper())]
                    else:
                        value = evaluate(_substitute(item.expr, values),
                                         context.with_row(representative))
                    key.append(V.sort_key(value))
                keys.append(tuple(key))
            directions = [item.ascending for item in statement.order_by]
            output_rows = _multi_key_sort(output_rows, keys, directions)
            statement = _without_order(statement)
        return output_columns, output_rows

    # -- ordering -------------------------------------------------------------

    def _order_rows(self, statement, output_columns, output_rows, context,
                    source_rows, grouped):
        if grouped:
            return output_rows  # handled inside _execute_grouped
        names = [c.name.upper() for c in output_columns]
        keys = []
        for out_row, source_row in zip(output_rows, source_rows):
            key = []
            for item in statement.order_by:
                if isinstance(item.expr, ast.ColumnRef) and \
                        len(item.expr.parts) == 1 and \
                        item.expr.name.upper() in names:
                    value = out_row[names.index(item.expr.name.upper())]
                else:
                    value = evaluate(item.expr, context.with_row(source_row))
                key.append(V.sort_key(value))
            keys.append(tuple(key))
        directions = [item.ascending for item in statement.order_by]
        return _multi_key_sort(output_rows, keys, directions)

    # -- cardinality estimation (repro.sqlstore.stats) -------------------------

    def _stats_resolver(self, ref: ast.TableRef):
        """``resolver(parts) -> (ColumnStats, row_count) | None`` for
        :func:`stats.estimate_selectivity`, honouring alias qualifiers.

        Joins try the left side first, then the right; views and external
        sources resolve nothing (selectivity falls back to defaults).
        """
        if isinstance(ref, ast.NamedTable):
            key = ref.name.upper()
            if key in self.views:
                return lambda parts: None
            table = self.tables.get(key)
            if table is None or table.stats is None:
                return lambda parts: None
            qualifier = (ref.alias or ref.name).upper()

            def resolve(parts):
                if len(parts) > 1 and parts[0].upper() != qualifier:
                    return None
                try:
                    # May lazily rebuild after a paged reopen — and that
                    # rebuild reads pages, so estimation degrades to the
                    # defaults rather than surfacing a storage error here.
                    table_stats = table.statistics()
                except Exception:
                    return None
                if table_stats is None:
                    return None
                column = table_stats.column(parts[-1])
                if column is None:
                    return None
                return column, table_stats.row_count
            return resolve
        if isinstance(ref, ast.Join):
            left = self._stats_resolver(ref.left)
            right = self._stats_resolver(ref.right)

            def resolve(parts):
                found = left(parts)
                return found if found is not None else right(parts)
            return resolve
        return lambda parts: None

    def _estimate_ref_rows(self, ref: ast.TableRef) -> Optional[int]:
        """Estimated source cardinality, or None when unknown (external
        sources).  Exact for base tables; views, subqueries and joins
        estimate through the selectivity/grouping rules in stats.py."""
        if self._est_depth >= self.MAX_VIEW_DEPTH:
            return None
        if isinstance(ref, ast.NamedTable):
            key = ref.name.upper()
            if key in self.views:
                self._est_depth += 1
                try:
                    return self._estimate_select_rows(self.views[key])
                finally:
                    self._est_depth -= 1
            if key in self.tables:
                return len(self.tables[key])
            return None
        if isinstance(ref, ast.SubquerySource):
            self._est_depth += 1
            try:
                return self._estimate_select_rows(ref.select)
            finally:
                self._est_depth -= 1
        if isinstance(ref, ast.Join):
            return self._estimate_join(ref)[2]
        return None

    def _estimate_join(self, ref: ast.Join, left_est: Optional[int] = None,
                       right_est: Optional[int] = None):
        """``(left_est, right_est, join_est)`` — each None when unknown.

        Callers that already planned the sides (EXPLAIN over external
        sources) may pass their estimates in; otherwise the sides are
        estimated here.
        """
        if left_est is None:
            left_est = self._estimate_ref_rows(ref.left)
        if right_est is None:
            right_est = self._estimate_ref_rows(ref.right)
        if ref.kind == "CROSS":
            return left_est, right_est, stats_mod.estimate_join_rows(
                "CROSS", left_est, right_est, False)
        equalities, residual = _split_equi_condition(ref.condition)
        ndvs = (None, None)
        if equalities:
            ndvs = (self._equi_key_ndv(ref.left, equalities),
                    self._equi_key_ndv(ref.right, equalities))
        est = stats_mod.estimate_join_rows(
            ref.kind, left_est, right_est, bool(equalities), ndvs)
        if est is not None and residual:
            resolver = self._stats_resolver(ref)
            selectivity = 1.0
            for condition in residual:
                selectivity *= stats_mod.estimate_selectivity(
                    condition, resolver)
            est = int(round(est * selectivity))
        return left_est, right_est, est

    def _equi_key_ndv(self, ref: ast.TableRef, equalities) -> Optional[int]:
        """NDV of one join side's first equi-key column, when its stats
        are known (the equality may spell either side first)."""
        resolver = self._stats_resolver(ref)
        a, b = equalities[0]
        for column_ref in (a, b):
            found = resolver(column_ref.parts)
            if found is not None:
                return found[0].ndv
        return None

    def _expr_ndv(self, expr: ast.Expr, resolver) -> Optional[int]:
        if isinstance(expr, ast.ColumnRef):
            found = resolver(expr.parts)
            if found is not None:
                return found[0].ndv
        return None

    def _estimate_select_rows(self, statement: ast.SelectStatement,
                              source_est: Optional[int] = None
                              ) -> Optional[int]:
        """Estimated SELECT output rows, or None when the source
        cardinality is unknown and no override is given."""
        if statement.from_clause is None:
            return 1
        if source_est is None:
            source_est = self._estimate_ref_rows(statement.from_clause)
        if source_est is None:
            return None
        resolver = self._stats_resolver(statement.from_clause)
        est = float(source_est)
        if statement.where is not None:
            est *= stats_mod.estimate_selectivity(statement.where, resolver)
        grouped = bool(statement.group_by) or any(
            contains_aggregate(item.expr) for item in statement.select_list)
        if grouped:
            ndvs = [self._expr_ndv(expr, resolver)
                    for expr in statement.group_by]
            est = float(stats_mod.estimate_group_rows(int(round(est)), ndvs))
        elif statement.distinct:
            exprs = [item.expr for item in statement.select_list]
            if not any(isinstance(expr, ast.Star) for expr in exprs):
                ndvs = [self._expr_ndv(expr, resolver) for expr in exprs]
                est = float(stats_mod.estimate_group_rows(
                    int(round(est)), ndvs))
        if statement.top is not None:
            est = min(est, float(statement.top))
        return max(0, int(round(est)))

    # -- cost-based decisions --------------------------------------------------

    def _cost_estimate_ref(self, ref: ast.TableRef) -> Optional[int]:
        """Estimate backing execution-affecting decisions.  None unless
        statistics are enabled, so heuristic planning stays bit-for-bit
        intact without them (the differential suite's baseline)."""
        if not self.stats_enabled:
            return None
        try:
            return self._estimate_ref_rows(ref)
        except Exception:
            return None

    def _hash_build_side(self, ref: ast.Join) -> str:
        """``"left"`` when estimates say the left side is strictly smaller
        (and both are known), else ``"right"`` — the original behaviour.
        Shared by the executor and the EXPLAIN mirror."""
        left = self._cost_estimate_ref(ref.left)
        right = self._cost_estimate_ref(ref.right)
        if left is None or right is None or left >= right:
            return "right"
        return "left"

    def _seek_is_beneficial(self, table: Table, positions) -> bool:
        """Cost-gate an index seek against the sequential scan (page-aware
        on a paged store).  Without statistics the original always-seek
        behaviour is kept."""
        if not self.stats_enabled:
            return True
        return table.store.seek_cost(positions) < table.store.scan_cost()

    # -- FROM resolution ------------------------------------------------------

    # -- EXPLAIN planning ------------------------------------------------------

    def plan_select(self, statement: ast.SelectStatement,
                    external_planner: Optional[Callable] = None):
        """Describe the plan of a SELECT without executing it.

        Mirrors the strategy decisions of :meth:`execute_select_stream`
        (blocking vs. streaming, join algorithm) read-only: no table is
        scanned, no span opened.  ``external_planner`` plans FROM sources
        the engine cannot (mining-provider sources), exactly as
        ``external_resolver`` executes them.
        """
        from repro.obs.explain import PlanNode

        grouped = bool(statement.group_by) or any(
            contains_aggregate(item.expr) for item in statement.select_list)
        blockers = []
        if grouped:
            blockers.append("group/aggregate")
        if statement.order_by:
            blockers.append("order by")
        if statement.distinct:
            blockers.append("distinct")
        strategy = (f"materialized ({', '.join(blockers)})" if blockers
                    else f"streamed (batch {self.batch_size})")
        node = PlanNode("select", strategy=strategy,
                        span_name="engine.select", rows_counter="rows_out")
        details = []
        if statement.where is not None:
            details.append("filtered")
        if statement.top is not None:
            details.append(f"top {statement.top}")
        node.detail = ", ".join(details) or None
        if statement.from_clause is None:
            node.strategy = "constant"
            node.est_rows = 1
            node.cost = 0.0
            return node
        child = self._plan_seek(statement.from_clause, statement.where)
        if child is None:
            child = self.plan_table_ref(statement.from_clause,
                                        external_planner)
        node.add(child)
        est = self._estimate_select_rows(statement)
        if est is None and child.est_rows is not None:
            # External source (mining provider): feed the planned child's
            # own estimate through the same selectivity/grouping rules.
            est = self._estimate_select_rows(statement,
                                             source_est=child.est_rows)
        node.est_rows = est
        examined = child.est_rows if child.est_rows is not None else est
        node.cost = (child.cost or 0.0) + float(examined or 0)
        return node

    def plan_union(self, statement: ast.UnionStatement,
                   external_planner: Optional[Callable] = None):
        """Describe a UNION chain's plan (see :meth:`execute_union_stream`)."""
        from repro.obs.explain import PlanNode

        streaming = bool(statement.all_rows) and all(statement.all_rows)
        node = PlanNode(
            "union",
            strategy="streamed (all branches ALL)" if streaming
            else "materialized (dedup)")
        ests = []
        cost = 0.0
        for branch in statement.branches:
            child = self.plan_select(branch, external_planner)
            node.add(child)
            ests.append(child.est_rows)
            cost += (child.cost or 0.0) + float(child.est_rows or 0)
        node.cost = cost
        if all(e is not None for e in ests):
            total = sum(ests)
            # Dedup branches can only thin the output; keep the ALL total
            # as the (upper-bound) estimate either way.
            node.est_rows = total
        return node

    def _plan_seek(self, ref: ast.TableRef, where: Optional[ast.Expr]):
        """EXPLAIN mirror of :meth:`_seek_relation` — read-only (candidate
        positions are computed for the estimate, but no usage counter
        moves).  On a paged store the detail also carries the buffer-hit
        expectation: how many of the pages the seek will touch are
        resident right now."""
        from repro.obs.explain import PlanNode

        if where is None:
            return None
        table = self._indexed_table(ref)
        if table is None:
            return None
        choice = choose_index(where, table, ref.alias or ref.name)
        if choice is None:
            return None
        if not self._seek_is_beneficial(table, choice.positions):
            # The executor will fall back to the sequential scan; mirror
            # that by declining the seek node here too.
            return None
        detail = choice.detail
        expectation = table.store.seek_expectation(choice.positions)
        if expectation is not None:
            detail = f"{detail}; {expectation}"
        node = PlanNode("index seek", target=ref.name,
                        strategy=f"index {choice.index.name} "
                                 f"({choice.access})",
                        detail=detail,
                        est_rows=len(choice.positions),
                        match="parent",
                        rows_counter="rows_scanned")
        node.cost = float(table.store.seek_cost(choice.positions))
        return node

    def _plan_join_build_index(self, ref: ast.TableRef, equalities):
        """Best-effort EXPLAIN mirror of :meth:`_join_build_index`.

        The executor resolves the build column with full two-sided name
        resolution; here the first equality's column refs are matched
        against the right-side base table by name (right-side spelling
        first).  Ambiguous orientations may diverge — that affects the
        plan text only, never execution.
        """
        table = self._indexed_table(ref)
        if table is None:
            return None
        qualifier = (ref.alias or ref.name).upper()
        a, b = equalities[0]
        for column_ref in (b, a):
            parts = column_ref.parts
            if len(parts) > 1 and parts[0].upper() != qualifier:
                continue
            if not table.schema.has_column(parts[-1]):
                continue
            index = table.index_on(table.schema.index_of(parts[-1]))
            if index is not None:
                return index
        return None

    def plan_table_ref(self, ref: ast.TableRef,
                       external_planner: Optional[Callable] = None):
        """Describe a FROM source's plan (see :meth:`resolve_table_ref`)."""
        from repro.obs.explain import PlanNode

        if external_planner is not None:
            planned = external_planner(ref)
            if planned is not None:
                return planned
        if isinstance(ref, ast.NamedTable):
            key = ref.name.upper()
            if key in self.views:
                node = PlanNode("view", target=ref.name,
                                strategy="inline expansion")
                child = self.plan_select(self.views[key], external_planner)
                node.add(child)
                node.est_rows = child.est_rows
                node.cost = child.cost
                return node
            if key in self.tables:
                table = self.tables[key]
                node = PlanNode("table scan", target=ref.name,
                                strategy=f"sequential "
                                         f"(batch {self.batch_size})",
                                est_rows=len(table),
                                match="parent",
                                rows_counter="rows_scanned")
                node.cost = float(table.store.scan_cost())
                return node
            raise BindError(f"no table, view, or model named {ref.name!r}")
        if isinstance(ref, ast.SubquerySource):
            node = self.plan_select(ref.select, external_planner)
            node.operator = "subquery"
            node.target = ref.alias
            return node
        if isinstance(ref, ast.Join):
            left = self.plan_table_ref(ref.left, external_planner)
            right = self.plan_table_ref(ref.right, external_planner)
            left_est, right_est, est = self._estimate_join(
                ref, left_est=left.est_rows, right_est=right.est_rows)
            if ref.kind == "CROSS":
                strategy = "cross product (right side materialized)"
                work = float((left_est or 0) * (right_est or 0))
            else:
                equalities, _ = _split_equi_condition(ref.condition)
                if equalities:
                    strategy = "hash join (right side build)"
                    index = self._plan_join_build_index(ref.right,
                                                        equalities)
                    if index is not None:
                        strategy = (f"hash join (right side index "
                                    f"{index.name})")
                    elif self._hash_build_side(ref) == "left":
                        strategy = "hash join (left side build)"
                    work = float((left_est or 0) + (right_est or 0)
                                 + (est or 0))
                else:
                    strategy = "nested loop (right side materialized)"
                    work = float((left_est or 0) * (right_est or 0))
            node = PlanNode("join", target=ref.kind.lower(),
                            strategy=strategy, est_rows=est,
                            span_name="engine.join",
                            rows_counter="join_rows_out")
            node.cost = (left.cost or 0.0) + (right.cost or 0.0) + work
            node.add(left)
            node.add(right)
            return node
        raise BindError(
            f"FROM source {type(ref).__name__} requires the mining provider")

    def _indexed_table(self, ref: ast.TableRef) -> Optional[Table]:
        """The base table behind a NamedTable FROM source, if it carries
        user indexes.  Views expand through SELECT and models never share
        a key with ``self.tables`` (the provider enforces one namespace),
        so a plain dict probe is a complete claim check."""
        if not isinstance(ref, ast.NamedTable):
            return None
        key = ref.name.upper()
        if key in self.views:
            return None
        table = self.tables.get(key)
        if table is None or not table.indexes:
            return None
        return table

    def _join_build_index(self, ref: ast.TableRef, build_column: int):
        """``(table, index)`` when an equi-join's right side is a base
        table with a user index on the build column ordinal, else None.
        (For a base table the relation's column ordinals are exactly the
        schema ordinals, so ``build_column`` indexes both.)"""
        table = self._indexed_table(ref)
        if table is None:
            return None
        index = table.index_on(build_column)
        if index is None:
            return None
        return table, index

    def _seek_relation(self, ref: ast.TableRef, where: Optional[ast.Expr],
                       batch_size: int, span) -> Optional[SourceRelation]:
        """Answer a filtered base-table scan with an index seek, if legal.

        Candidate positions come from the leftmost sargable AND-conjunct
        (point, IN, or range — see :func:`choose_index`); the full WHERE
        clause is still re-applied by the filter stage, so a seek only
        narrows the scan.  Positions stream in ascending order, keeping
        output rows byte-identical to the sequential plan.
        """
        if where is None:
            return None
        table = self._indexed_table(ref)
        if table is None:
            return None
        qualifier = ref.alias or ref.name
        choice = choose_index(where, table, qualifier)
        if choice is None:
            return None
        if not self._seek_is_beneficial(table, choice.positions):
            # Wide seeks (most of the table, or cold pages a scan would
            # read anyway) cost more than the sequential scan; positions
            # stream ascending, so either path yields identical rows.
            return None
        choice.note_use()
        if self.metrics is not None:
            name = ("index.range_seeks" if choice.access == "range"
                    else "index.seeks")
            self.metrics.counter(name).inc()
        obs_trace.add_to(span, "index_seeks", 1)
        columns = [(qualifier, c) for c in table.rowset_columns()]
        return SourceRelation(
            columns,
            batches=table.store.iter_positions(choice.positions, batch_size))

    def resolve_table_ref(self, ref: ast.TableRef,
                          batch_size: Optional[int] = None) -> SourceRelation:
        batch_size = batch_size or self.batch_size
        if self.external_resolver is not None:
            resolved = self.external_resolver(ref)
            if resolved is not None:
                return resolved
        if isinstance(ref, ast.NamedTable):
            key = ref.name.upper()
            qualifier = ref.alias or ref.name
            if key in self.views:
                if self._view_depth >= self.MAX_VIEW_DEPTH:
                    raise Error(
                        f"view expansion exceeded depth "
                        f"{self.MAX_VIEW_DEPTH} at {ref.name!r} — is the "
                        f"view recursive?")
                # Stream construction resolves the view's own FROM clause
                # eagerly, so (mutual) recursion is still caught here; only
                # row production is deferred.
                self._view_depth += 1
                try:
                    stream = self.execute_select_stream(self.views[key],
                                                        batch_size)
                finally:
                    self._view_depth -= 1
                return SourceRelation.from_stream(stream, qualifier)
            if key in self.tables:
                table = self.tables[key]
                columns = [(qualifier, c) for c in table.rowset_columns()]
                return SourceRelation(
                    columns, batches=table.iter_batches(batch_size))
            raise BindError(f"no table, view, or model named {ref.name!r}")
        if isinstance(ref, ast.SubquerySource):
            stream = self.execute_select_stream(ref.select, batch_size)
            return SourceRelation.from_stream(stream, ref.alias)
        if isinstance(ref, ast.Join):
            return self._resolve_join(ref, batch_size)
        raise BindError(
            f"FROM source {type(ref).__name__} requires the mining provider")

    def _resolve_join(self, ref: ast.Join,
                      batch_size: int) -> SourceRelation:
        """Streaming join: materialise the build (right) side, stream the
        probe (left) side batch by batch.  Output row order matches the old
        fully-materialised implementation exactly (left-major)."""
        span = obs_trace.span("engine.join", kind=ref.kind)
        with span:
            left = self.resolve_table_ref(ref.left, batch_size)
            right = self.resolve_table_ref(ref.right, batch_size)
            columns = left.columns + right.columns
            right_width = len(right.columns)

            if ref.kind == "CROSS":
                right_rows = right.rows  # build side
                obs_trace.add_to(span, "join_rows_in", len(right_rows))

                def produce_cross():
                    for batch in left.batches(batch_size):
                        obs_trace.add_to(span, "join_rows_in", len(batch))
                        out = [l + r for l in batch for r in right_rows]
                        obs_trace.add_to(span, "join_rows_out", len(out))
                        if out:
                            yield out
                return SourceRelation(columns, batches=produce_cross())

            equalities, residual = _split_equi_condition(ref.condition)
            left_context = left.context()
            right_context = right.context()
            pairs = []
            for a, b in equalities:
                a_index = left_context.resolve_index(a.parts)
                b_index = right_context.resolve_index(b.parts)
                if a_index is None or b_index is None:
                    # Sides may be written in either order.
                    a_index = left_context.resolve_index(b.parts)
                    b_index = right_context.resolve_index(a.parts)
                if a_index is None or b_index is None:
                    residual.append(ast.BinaryOp("=", a, b))
                    continue
                pairs.append((a_index, b_index))

            # Build side: a user index on the first equi column of a
            # base-table right side already holds the hash buckets the
            # scan would build — positions per key are in insertion
            # order, so the bucket lists (and thus output order) are
            # identical to the scan-built dict.
            right_rows: List[tuple] = []
            prebuilt: Optional[Dict[Any, List[tuple]]] = None
            if pairs:
                build_source = self._join_build_index(ref.right, pairs[0][1])
                if build_source is not None:
                    build_table, build_index = build_source
                    prebuilt = {
                        key: build_table.store.fetch_rows(positions)
                        for key, positions in build_index.hash.items()}
                    build_index.join_probes += 1
                    if self.metrics is not None:
                        self.metrics.counter("index.join_probes").inc()
                    obs_trace.add_to(span, "join_rows_in", len(build_table))
            # Cost-based build side: when statistics say the left side is
            # strictly smaller (and no right-side index already holds the
            # buckets), build over the left and stream the right.
            build_left = bool(pairs) and prebuilt is None \
                and self._hash_build_side(ref) == "left"
            if prebuilt is None and not build_left:
                right_rows = right.rows  # build side
                obs_trace.add_to(span, "join_rows_in", len(right_rows))

            joined_context = SourceRelation(columns, []).context()

        def residual_ok(row):
            return all(
                evaluate(condition, joined_context.with_row(row)) is True
                for condition in residual)

        def produce_left_build():
            # Cost-chosen swap: the (estimated-smaller) left side builds
            # the hash, the right side streams as the probe.  Output stays
            # byte-identical to the right-build plan: matches accumulate
            # per left position in right-arrival order — exactly the order
            # a right-build bucket would replay them — and rows are emitted
            # left-major over the original left batch boundaries.
            first_left, first_right = pairs[0]
            left_flat: List[tuple] = []
            boundaries: List[int] = []
            build: Dict[Any, List[int]] = {}
            for batch in left.batches(batch_size):
                obs_trace.add_to(span, "join_rows_in", len(batch))
                boundaries.append(len(batch))
                for l in batch:
                    position = len(left_flat)
                    left_flat.append(l)
                    if l[first_left] is not None:
                        build.setdefault(
                            V.group_key(l[first_left]), []).append(position)
            matches: List[List[tuple]] = [[] for _ in left_flat]
            probed = 0
            for right_batch in right.batches(batch_size):
                probed += len(right_batch)
                for r in right_batch:
                    if r[first_right] is None:
                        continue
                    for position in build.get(
                            V.group_key(r[first_right]), ()):
                        l = left_flat[position]
                        if all(V.sql_equal(l[a], r[b]) is True
                               for a, b in pairs[1:]):
                            if residual_ok(l + r):
                                matches[position].append(r)
            obs_trace.add_to(span, "join_rows_in", probed)
            cursor = 0
            for size in boundaries:
                out = []
                for position in range(cursor, cursor + size):
                    l = left_flat[position]
                    for r in matches[position]:
                        out.append(l + r)
                    if ref.kind == "LEFT" and not matches[position]:
                        out.append(l + tuple([None] * right_width))
                cursor += size
                obs_trace.add_to(span, "join_rows_out", len(out))
                if out:
                    yield out

        def produce():
            build: Optional[Dict[Any, List[tuple]]] = None
            if pairs:
                # Hash join on the first equi pair; verify the rest per
                # candidate.  An index-built dict (prebuilt) short-cuts
                # the build scan.
                build = prebuilt
                if build is None:
                    build = {}
                    first_right = pairs[0][1]
                    for r in right_rows:
                        build.setdefault(
                            V.group_key(r[first_right]), []).append(r)
            for batch in left.batches(batch_size):
                obs_trace.add_to(span, "join_rows_in", len(batch))
                out = []
                if pairs:
                    first_left = pairs[0][0]
                    for l in batch:
                        matched = False
                        if l[first_left] is not None:
                            for r in build.get(V.group_key(l[first_left]), []):
                                if all(V.sql_equal(l[a], r[b]) is True
                                       for a, b in pairs[1:]):
                                    candidate = l + r
                                    if residual_ok(candidate):
                                        out.append(candidate)
                                        matched = True
                        if ref.kind == "LEFT" and not matched:
                            out.append(l + tuple([None] * right_width))
                else:
                    for l in batch:
                        matched = False
                        for r in right_rows:
                            candidate = l + r
                            if evaluate(ref.condition,
                                        joined_context.with_row(candidate)) \
                                    is True:
                                out.append(candidate)
                                matched = True
                        if ref.kind == "LEFT" and not matched:
                            out.append(l + tuple([None] * right_width))
                obs_trace.add_to(span, "join_rows_out", len(out))
                if out:
                    yield out
        if build_left:
            return SourceRelation(columns, batches=produce_left_build())
        return SourceRelation(columns, batches=produce())


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _chain_batches(head: List[List[tuple]], tail) -> Iterable[List[tuple]]:
    """Replay buffered head batches, then continue with the live iterator."""
    yield from head
    yield from tail


def _children(expr: ast.Expr) -> List[ast.Expr]:
    if isinstance(expr, ast.BinaryOp):
        return [expr.left, expr.right]
    if isinstance(expr, ast.UnaryOp):
        return [expr.operand]
    if isinstance(expr, ast.FuncCall):
        return list(expr.args)
    if isinstance(expr, ast.IsNull):
        return [expr.operand]
    if isinstance(expr, ast.InList):
        return [expr.operand] + list(expr.items)
    if isinstance(expr, ast.InSelect):
        return [expr.operand]
    if isinstance(expr, ast.Between):
        return [expr.operand, expr.low, expr.high]
    if isinstance(expr, ast.Like):
        return [expr.operand, expr.pattern]
    if isinstance(expr, ast.Case):
        children = []
        for condition, result in expr.whens:
            children += [condition, result]
        if expr.else_result is not None:
            children.append(expr.else_result)
        return children
    return []


def _substitute(expr: ast.Expr, values: Dict[int, Any]) -> ast.Expr:
    """Replace aggregate calls (by node identity) with computed literals."""
    if expr is None:
        return expr
    if id(expr) in values:
        return ast.Literal(values[id(expr)])
    if isinstance(expr, ast.BinaryOp):
        return ast.BinaryOp(expr.op, _substitute(expr.left, values),
                            _substitute(expr.right, values))
    if isinstance(expr, ast.UnaryOp):
        return ast.UnaryOp(expr.op, _substitute(expr.operand, values))
    if isinstance(expr, ast.FuncCall):
        return ast.FuncCall(expr.name,
                            [_substitute(a, values) for a in expr.args],
                            expr.distinct)
    if isinstance(expr, ast.IsNull):
        return ast.IsNull(_substitute(expr.operand, values), expr.negated)
    if isinstance(expr, ast.InList):
        return ast.InList(_substitute(expr.operand, values),
                          [_substitute(i, values) for i in expr.items],
                          expr.negated)
    if isinstance(expr, ast.Between):
        return ast.Between(_substitute(expr.operand, values),
                           _substitute(expr.low, values),
                           _substitute(expr.high, values), expr.negated)
    if isinstance(expr, ast.Like):
        return ast.Like(_substitute(expr.operand, values),
                        _substitute(expr.pattern, values), expr.negated)
    if isinstance(expr, ast.Case):
        return ast.Case(
            [(_substitute(c, values), _substitute(r, values))
             for c, r in expr.whens],
            _substitute(expr.else_result, values)
            if expr.else_result is not None else None)
    return expr


def _split_equi_condition(condition: Optional[ast.Expr]):
    """Split an AND tree into column=column pairs and residual predicates."""
    equalities: List[Tuple[ast.ColumnRef, ast.ColumnRef]] = []
    residual: List[ast.Expr] = []

    def walk(expr):
        if isinstance(expr, ast.BinaryOp) and expr.op == "AND":
            walk(expr.left)
            walk(expr.right)
            return
        if isinstance(expr, ast.BinaryOp) and expr.op == "=" and \
                isinstance(expr.left, ast.ColumnRef) and \
                isinstance(expr.right, ast.ColumnRef):
            equalities.append((expr.left, expr.right))
            return
        residual.append(expr)

    if condition is not None:
        walk(condition)
    return equalities, residual


def _multi_key_sort(rows: List[tuple], keys: List[tuple],
                    directions: List[bool]) -> List[tuple]:
    """Stable multi-key sort honouring per-key ASC/DESC."""
    indexed = list(range(len(rows)))
    # Sort by the last key first (stable sorts compose right-to-left).
    for position in reversed(range(len(directions))):
        indexed.sort(key=lambda i: keys[i][position],
                     reverse=not directions[position])
    return [rows[i] for i in indexed]


def _without_order(statement: ast.SelectStatement) -> ast.SelectStatement:
    clone = ast.SelectStatement(
        select_list=statement.select_list, from_clause=statement.from_clause,
        where=statement.where, group_by=statement.group_by,
        having=statement.having, order_by=[], distinct=statement.distinct,
        top=statement.top, flattened=statement.flattened)
    return clone
