"""The paged store's root pointer: one atomically-replaced JSON document.

``catalog.json`` is the *only* mutable file in the storage directory —
page files are immutable once written (see :mod:`repro.sqlstore.diskmgr`),
so the catalog swap is the commit point: a statement's effects become
durable exactly when the new catalog (referencing the new page versions)
replaces the old one.  The swap goes through the shared
:func:`~repro.store.atomic.atomic_write_text` helper with fault points at
``catalog.before_write`` / ``catalog.before_replace`` /
``catalog.after_replace``, so the crash suite can kill the writer at each
station and assert the previous committed state survives byte-intact.

Document layout (format 1)::

    {"format": 1, "kind": "repro-paged-catalog",
     "next_table_id": 3, "commit_seq": 17, "data_version": 42,
     "tables": {"T": {"id": 1, "name": "T", "version": 5,
                      "columns": [{"name", "type", "nullable",
                                   "primary_key"}, ...],
                      "pages": [{"id": 0, "rows": 120,
                                 "file": "p0_v3.pg"}, ...],
                      "indexes": [{"name": "ix", "column": "col"}, ...]}},
     "views": {"V": "SELECT ..."}}
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.sqlstore.diskmgr import StorageError
from repro.store.atomic import atomic_write_text

CATALOG_FORMAT = 1
CATALOG_KIND = "repro-paged-catalog"


class DiskCatalog:
    """Loads and atomically replaces the storage root's catalog document."""

    def __init__(self, path: str, faults=None):
        self.path = path
        self.faults = faults

    def load(self) -> Optional[Dict[str, Any]]:
        """The committed catalog, or None when the store is brand new.

        A torn or foreign document raises :class:`StorageError`: the
        catalog is replaced atomically, so anything unreadable here was
        never produced by a crash of ours — refusing loudly beats silently
        reinitialising over data.
        """
        if not os.path.exists(self.path):
            return None
        try:
            with open(self.path, encoding="utf-8") as handle:
                document = json.load(handle)
        except (OSError, ValueError) as exc:
            raise StorageError(
                f"cannot read storage catalog {self.path!r}: {exc}") from exc
        if not isinstance(document, dict) or \
                document.get("kind") != CATALOG_KIND:
            raise StorageError(
                f"{self.path!r} is not a paged-store catalog")
        if document.get("format") != CATALOG_FORMAT:
            raise StorageError(
                f"storage catalog format {document.get('format')!r} is not "
                f"supported (this build reads format {CATALOG_FORMAT})")
        return document

    def save(self, document: Dict[str, Any]) -> None:
        document = dict(document)
        document["format"] = CATALOG_FORMAT
        document["kind"] = CATALOG_KIND
        atomic_write_text(self.path, json.dumps(document, sort_keys=True),
                          faults=self.faults, fault_prefix="catalog")

    def remove(self) -> None:
        try:
            os.unlink(self.path)
        except OSError:
            pass
