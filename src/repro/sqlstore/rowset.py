"""Rowsets: the tabular result shape shared by SQL and DMX commands.

OLE DB represents every result — query output, schema rowsets, model content —
as a *rowset*: column metadata plus an iterable of rows.  A column may itself
be TABLE-typed, in which case the corresponding cell holds a nested
:class:`Rowset` (the hierarchical rowsets of section 3.1 of the paper).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import BindError
from repro.sqlstore.types import SqlType, TABLE, TEXT, infer_type


class RowsetColumn:
    """Metadata for one rowset column.

    ``nested_columns`` is populated only for TABLE-typed columns, describing
    the schema of the nested rowsets stored in that column's cells.
    """

    def __init__(self, name: str, type_: SqlType = TEXT,
                 nested_columns: Optional[List["RowsetColumn"]] = None):
        self.name = name
        self.type = type_
        self.nested_columns = nested_columns
        if nested_columns is not None:
            self.type = TABLE

    def __repr__(self) -> str:
        if self.type is TABLE:
            inner = ", ".join(c.name for c in self.nested_columns or [])
            return f"RowsetColumn({self.name!r}, TABLE({inner}))"
        return f"RowsetColumn({self.name!r}, {self.type.name})"


class Rowset:
    """Column metadata plus materialised rows.

    Rows are tuples aligned with ``columns``.  Cells in TABLE-typed columns
    hold nested ``Rowset`` instances (or None).
    """

    def __init__(self, columns: Sequence[RowsetColumn],
                 rows: Iterable[Tuple] = ()):
        self.columns: List[RowsetColumn] = list(columns)
        self.rows: List[Tuple] = [tuple(r) for r in rows]
        self._by_name = {}
        for index, column in enumerate(self.columns):
            # Later duplicates do not shadow earlier ones (SELECT a, a is legal).
            self._by_name.setdefault(column.name.upper(), index)

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_dicts(cls, records: Sequence[dict],
                   column_order: Optional[Sequence[str]] = None) -> "Rowset":
        """Build a rowset from dict records, inferring column types."""
        if column_order is None:
            seen: List[str] = []
            for record in records:
                for key in record:
                    if key not in seen:
                        seen.append(key)
            column_order = seen
        columns = []
        for name in column_order:
            sample = next(
                (r[name] for r in records if r.get(name) is not None), None)
            if isinstance(sample, Rowset):
                columns.append(RowsetColumn(
                    name, TABLE, nested_columns=list(sample.columns)))
            else:
                columns.append(RowsetColumn(name, infer_type(sample)))
        rows = [tuple(record.get(name) for name in column_order)
                for record in records]
        return cls(columns, rows)

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self.rows)

    def __getitem__(self, index: int) -> Tuple:
        return self.rows[index]

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def index_of(self, name: str) -> int:
        try:
            return self._by_name[name.upper()]
        except KeyError as exc:
            raise BindError(
                f"no column {name!r} in rowset "
                f"(columns: {', '.join(self.column_names())})") from exc

    def has_column(self, name: str) -> bool:
        return name.upper() in self._by_name

    def column_values(self, name: str) -> List[Any]:
        """All values of one column, in row order."""
        index = self.index_of(name)
        return [row[index] for row in self.rows]

    def to_dicts(self) -> List[dict]:
        """Rows as dicts keyed by column name (nested rowsets recurse)."""
        names = self.column_names()
        result = []
        for row in self.rows:
            record = {}
            for name, value in zip(names, row):
                if isinstance(value, Rowset):
                    record[name] = value.to_dicts()
                else:
                    record[name] = value
            result.append(record)
        return result

    def single_value(self) -> Any:
        """The value of a 1x1 rowset (scalar results)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise BindError(
                f"expected scalar rowset, got {len(self.rows)} rows x "
                f"{len(self.columns)} columns")
        return self.rows[0][0]

    # -- display --------------------------------------------------------------

    def pretty(self, max_rows: int = 50, indent: str = "") -> str:
        """Fixed-width text rendering; nested rowsets render indented."""
        names = self.column_names()
        display_rows = self.rows[:max_rows]
        nested_cells: List[Tuple[str, Rowset]] = []

        def fmt(value: Any) -> str:
            if value is None:
                return "NULL"
            if isinstance(value, Rowset):
                return f"<TABLE {len(value)} rows>"
            if isinstance(value, float):
                return f"{value:.6g}"
            return str(value)

        cells = [[fmt(v) for v in row] for row in display_rows]
        widths = [max([len(n)] + [len(r[i]) for r in cells])
                  for i, n in enumerate(names)]
        lines = [indent + " | ".join(n.ljust(w) for n, w in zip(names, widths))]
        lines.append(indent + "-+-".join("-" * w for w in widths))
        for row, text_row in zip(display_rows, cells):
            lines.append(indent + " | ".join(
                t.ljust(w) for t, w in zip(text_row, widths)))
            for value, name in zip(row, names):
                if isinstance(value, Rowset) and len(value):
                    nested_cells.append((name, value))
        for name, nested in nested_cells:
            lines.append(f"{indent}  [{name}]:")
            lines.append(nested.pretty(max_rows=max_rows, indent=indent + "    "))
        if len(self.rows) > max_rows:
            lines.append(f"{indent}... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"Rowset({len(self.rows)} rows x {len(self.columns)} cols: "
                f"{', '.join(self.column_names())})")


DEFAULT_BATCH_SIZE = 1024


class RowStream:
    """A streaming rowset: column metadata plus a single-use batch iterator.

    The streaming execution pipeline passes results between operators as
    *batches* — lists of row tuples — so that peak memory is proportional to
    the batch size rather than to the relation size.  Column metadata is
    available up front (operators need it to plan), while the rows are
    produced lazily by the underlying generator chain.

    A stream may be consumed exactly once, through :meth:`batches`,
    iteration, or :meth:`materialize`; a second consumption attempt raises
    :class:`BindError` rather than silently yielding nothing.
    """

    __slots__ = ("columns", "_batches", "_consumed", "_by_name")

    def __init__(self, columns: Sequence[RowsetColumn],
                 batches: Iterable[List[Tuple]]):
        self.columns: List[RowsetColumn] = list(columns)
        self._batches = iter(batches)
        self._consumed = False
        self._by_name = {}
        for index, column in enumerate(self.columns):
            self._by_name.setdefault(column.name.upper(), index)

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_rowset(cls, rowset: Rowset,
                    batch_size: int = DEFAULT_BATCH_SIZE) -> "RowStream":
        """Re-batch an already materialised rowset."""
        def produce():
            rows = rowset.rows
            for start in range(0, len(rows), batch_size):
                yield rows[start:start + batch_size]
        return cls(rowset.columns, produce())

    @classmethod
    def from_rows(cls, columns: Sequence[RowsetColumn],
                  rows: Iterable[Tuple],
                  batch_size: int = DEFAULT_BATCH_SIZE) -> "RowStream":
        """Batch up a plain row iterable."""
        def produce():
            batch: List[Tuple] = []
            for row in rows:
                batch.append(tuple(row))
                if len(batch) >= batch_size:
                    yield batch
                    batch = []
            if batch:
                yield batch
        return cls(columns, produce())

    # -- consumption ----------------------------------------------------------

    def batches(self) -> Iterator[List[Tuple]]:
        """Yield row batches; consumes the stream."""
        if self._consumed:
            raise BindError(
                "row stream already consumed (streams are single-use; "
                "materialize() first if you need to read twice)")
        self._consumed = True
        for batch in self._batches:
            yield batch

    def __iter__(self) -> Iterator[Tuple]:
        for batch in self.batches():
            yield from batch

    def materialize(self) -> Rowset:
        """Drain the stream into a plain :class:`Rowset`."""
        rows: List[Tuple] = []
        for batch in self.batches():
            rows.extend(batch)
        return Rowset(self.columns, rows)

    # -- metadata (mirrors Rowset so binding plans work on either) ------------

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def index_of(self, name: str) -> int:
        try:
            return self._by_name[name.upper()]
        except KeyError as exc:
            raise BindError(
                f"no column {name!r} in rowset "
                f"(columns: {', '.join(self.column_names())})") from exc

    def has_column(self, name: str) -> bool:
        return name.upper() in self._by_name

    def __repr__(self) -> str:
        state = "consumed" if self._consumed else "pending"
        return (f"RowStream({len(self.columns)} cols: "
                f"{', '.join(self.column_names())}; {state})")
