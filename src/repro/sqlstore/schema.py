"""Table schemas: named, typed, case-insensitively resolved columns.

SQL identifiers are case-insensitive; OLE DB DM bracketed identifiers such as
``[Customer ID]`` may contain spaces.  Schemas preserve the declared spelling
for display but resolve lookups through a case-folded map.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import BindError, SchemaError
from repro.sqlstore.types import SqlType


class ColumnSchema:
    """One column of a relational table."""

    def __init__(self, name: str, type_: SqlType, nullable: bool = True,
                 primary_key: bool = False):
        if not name:
            raise SchemaError("column name must be non-empty")
        self.name = name
        self.type = type_
        self.nullable = nullable and not primary_key
        self.primary_key = primary_key

    def __repr__(self) -> str:
        return f"ColumnSchema({self.name!r}, {self.type.name})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, ColumnSchema)
                and other.name.upper() == self.name.upper()
                and other.type is self.type)

    def __hash__(self) -> int:
        return hash((self.name.upper(), self.type.name))


class TableSchema:
    """An ordered collection of :class:`ColumnSchema` with name resolution."""

    def __init__(self, name: str, columns: Sequence[ColumnSchema]):
        self.name = name
        self.columns: List[ColumnSchema] = list(columns)
        self._by_name = {}
        for index, column in enumerate(self.columns):
            key = column.name.upper()
            if key in self._by_name:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {name!r}")
            self._by_name[key] = index

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def column_names(self) -> List[str]:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        return name.upper() in self._by_name

    def index_of(self, name: str) -> int:
        """Ordinal of a column by (case-insensitive) name."""
        try:
            return self._by_name[name.upper()]
        except KeyError as exc:
            raise BindError(
                f"no column {name!r} in table {self.name!r} "
                f"(columns: {', '.join(self.column_names())})") from exc

    def column(self, name: str) -> ColumnSchema:
        return self.columns[self.index_of(name)]

    def primary_key_index(self) -> Optional[int]:
        """Ordinal of the PRIMARY KEY column, or None if not declared."""
        for index, column in enumerate(self.columns):
            if column.primary_key:
                return index
        return None
