"""LRU buffer pool: the bounded set of resident pages.

The pool is the only path between the executor and page bytes: every page
fetch lands here first (``buffer.hits``), falls through to the disk manager
on a miss (``buffer.misses``), and makes room by evicting the
least-recently-used *unpinned* page (``buffer.evictions``), flushing it
first when dirty (``buffer.flushes``).  Pinned pages are never evicted;
when every resident page is pinned the pool temporarily exceeds its budget
(``buffer.pin_overflow``) rather than deadlocking a scan against itself.

All operations hold one re-entrant lock, so concurrent wire sessions can
scan while a writer appends: readers always receive a fully loaded page
object (never a partially decoded one), and a page evicted mid-read stays
alive for the reader holding it — eviction only drops the pool's
reference after the dirty bytes are safely on disk.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional

from repro.obs import trace as obs_trace
from repro.sqlstore.pages import Page

DEFAULT_BUFFER_PAGES = 64


class BufferPool:
    """Budgeted LRU cache of :class:`~repro.sqlstore.pages.Page` objects.

    Keys are opaque page-handle uids (stable across table rewrites);
    ``flusher(page)`` is called to persist a dirty page before its eviction.
    """

    def __init__(self, budget_pages: int = DEFAULT_BUFFER_PAGES,
                 flusher: Optional[Callable[[Page], None]] = None,
                 metrics=None):
        self.budget = max(1, int(budget_pages))
        self.flusher = flusher
        self.metrics = metrics
        self._pages: "OrderedDict[int, Page]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0
        self.pin_overflow = 0

    # -- metrics --------------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    def _note_occupancy(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("buffer.pages_resident").set(len(self._pages))

    # -- core operations ------------------------------------------------------

    def get(self, uid: int, loader: Callable[[], Page],
            pin: bool = False) -> Page:
        """Fetch the page for ``uid``, loading (and admitting) on a miss.

        ``pin=True`` pins the page in the same critical section, so a
        concurrent admission can never evict it between fetch and pin.
        """
        with self._lock:
            page = self._pages.get(uid)
            if page is not None:
                self._pages.move_to_end(uid)
                self.hits += 1
                self._count("buffer.hits")
            else:
                self.misses += 1
                self._count("buffer.misses")
                # Per-statement attribution: the miss is a real page read,
                # rolled up into DM_STATEMENT_STATS buffer_reads.
                obs_trace.add("buffer_reads", 1)
                page = loader()
                if pin:
                    # Pin before admission: with a tiny budget the admitted
                    # page itself must not be the eviction victim.
                    page.pins += 1
                self._admit(uid, page)
                if pin:
                    return page
            if pin:
                page.pins += 1
            return page

    def put(self, uid: int, page: Page) -> Page:
        """Admit a freshly created page (INSERT growing the table)."""
        with self._lock:
            self._admit(uid, page)
            return page

    def _admit(self, uid: int, page: Page) -> None:
        self._pages[uid] = page
        self._pages.move_to_end(uid)
        self._evict_to_budget()
        self._note_occupancy()

    def _evict_to_budget(self) -> None:
        while len(self._pages) > self.budget:
            victim_uid = None
            for candidate_uid, candidate in self._pages.items():
                if candidate.pins == 0:
                    victim_uid = candidate_uid
                    break
            if victim_uid is None:
                # Everything resident is pinned: allow the overflow rather
                # than deadlock; the next unpin brings us back to budget.
                self.pin_overflow += 1
                self._count("buffer.pin_overflow")
                return
            victim = self._pages.pop(victim_uid)
            if victim.dirty:
                self._flush(victim)
            self.evictions += 1
            self._count("buffer.evictions")

    def _flush(self, page: Page) -> None:
        if self.flusher is not None:
            self.flusher(page)
        page.dirty = False
        self.flushes += 1
        self._count("buffer.flushes")

    # -- pinning --------------------------------------------------------------

    def pin(self, page: Page) -> None:
        with self._lock:
            page.pins += 1

    def unpin(self, page: Page) -> None:
        with self._lock:
            if page.pins > 0:
                page.pins -= 1
            self._evict_to_budget()
            self._note_occupancy()

    # -- maintenance ----------------------------------------------------------

    def flush_dirty(self) -> int:
        """Persist every dirty resident page (commit path); pages stay
        resident.  Returns the number of pages flushed."""
        flushed = 0
        with self._lock:
            for page in list(self._pages.values()):
                if page.dirty:
                    self._flush(page)
                    flushed += 1
        return flushed

    def discard(self, uid: int) -> None:
        """Drop a page without flushing (table dropped / rewritten)."""
        with self._lock:
            self._pages.pop(uid, None)
            self._note_occupancy()

    def resident(self):
        """Snapshot of resident (uid, page) pairs, LRU-first."""
        with self._lock:
            return list(self._pages.items())

    def __len__(self) -> int:
        with self._lock:
            return len(self._pages)

    @property
    def lock(self) -> threading.RLock:
        return self._lock
