"""Secondary indexes: hash (point/join) plus sorted (range) structures.

A user-created index (``CREATE INDEX ix ON T (col)``) maintains two views
of one column:

* a **hash** map from :func:`~repro.sqlstore.values.group_key` to the row
  positions holding that key — serving WHERE equality/IN seeks and the
  build side of hash joins (the join probe hashes with the same
  ``group_key``, so index-built and scan-built hash tables are identical);
* a **sorted** run of ``(order key, position)`` pairs — serving range
  predicates via bisection, for column classes with a total order.

Index *selection* must be conservative: the engine re-applies the full
WHERE to every candidate, so an index may return a superset of the true
matches but never miss one.  The subtlety is mixed-type comparison
semantics — ``sql_compare`` falls back to *string* comparison for
mismatched types (a LONG column against the literal ``'5'`` matches by
string compare, which a numeric range scan would miss), and ``group_key``
separates ``bool`` from numbers while ``sql_equal`` normalises them.  So
:func:`choose_index` only fires when the literal's type class strictly
matches the column's declared class (str literals on TEXT, non-bool
numbers on LONG/DOUBLE, bools — equality only — on BOOLEAN), and DATE
columns never seek from literals (SQL literals are never date objects;
they compare as strings).  Everything else scans, exactly as before.

Candidate positions are always returned in ascending order, so an
index-driven scan yields rows in base-table order and the differential
suites see byte-identical output with and without the index.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Tuple

from repro.lang import ast_nodes as ast
from repro.sqlstore.values import group_key

# Column classes eligible for the sorted (range) structure.  DATE is
# excluded: a WHERE literal can never be a date object, so range seeks on
# DATE columns would compare dates against strings — semantics the scan
# path resolves by string comparison, which toordinal bisection does not
# reproduce.
_RANGE_TYPES = ("LONG", "DOUBLE", "TEXT")


def _order_key(type_name: str, value: Any):
    """Monotonic (w.r.t. ``sql_compare`` within the class) bisection key."""
    if type_name in ("LONG", "DOUBLE"):
        return float(value)
    return value  # TEXT: str compares natively


def _literal_matches(type_name: str, value: Any) -> bool:
    """Strict type-class match between a WHERE literal and a column."""
    if value is None:
        return False
    if type_name == "TEXT":
        return isinstance(value, str)
    if type_name in ("LONG", "DOUBLE"):
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if type_name == "BOOLEAN":
        return isinstance(value, bool)
    return False


class TableIndex:
    """One named single-column index: hash + (where ordered) sorted runs."""

    __slots__ = ("name", "column_name", "column_index", "type_name",
                 "hash", "_ordered", "_has_nan",
                 "seeks", "range_seeks", "join_probes")

    def __init__(self, name: str, column_name: str, column_index: int,
                 type_name: str):
        self.name = name
        self.column_name = column_name
        self.column_index = column_index
        self.type_name = type_name
        self.hash: Dict[Any, List[int]] = {}
        # (order_key, position) tuples, sorted; None for non-range classes.
        self._ordered: Optional[List[Tuple[Any, int]]] = \
            [] if type_name in _RANGE_TYPES else None
        self._has_nan = False
        self.seeks = 0
        self.range_seeks = 0
        self.join_probes = 0

    @property
    def kind(self) -> str:
        return "hash+sorted" if self._ordered is not None else "hash"

    @property
    def entries(self) -> int:
        return sum(len(p) for p in self.hash.values())

    @property
    def keys(self) -> int:
        return len(self.hash)

    # -- maintenance ----------------------------------------------------------

    def note_insert(self, row: Tuple, position: int) -> None:
        value = row[self.column_index]
        self.hash.setdefault(group_key(value), []).append(position)
        if self._ordered is not None and value is not None:
            if isinstance(value, float) and value != value:
                # NaN has no place in a total order; range seeks are
                # disabled for this index (NaN satisfies >=/<= under
                # sql_compare's three-way fallback, so a bisected slice
                # could no longer be a superset of the scan's matches).
                self._has_nan = True
            else:
                bisect.insort(self._ordered,
                              (_order_key(self.type_name, value), position))

    def rebuild(self, rows) -> None:
        self.hash = {}
        if self._ordered is not None:
            self._ordered = []
        self._has_nan = False
        for position, row in enumerate(rows):
            self.note_insert(row, position)

    # -- seeks ----------------------------------------------------------------

    def range_capable(self) -> bool:
        return self._ordered is not None and not self._has_nan

    def positions_equal(self, literal: Any) -> List[int]:
        return list(self.hash.get(group_key(literal), ()))

    def positions_in(self, literals) -> List[int]:
        positions: List[int] = []
        seen = set()
        for literal in literals:
            key = group_key(literal)
            if key in seen:
                continue
            seen.add(key)
            positions.extend(self.hash.get(key, ()))
        positions.sort()
        return positions

    def positions_range(self, low: Any = None, high: Any = None) -> List[int]:
        """Positions with order key in ``[low, high]`` (bounds inclusive).

        Bounds are applied *inclusively* regardless of the predicate's
        strictness — deliberately conservative: the order key may collapse
        distinct values (it only promises monotonicity), and the full WHERE
        re-filters, so over-inclusion at the boundary is free correctness.
        """
        ordered = self._ordered or []
        lo = 0
        hi = len(ordered)
        if low is not None:
            lo = bisect.bisect_left(
                ordered, (_order_key(self.type_name, low),))
        if high is not None:
            hi = bisect.bisect_right(
                ordered, (_order_key(self.type_name, high), float("inf")))
        return sorted(position for _, position in ordered[lo:hi])


class IndexChoice:
    """The outcome of :func:`choose_index`: which index, how, and the
    candidate positions (ascending)."""

    __slots__ = ("index", "access", "detail", "positions")

    def __init__(self, index: TableIndex, access: str, detail: str,
                 positions: List[int]):
        self.index = index
        self.access = access  # "point" | "in" | "range"
        self.detail = detail
        self.positions = positions

    def note_use(self) -> None:
        if self.access == "range":
            self.index.range_seeks += 1
        else:
            self.index.seeks += 1


def _conjuncts(expr: Optional[ast.Expr]) -> List[ast.Expr]:
    """Flatten a top-level AND tree into its conjunct list."""
    out: List[ast.Expr] = []

    def walk(node):
        if isinstance(node, ast.BinaryOp) and node.op == "AND":
            walk(node.left)
            walk(node.right)
        elif node is not None:
            out.append(node)

    walk(expr)
    return out


def _column_of(expr: ast.Expr, table, qualifier: str) -> Optional[int]:
    """Resolve a ColumnRef to this table's column ordinal, else None."""
    if not isinstance(expr, ast.ColumnRef):
        return None
    parts = expr.parts
    if len(parts) == 1:
        name = parts[0]
    elif len(parts) == 2 and parts[0].upper() == qualifier.upper():
        name = parts[1]
    else:
        return None
    if not table.schema.has_column(name):
        return None
    return table.schema.index_of(name)


def _literal_value(expr: ast.Expr):
    """The literal's value, or a no-match sentinel for non-literals."""
    if isinstance(expr, ast.Literal):
        return True, expr.value
    return False, None


def choose_index(where: Optional[ast.Expr], table,
                 qualifier: str) -> Optional[IndexChoice]:
    """Pick an index seek for the leftmost sargable AND-conjunct, if any.

    Sargable forms (column and literal may appear on either side):
    ``col = lit``, ``col </<=/>/>= lit``, ``col IN (lit, ...)``,
    ``col BETWEEN lit AND lit`` — all under the strict type-class rule in
    the module docstring.  Returns ``None`` when nothing qualifies (the
    caller falls back to a sequential scan).
    """
    if where is None or not getattr(table, "indexes", None):
        return None
    for conjunct in _conjuncts(where):
        choice = _try_conjunct(conjunct, table, qualifier)
        if choice is not None:
            return choice
    return None


def _index_for(table, column_index: int) -> Optional[TableIndex]:
    for index in table.indexes.values():
        if index.column_index == column_index:
            return index
    return None


def _try_conjunct(expr: ast.Expr, table,
                  qualifier: str) -> Optional[IndexChoice]:
    if isinstance(expr, ast.BinaryOp) and expr.op in ("=", "<", "<=",
                                                      ">", ">="):
        column = _column_of(expr.left, table, qualifier)
        literal_side = expr.right
        op = expr.op
        if column is None:
            column = _column_of(expr.right, table, qualifier)
            literal_side = expr.left
            # Mirror the operator when the literal is on the left.
            op = {"<": ">", "<=": ">=", ">": "<", ">=": "<="}.get(op, op)
        if column is None:
            return None
        ok, value = _literal_value(literal_side)
        if not ok:
            return None
        index = _index_for(table, column)
        if index is None or not _literal_matches(index.type_name, value):
            return None
        if op == "=":
            return IndexChoice(
                index, "point",
                f"point lookup on {index.column_name}",
                index.positions_equal(value))
        if index.type_name == "BOOLEAN" or not index.range_capable():
            return None
        low = value if op in (">", ">=") else None
        high = value if op in ("<", "<=") else None
        return IndexChoice(
            index, "range", f"range on {index.column_name}",
            index.positions_range(low, high))
    if isinstance(expr, ast.InList) and not expr.negated:
        column = _column_of(expr.operand, table, qualifier)
        if column is None:
            return None
        index = _index_for(table, column)
        if index is None:
            return None
        values = []
        for item in expr.items:
            ok, value = _literal_value(item)
            if not ok or not _literal_matches(index.type_name, value):
                return None
            values.append(value)
        return IndexChoice(
            index, "in", f"in-list lookup on {index.column_name}",
            index.positions_in(values))
    if isinstance(expr, ast.Between) and not expr.negated:
        column = _column_of(expr.operand, table, qualifier)
        if column is None:
            return None
        index = _index_for(table, column)
        if index is None or index.type_name == "BOOLEAN" or \
                not index.range_capable():
            return None
        ok_low, low = _literal_value(expr.low)
        ok_high, high = _literal_value(expr.high)
        if not (ok_low and ok_high) or \
                not _literal_matches(index.type_name, low) or \
                not _literal_matches(index.type_name, high):
            return None
        return IndexChoice(
            index, "range", f"range on {index.column_name}",
            index.positions_range(low, high))
    return None
