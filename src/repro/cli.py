"""Interactive DMX shell (system S13): the deployment story, live.

"Once the DMM is created and optimized, deployment within the enterprise
becomes as easy as writing SQL queries."  ``dmxsh`` (or ``python -m repro``)
is a tiny proof of that: a REPL speaking the full SQL+DMX surface against an
in-memory provider, with optional demo data preloaded.

Usage::

    dmxsh [--demo N] [--script FILE] [--trace] [--durable PATH]
          [--metrics-port N] [--serve PORT | --connect HOST:PORT]

``--serve PORT`` turns the session into a network server: after any
``--demo``/``--script`` preload, the provider is served over the DMX wire
protocol (``repro.server``) until stdin closes; port 0 picks an ephemeral
port, and the bound port is announced on stdout.  ``--connect HOST:PORT``
is the other side: the shell runs against a remote server instead of an
embedded provider (meta-commands that need in-process state are
unavailable there).

``--durable PATH`` opens (or recovers) a crash-safe store under PATH:
acknowledged statements are journaled and survive process death, so
quitting the shell and reopening the same path resumes the session's
tables, views, and trained models.

Commands end with ``;``.  Shell meta-commands: ``.help``, ``.models``,
``.tables``, ``.quit``.  ``--trace`` (or the ``TRACE ON`` verb) enables span
capture and prints the span tree of every statement as it runs.
``--metrics-port N`` serves ``/metrics`` (Prometheus text exposition),
``/healthz``, and ``/queries`` over HTTP for the life of the session.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.provider import Connection, connect, split_statements
from repro.errors import Error
from repro.sqlstore.rowset import Rowset

BANNER = """\
OLE DB for Data Mining shell (reproduction of Netz et al., ICDE 2001)
Statements end with ';'.  Try:
    SELECT * FROM $SYSTEM.MINING_SERVICES;
    .help for meta-commands, .quit to leave.
"""

HELP = """\
Meta-commands:
    .help        this text
    .models      list mining models
    .tables      list tables and views
    .describe M  render a trained model's content as a report
    .checkpoint  snapshot the durable store now (requires --durable)
    .top [N]     the N hottest statement fingerprints (default 10) from
                 the workload repository ($SYSTEM.DM_STATEMENT_STATS)
    .kill ID     cancel a live statement (ids: $SYSTEM.DM_ACTIVE_STATEMENTS)
    .tracefile F export the trace ring to F as Chrome-trace JSON (Perfetto)
    .quit        exit

Statement surface (paper section 3):
    CREATE MINING MODEL <name> (...) USING <algorithm>[(params)]
    INSERT INTO <model> (...) SHAPE {...} APPEND ({...} RELATE a TO b) AS n
    SELECT ... FROM <model> [NATURAL] PREDICTION JOIN (...) AS t [ON ...]
    SELECT * FROM <model>.CONTENT | <model>.PMML
    SELECT * FROM $SYSTEM.MINING_MODELS | MINING_COLUMNS | MINING_SERVICES
    SELECT * FROM $SYSTEM.DM_QUERY_LOG | DM_TRACE_EVENTS | DM_PROVIDER_METRICS
    SELECT * FROM $SYSTEM.DM_ACTIVE_STATEMENTS | DM_STATEMENT_RESOURCES
    SELECT * FROM $SYSTEM.DM_LOCK_WAITS
    SELECT * FROM $SYSTEM.DM_STATEMENT_STATS | DM_PLAN_HISTORY | DM_PLAN_CHANGES
    TRACE ON | OFF | LAST | STATUS
    CANCEL <statement id>           -- stop a live statement cooperatively
    EXPLAIN [ANALYZE] <statement>   -- plan tree, with actuals under ANALYZE
    DELETE FROM MINING MODEL <name>;  DROP MINING MODEL <name>
    EXPORT MINING MODEL <name> TO '<path>'
    IMPORT MINING MODEL FROM '<path>' [AS <name>]
    plus plain SQL: CREATE TABLE / INSERT / SELECT / UPDATE / DELETE / VIEWs
"""


def run_command(connection: Connection, command: str,
                out=None, show_trace: bool = False) -> None:
    """Execute one statement and print its result."""
    out = out if out is not None else sys.stdout
    result = connection.execute(command)
    if isinstance(result, Rowset):
        from repro.obs.explain import is_plan_rowset
        if is_plan_rowset(result):
            from repro.reporting import render_plan
            out.write(render_plan(result) + "\n")
        else:
            out.write(result.pretty() + "\n")
        out.write(f"({len(result)} rows)\n")
    elif isinstance(result, str):
        out.write(result + "\n")
    else:
        out.write(f"OK ({result} rows affected)\n")
    if show_trace:
        _print_trace(connection, command, out)


def _print_trace(connection: Connection, command: str, out) -> None:
    """After a traced statement, render its span tree (--trace mode)."""
    from repro.reporting import render_trace
    record = connection.provider.tracer.last()
    if record is not None and record.text.strip() == command.strip():
        out.write(render_trace(record) + "\n")


_EMBEDDED_META = (".models", ".describe", ".checkpoint", ".tracefile",
                  ".tables", ".top")


def run_meta(connection, command: str, out=None) -> bool:
    """Handle a .meta command; returns False to exit the loop."""
    out = out if out is not None else sys.stdout
    word = command.strip().lower()
    if word in (".quit", ".exit"):
        return False
    if not hasattr(connection, "provider") and \
            any(word.startswith(name) for name in _EMBEDDED_META):
        out.write(f"{word.split()[0]} needs an embedded session; over "
                  f"--connect query the $SYSTEM rowsets instead "
                  f"(e.g. SELECT * FROM $SYSTEM.MINING_MODELS;)\n")
        return True
    if word == ".help":
        out.write(HELP)
    elif word == ".models":
        for model in connection.models():
            out.write(f"{model!r}\n")
        if not connection.models():
            out.write("(no mining models)\n")
    elif word.startswith(".describe"):
        name = command.strip()[len(".describe"):].strip().strip("[]")
        if not name:
            out.write("usage: .describe <model name>\n")
        else:
            from repro.reporting import render_model
            try:
                out.write(render_model(connection.model(name)) + "\n")
            except Error as exc:
                out.write(f"error: {exc}\n")
    elif word == ".checkpoint":
        try:
            connection.provider.checkpoint()
            out.write("checkpoint written\n")
        except Error as exc:
            out.write(f"error: {exc}\n")
    elif word.startswith(".kill"):
        argument = command.strip()[len(".kill"):].strip()
        if not argument or not argument.isdigit():
            out.write("usage: .kill <statement id>  "
                      "(ids: SELECT * FROM $SYSTEM.DM_ACTIVE_STATEMENTS)\n")
        else:
            try:
                out.write(connection.cancel(int(argument)) + "\n")
            except Error as exc:
                out.write(f"error: {exc}\n")
    elif word.startswith(".top"):
        argument = command.strip()[len(".top"):].strip()
        if argument and not argument.isdigit():
            out.write("usage: .top [count]\n")
        else:
            from repro.reporting import render_top_statements
            out.write(render_top_statements(
                connection.provider.repository,
                limit=int(argument) if argument else 10) + "\n")
    elif word.startswith(".tracefile"):
        path = command.strip()[len(".tracefile"):].strip()
        if not path:
            out.write("usage: .tracefile <path>\n")
        else:
            try:
                count = connection.provider.export_trace(path)
                out.write(f"wrote {count} statement trace(s) to {path} "
                          f"(open in chrome://tracing or Perfetto)\n")
            except OSError as exc:
                out.write(f"error: {exc}\n")
    elif word == ".tables":
        database = connection.database
        for name in sorted(database.tables):
            out.write(f"table {database.tables[name].name} "
                      f"({len(database.tables[name])} rows)\n")
        for name in sorted(database.views):
            out.write(f"view  {name}\n")
        if not database.tables and not database.views:
            out.write("(no tables)\n")
    else:
        out.write(f"unknown meta-command {command!r}; try .help\n")
    return True


def load_demo(connection: Connection, customers: int) -> None:
    """Load the generated warehouse into the session (--demo N)."""
    from repro.datagen import WarehouseConfig, load_warehouse
    load_warehouse(connection.database,
                   WarehouseConfig(customers=customers))
    sys.stdout.write(
        f"Loaded demo warehouse: Customers/Sales/[Car Ownership] with "
        f"{customers} customers.\n")


def repl(connection: Connection, show_trace: bool = False) -> None:
    """Interactive loop: buffer lines until ';', run meta-commands."""
    sys.stdout.write(BANNER)
    buffer = ""
    while True:
        prompt = "dmx> " if not buffer else "...> "
        try:
            line = input(prompt)
        except (EOFError, KeyboardInterrupt):
            sys.stdout.write("\n")
            return
        if not buffer and line.strip().startswith("."):
            if not run_meta(connection, line):
                return
            continue
        buffer += line + "\n"
        if ";" in line:
            for command in split_statements(buffer):
                try:
                    run_command(connection, command, show_trace=show_trace)
                except Error as exc:
                    sys.stdout.write(f"error: {exc}\n")
            buffer = ""


def main(argv: Optional[list] = None) -> int:
    """Entry point for ``dmxsh`` / ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="dmxsh", description="OLE DB for Data Mining shell")
    parser.add_argument("--demo", type=int, metavar="N", default=0,
                        help="preload the demo warehouse with N customers")
    parser.add_argument("--script", metavar="FILE",
                        help="execute a ';'-separated DMX script and exit")
    parser.add_argument("--trace", action="store_true",
                        help="enable span capture and print each "
                             "statement's trace tree")
    parser.add_argument("--durable", metavar="PATH",
                        help="open/recover a crash-safe store under PATH; "
                             "acknowledged statements survive process death")
    parser.add_argument("--metrics-port", type=int, metavar="N",
                        default=None,
                        help="serve /metrics, /healthz, /queries, and "
                             "/active over HTTP on port N (0 = ephemeral)")
    parser.add_argument("--serve", type=int, metavar="PORT", default=None,
                        help="serve the provider over the DMX wire protocol "
                             "on PORT (0 = ephemeral; the bound port is "
                             "announced) until stdin closes")
    parser.add_argument("--connect", metavar="HOST:PORT", default=None,
                        help="run the shell against a remote DMX server "
                             "instead of an embedded provider")
    args = parser.parse_args(argv)

    if args.connect is not None:
        return _run_remote(args, parser)

    connection = connect(durable_path=args.durable)
    if args.metrics_port is not None:
        server = connection.provider.serve_metrics(port=args.metrics_port)
        sys.stdout.write(f"Telemetry endpoint at {server.url} "
                         f"(/metrics, /healthz, /queries, /active)\n")
    if args.durable:
        info = connection.provider.recovery_info or {}
        sys.stdout.write(
            f"Durable store {args.durable}: snapshot seq "
            f"{info.get('snapshot_seq', 0)}, replayed "
            f"{info.get('replayed', 0)} journaled statement(s)"
            + (f", skipped {info['torn_records']} torn record(s)"
               if info.get("torn_records") else "") + ".\n")
    if args.trace:
        connection.provider.tracer.enabled = True
    if args.demo:
        load_demo(connection, args.demo)
    if args.script:
        with open(args.script) as handle:
            for command in split_statements(handle.read()):
                try:
                    run_command(connection, command, show_trace=args.trace)
                except Error as exc:
                    sys.stderr.write(f"error: {exc}\n")
                    return 1
        if args.serve is None:
            return 0
    if args.serve is not None:
        return _run_server(connection, args)
    repl(connection, show_trace=args.trace)
    return 0


def _run_server(connection: Connection, args) -> int:
    """--serve PORT: serve the (preloaded) provider until stdin closes."""
    from repro.server import DmxServer
    server = DmxServer(connection.provider, port=args.serve,
                       checkpoint_on_close=bool(args.durable))
    sys.stdout.write(f"Serving DMX on {server.host}:{server.port} "
                     f"(close stdin or Ctrl-C to stop)\n")
    sys.stdout.flush()
    try:
        for _ in sys.stdin:
            pass  # stay up until the controlling process closes stdin
    except KeyboardInterrupt:
        pass
    sys.stdout.write("Draining sessions...\n")
    server.close()
    connection.close()
    sys.stdout.write("Server stopped.\n")
    return 0


def _run_remote(args, parser) -> int:
    """--connect HOST:PORT: the shell against a remote DMX server."""
    for flag, value in (("--serve", args.serve), ("--durable", args.durable),
                        ("--demo", args.demo or None),
                        ("--metrics-port", args.metrics_port),
                        ("--trace", args.trace or None)):
        if value is not None:
            parser.error(f"{flag} applies to an embedded session and "
                         f"cannot be combined with --connect")
    host, _, port_text = args.connect.rpartition(":")
    if not host or not port_text.isdigit():
        parser.error("--connect expects HOST:PORT, e.g. 127.0.0.1:8123")
    from repro.client import connect as net_connect
    try:
        connection = net_connect(host, int(port_text))
    except OSError as exc:
        sys.stderr.write(f"error: cannot connect to {args.connect}: "
                         f"{exc}\n")
        return 1
    sys.stdout.write(f"Connected to {args.connect} "
                     f"(session {connection.session_id}).\n")
    try:
        if args.script:
            with open(args.script) as handle:
                for command in split_statements(handle.read()):
                    try:
                        run_command(connection, command)
                    except Error as exc:
                        sys.stderr.write(f"error: {exc}\n")
                        return 1
            return 0
        repl(connection)
    finally:
        connection.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
