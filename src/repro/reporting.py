"""Text renderings of model content graphs (paper operation 4).

"Browse a mining model for reporting and visualization applications" —
these helpers turn a content graph (``MiningModel.content_root()``) into
terminal-friendly reports: an indented tree for decision trees, profile
cards for clusters, a ranked rule list for association models, a
coefficient table for regressions, and transition summaries for sequence
models.  ``render_model`` dispatches on the node types present; the DMX
shell exposes it as ``.describe <model>``.
"""

from __future__ import annotations

from typing import List

from repro.core.content import (
    NODE_CLUSTER,
    NODE_ITEMSET,
    NODE_MODEL,
    NODE_PREDICTABLE,
    NODE_REGRESSION_ROOT,
    NODE_RULE,
    NODE_SEQUENCE,
    NODE_TREE,
    ContentNode,
)


def _format_distribution(node: ContentNode, limit: int = 3) -> str:
    parts = []
    for row in node.distribution[:limit]:
        value = "" if row.value is None else str(row.value)
        if isinstance(row.value, float):
            value = f"{row.value:g}"
        parts.append(f"{row.attribute}={value} ({row.probability:.0%})")
    if len(node.distribution) > limit:
        parts.append("...")
    return ", ".join(parts)


def render_tree(root: ContentNode) -> str:
    """Indented rendering of one tree (a NODE_TREE subtree)."""
    lines: List[str] = []

    def describe(node: ContentNode) -> str:
        summary = _format_distribution(node, limit=2)
        return (f"{node.caption} [{node.support:g} cases]"
                f"{'  -> ' + summary if summary else ''}")

    def walk(node: ContentNode, prefix: str, is_last: bool) -> None:
        connector = "`- " if is_last else "|- "
        lines.append(f"{prefix}{connector}{describe(node)}")
        child_prefix = prefix + ("   " if is_last else "|  ")
        for position, child in enumerate(node.children):
            walk(child, child_prefix,
                 position == len(node.children) - 1)

    lines.append(describe(root))
    for position, child in enumerate(root.children):
        walk(child, "", position == len(root.children) - 1)
    return "\n".join(lines)


def render_clusters(root: ContentNode) -> str:
    """Profile card per cluster, heaviest first."""
    clusters = sorted(
        (n for n in root.children if n.node_type == NODE_CLUSTER),
        key=lambda n: -n.support)
    lines = []
    for cluster in clusters:
        lines.append(f"{cluster.caption}  "
                     f"({cluster.support:g} cases, "
                     f"{cluster.probability:.0%} of population)")
        for row in cluster.distribution[:6]:
            value = row.value
            if isinstance(value, float):
                value = f"{value:.2f}"
            lines.append(f"    {row.attribute:30s} {value}")
    return "\n".join(lines)


def render_rules(root: ContentNode, limit: int = 15) -> str:
    """Association rules ranked by confidence, then frequent itemsets."""
    rules = [n for n in root.walk() if n.node_type == NODE_RULE]
    itemsets = [n for n in root.walk() if n.node_type == NODE_ITEMSET]
    lines = [f"{len(rules)} rules, {len(itemsets)} frequent itemsets"]
    for rule in sorted(rules, key=lambda n: -n.probability)[:limit]:
        lines.append(f"  {rule.caption:45s} "
                     f"confidence {rule.probability:.0%}  "
                     f"support {rule.support:g}")
    return "\n".join(lines)


def render_regression(root: ContentNode) -> str:
    """Coefficient table per regression target."""
    lines = []
    for target in root.children:
        lines.append(f"{target.caption}: {target.description}")
        for row in target.distribution:
            lines.append(f"    {row.attribute:30s} "
                         f"{float(row.value):+10.4f}")
    return "\n".join(lines)


def render_sequences(root: ContentNode, limit: int = 4) -> str:
    """Per-chain transition summaries of a sequence model."""
    lines = []
    for chain in root.children:
        lines.append(f"{chain.caption}  ({chain.support:g} cases)")
        for state in chain.children[:limit]:
            transitions = ", ".join(
                f"{row.value} ({row.probability:.0%})"
                for row in state.distribution[:3])
            lines.append(f"    {state.caption:20s} -> {transitions}")
        if len(chain.children) > limit:
            lines.append(f"    ... {len(chain.children) - limit} more "
                         f"states")
    return "\n".join(lines)


def render_model(model) -> str:
    """Dispatching report for any trained model."""
    root = model.content_root()
    header = (f"{model.name}  "
              f"[{model.algorithm.SERVICE_NAME}, "
              f"{model.case_count} cases, "
              f"{model.insert_count} insert(s)]")
    types = {node.node_type for node in root.walk()}
    if NODE_RULE in types or NODE_ITEMSET in types:
        body = render_rules(root)
    elif NODE_SEQUENCE in types:
        body = render_sequences(root)
    elif NODE_REGRESSION_ROOT in types:
        body = render_regression(root)
    elif NODE_CLUSTER in types:
        body = render_clusters(root)
    elif NODE_TREE in types or NODE_PREDICTABLE in types:
        body = "\n\n".join(render_tree(tree) for tree in root.children)
    else:  # pragma: no cover - every built-in hits a branch above
        body = "\n".join(f"{n.node_id}: {n.caption}" for n in root.walk())
    return f"{header}\n{body}"


def _describe_span(span) -> str:
    parts = [f"{span.name}  {span.duration_ms:.2f} ms"]
    for key, value in span.counters.items():
        amount = f"{value:g}" if isinstance(value, float) else str(value)
        parts.append(f"{key}={amount}")
    for key, value in span.attributes.items():
        parts.append(f"{key}={value}")
    return "  ".join(parts)


def _describe_plan_row(row: dict) -> str:
    parts = [row["OPERATOR"]]
    if row.get("TARGET"):
        parts[0] = f"{row['OPERATOR']} [{row['TARGET']}]"
    if row.get("STRATEGY"):
        parts.append(str(row["STRATEGY"]))
    if row.get("EST_ROWS") is not None:
        parts.append(f"est={row['EST_ROWS']}")
    if row.get("COST") is not None:
        parts.append(f"cost={row['COST']:g}")
    if row.get("ACTUAL_ROWS") is not None:
        parts.append(f"actual={row['ACTUAL_ROWS']}")
    if row.get("ACTUAL_BATCHES") is not None:
        parts.append(f"batches={row['ACTUAL_BATCHES']}")
    if row.get("WALL_MS") is not None:
        parts.append(f"{row['WALL_MS']:.2f} ms")
    if row.get("CACHE"):
        parts.append(f"cache={row['CACHE']}")
    if row.get("POOL_TASKS") is not None:
        parts.append(f"tasks={row['POOL_TASKS']}")
    if row.get("DETAIL"):
        parts.append(f"({row['DETAIL']})")
    return "  ".join(parts)


def render_plan(rowset) -> str:
    """Indented operator tree for an EXPLAIN [ANALYZE] rowset (dmxsh)."""
    names = [column.name for column in rowset.columns]
    records = [dict(zip(names, row)) for row in rowset.rows]
    children: dict = {}
    for record in records:
        children.setdefault(record["PARENT_ID"], []).append(record)

    lines = []

    def walk(record, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            lines.append(_describe_plan_row(record))
        else:
            connector = "`- " if is_last else "|- "
            lines.append(f"{prefix}{connector}{_describe_plan_row(record)}")
        child_prefix = "" if is_root else prefix + ("   " if is_last
                                                    else "|  ")
        kids = children.get(record["OP_ID"], [])
        for position, child in enumerate(kids):
            walk(child, child_prefix, position == len(kids) - 1, False)

    for position, root in enumerate(children.get(None, [])):
        walk(root, "", True, True)
    return "\n".join(lines)


def render_trace(record) -> str:
    """Indented span tree for one traced statement (``TRACE LAST``)."""
    text = " ".join(record.text.split())
    if len(text) > 60:
        text = text[:57] + "..."
    header = (f"{record.kind} [{record.status}] "
              f"{record.duration_ms:.2f} ms  {text}")
    lines = [header]
    if record.error:
        lines.append(f"error: {record.error}")

    def walk(span, prefix: str, is_last: bool) -> None:
        connector = "`- " if is_last else "|- "
        lines.append(f"{prefix}{connector}{_describe_span(span)}")
        child_prefix = prefix + ("   " if is_last else "|  ")
        for position, child in enumerate(span.children):
            walk(child, child_prefix, position == len(span.children) - 1)

    root = record.root
    if root is not None:
        lines.append(_describe_span(root))
        for position, child in enumerate(root.children):
            walk(child, "", position == len(root.children) - 1)
    return "\n".join(lines)


def render_top_statements(repository, limit: int = 10) -> str:
    """The hottest statement fingerprints as a text table (``.top``)."""
    stats = repository.statement_stats()[:max(1, limit)]
    if not stats:
        return ("(workload repository is empty"
                if repository.enabled
                else "(workload repository is disabled"
                ) + " - execute some statements first)"
    lines = [f"{'FINGERPRINT':<18}{'CALLS':>7}{'ERR':>5}{'TOTAL_MS':>10}"
             f"{'MEAN_MS':>9}{'P99_MS':>9}{'ROWS':>9}  STATEMENT"]
    for stat in stats:
        text = stat["statement"]
        if len(text) > 48:
            text = text[:45] + "..."
        p99 = stat["p99_ms"]
        mean = stat["mean_ms"]
        lines.append(
            f"{stat['fingerprint']:<18}{stat['calls']:>7}"
            f"{stat['errors']:>5}{stat['total_ms']:>10.2f}"
            f"{0.0 if mean is None else mean:>9.3f}"
            f"{0.0 if p99 is None else p99:>9.3f}"
            f"{stat['rows_returned']:>9}  {text}")
    return "\n".join(lines)
