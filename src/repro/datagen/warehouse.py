"""The paper's customer warehouse, at any scale.

Section 3.1 works over three tables — Customers, Product Purchases (Sales),
and Car Ownership — and walks through one concrete customer (Customer ID 1:
male, black hair, age 35 with 100% certainty, bought TV/VCR/Ham(2)/Beer(6),
owns a truck and maybe a van at 50%).  :func:`load_paper_example` recreates
those tables verbatim for the Table 1 reproduction; :func:`generate_warehouse`
scales the same schema up with a planted dependency structure so that mining
models have real signal to find:

* customers belong to latent segments (student / family / retired / urban
  professional) drawn with fixed proportions;
* age is generated per segment (Gaussian), gender independently;
* purchases are drawn from per-segment product propensities, quantities
  from per-product Gaussians;
* car ownership depends on segment, with an uncertain second vehicle
  (probability qualifier), mirroring the paper's Car Ownership columns.

Deterministic given ``seed``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.sqlstore.engine import Database

# The exact running example of section 3.1 / Table 1.
PAPER_CUSTOMER = {
    "customer": (1, "Male", "Black", 35.0, 1.0),
    "purchases": [
        ("TV", 1.0, "Electronic"),
        ("VCR", 1.0, "Electronic"),
        ("Ham", 2.0, "Food"),
        ("Beer", 6.0, "Beverage"),
    ],
    "cars": [
        ("Truck", 1.0),
        ("Van", 0.5),
    ],
}

# (product, type, base quantity mean)
PRODUCTS: List[Tuple[str, str, float]] = [
    ("TV", "Electronic", 1.0),
    ("VCR", "Electronic", 1.0),
    ("DVD Player", "Electronic", 1.0),
    ("Laptop", "Electronic", 1.0),
    ("Beer", "Beverage", 6.0),
    ("Wine", "Beverage", 2.0),
    ("Soda", "Beverage", 8.0),
    ("Coffee", "Beverage", 2.0),
    ("Ham", "Food", 2.0),
    ("Bread", "Food", 3.0),
    ("Chips", "Food", 4.0),
    ("Diapers", "Baby", 2.0),
    ("Formula", "Baby", 3.0),
    ("Toy Car", "Toys", 1.0),
    ("Board Game", "Toys", 1.0),
]

CARS = ["Truck", "Van", "Sedan", "SUV", "Compact", "Minivan"]

HAIR_COLORS = ["Black", "Brown", "Blond", "Red", "Gray"]

# Segment name -> (proportion, age mean, age stdev,
#                  product propensities, car propensities)
SEGMENTS: Dict[str, dict] = {
    "student": {
        "share": 0.25, "age": (22.0, 3.0),
        "products": {"Beer": 0.8, "Chips": 0.7, "Soda": 0.6, "Laptop": 0.4,
                     "Coffee": 0.5, "Bread": 0.3},
        "cars": {"Compact": 0.5, "Sedan": 0.2},
    },
    "family": {
        "share": 0.35, "age": (38.0, 5.0),
        "products": {"Diapers": 0.7, "Formula": 0.6, "Toy Car": 0.5,
                     "Board Game": 0.4, "Bread": 0.8, "Ham": 0.6,
                     "Soda": 0.4, "TV": 0.3},
        "cars": {"Minivan": 0.6, "SUV": 0.4, "Sedan": 0.3},
    },
    "professional": {
        "share": 0.25, "age": (45.0, 6.0),
        "products": {"Wine": 0.7, "Coffee": 0.8, "Laptop": 0.6, "TV": 0.4,
                     "DVD Player": 0.3, "Ham": 0.4},
        "cars": {"Sedan": 0.6, "SUV": 0.3},
    },
    "retired": {
        "share": 0.15, "age": (68.0, 7.0),
        "products": {"Wine": 0.5, "Bread": 0.7, "Ham": 0.5, "Coffee": 0.6,
                     "TV": 0.5, "VCR": 0.4},
        "cars": {"Sedan": 0.5, "Truck": 0.2},
    },
}


class WarehouseConfig:
    """Parameters of a generated warehouse."""

    def __init__(self, customers: int = 1000, seed: int = 7,
                 uncertain_cars: bool = True,
                 include_paper_customer: bool = True):
        self.customers = customers
        self.seed = seed
        self.uncertain_cars = uncertain_cars
        self.include_paper_customer = include_paper_customer


class GeneratedWarehouse:
    """Raw generated rows plus the ground-truth segment per customer."""

    def __init__(self):
        self.customers: List[tuple] = []   # (id, gender, hair, age, age_prob)
        self.sales: List[tuple] = []       # (cust, product, qty, type)
        self.cars: List[tuple] = []        # (cust, car, probability)
        self.segments: Dict[int, str] = {} # ground truth, not loaded into SQL


def generate_warehouse(config: Optional[WarehouseConfig] = None) \
        -> GeneratedWarehouse:
    config = config or WarehouseConfig()
    rng = np.random.RandomState(config.seed)
    data = GeneratedWarehouse()

    segment_names = list(SEGMENTS)
    shares = np.array([SEGMENTS[s]["share"] for s in segment_names])
    shares = shares / shares.sum()
    product_types = {name: type_ for name, type_, _ in PRODUCTS}
    quantity_means = {name: mean for name, _, mean in PRODUCTS}

    start_id = 1
    if config.include_paper_customer:
        cid, gender, hair, age, age_prob = PAPER_CUSTOMER["customer"]
        data.customers.append((cid, gender, hair, age, age_prob))
        data.segments[cid] = "family"
        for product, quantity, type_ in PAPER_CUSTOMER["purchases"]:
            data.sales.append((cid, product, quantity, type_))
        for car, probability in PAPER_CUSTOMER["cars"]:
            data.cars.append((cid, car, probability))
        start_id = 2

    for cid in range(start_id, config.customers + 1):
        segment = segment_names[rng.choice(len(segment_names), p=shares)]
        data.segments[cid] = segment
        spec = SEGMENTS[segment]
        age = float(np.clip(rng.normal(*spec["age"]), 18.0, 90.0))
        gender = "Male" if rng.random_sample() < 0.5 else "Female"
        hair = HAIR_COLORS[rng.choice(len(HAIR_COLORS))]
        data.customers.append((cid, gender, hair, round(age, 1), 1.0))
        for product, propensity in spec["products"].items():
            if rng.random_sample() < propensity:
                quantity = max(1.0, round(
                    rng.normal(quantity_means[product],
                               quantity_means[product] * 0.3), 1))
                data.sales.append((cid, product, quantity,
                                   product_types[product]))
        for car, propensity in spec["cars"].items():
            if rng.random_sample() < propensity:
                probability = 1.0
                if config.uncertain_cars and rng.random_sample() < 0.15:
                    probability = round(float(rng.uniform(0.4, 0.9)), 2)
                data.cars.append((cid, car, probability))
    return data


def load_warehouse(database: Database,
                   config: Optional[WarehouseConfig] = None) \
        -> GeneratedWarehouse:
    """Create and populate Customers / Sales / [Car Ownership] tables."""
    data = generate_warehouse(config)
    database.execute(
        "CREATE TABLE Customers ([Customer ID] LONG PRIMARY KEY, "
        "Gender TEXT, [Hair Color] TEXT, Age DOUBLE, [Age Prob] DOUBLE)")
    database.execute(
        "CREATE TABLE Sales (CustID LONG, [Product Name] TEXT, "
        "Quantity DOUBLE, [Product Type] TEXT)")
    database.execute(
        "CREATE TABLE [Car Ownership] (CustID LONG, Car TEXT, "
        "[Car Prob] DOUBLE)")
    database.table("Customers").insert_many(data.customers)
    database.table("Sales").insert_many(data.sales)
    database.table("Car Ownership").insert_many(data.cars)
    return data


def load_paper_example(database: Database) -> None:
    """Exactly the three tables of section 3.1, with only Customer ID 1."""
    load_warehouse(database, WarehouseConfig(
        customers=1, include_paper_customer=True))
