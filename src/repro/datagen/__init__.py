"""Synthetic warehouse generator (system S11)."""

from repro.datagen.warehouse import (
    PAPER_CUSTOMER,
    WarehouseConfig,
    generate_warehouse,
    load_paper_example,
    load_warehouse,
)

__all__ = [
    "PAPER_CUSTOMER",
    "WarehouseConfig",
    "generate_warehouse",
    "load_paper_example",
    "load_warehouse",
]
