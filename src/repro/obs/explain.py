"""EXPLAIN / EXPLAIN ANALYZE: the per-statement plan profiler.

``EXPLAIN <statement>`` runs a lightweight planner pass over the parsed
statement — reading only catalog statistics (table sizes, model case
counts, pool configuration, caseset-cache membership), never touching the
data path — and returns the operator tree as a rowset: operator, target,
chosen strategy (streamed vs. materialized, parallel vs. serial with the
worker count, caseset-cache hit expectation), and estimated row counts.

``EXPLAIN ANALYZE`` additionally executes the statement with span capture
forced on and annotates each plan operator with actuals reconciled from
the captured span tree: rows, batches, wall-clock milliseconds, cache
hits, and pool tasks, estimated-vs-actual side by side in one rowset.

The plan tree itself is produced by plan-description hooks that live next
to the executors they mirror (:meth:`Database.plan_select`,
:func:`repro.shaping.shape.plan_shape`, the parallelism previews in
:mod:`repro.exec.partition`, :func:`repro.core.prediction.plan_prediction`)
so strategy decisions cannot drift from the real ones.  This module owns
only the :class:`PlanNode` vocabulary, the statement-level dispatch, the
span reconciliation, and the rowset rendering.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.errors import Error
from repro.lang import ast_nodes as ast
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.types import DOUBLE, LONG, TEXT


class PlanNode:
    """One operator of a statement plan, with estimates and (later) actuals.

    ``span_name``/``match`` steer reconciliation against the captured span
    tree of an ANALYZE run:

    * ``match="one"`` — claim the first unclaimed span of that name; the
      node's children then reconcile inside that span's subtree;
    * ``match="all"`` — aggregate every in-scope span of that name
      (e.g. per-batch ``bind`` spans);
    * ``match="parent"`` — read ``rows_counter`` off the nearest matched
      ancestor's own span (e.g. a scan's ``rows_scanned`` lives on the
      enclosing ``engine.select`` span).
    """

    __slots__ = ("operator", "target", "strategy", "est_rows", "cost",
                 "detail", "children", "span_name", "rows_counter", "match",
                 "cache", "actual_rows", "actual_batches", "wall_ms",
                 "pool_tasks", "cache_actual")

    def __init__(self, operator: str, target: Optional[str] = None,
                 strategy: Optional[str] = None,
                 est_rows: Optional[int] = None,
                 detail: Optional[str] = None,
                 span_name: Optional[str] = None,
                 rows_counter: Optional[str] = None,
                 match: str = "one",
                 cache: Optional[str] = None,
                 cost: Optional[float] = None):
        self.operator = operator
        self.target = target
        self.strategy = strategy
        self.est_rows = est_rows
        # Estimated cumulative cost (abstract row/page units) of producing
        # this operator's output, children included.  Like est_rows it is
        # an estimate, so plain EXPLAIN shows it too.
        self.cost = cost
        self.detail = detail
        self.children: List[PlanNode] = []
        self.span_name = span_name
        self.rows_counter = rows_counter
        self.match = match
        self.cache = cache
        # Actuals, filled by reconcile_plan after an ANALYZE run.
        self.actual_rows: Optional[int] = None
        self.actual_batches: Optional[int] = None
        self.wall_ms: Optional[float] = None
        self.pool_tasks: Optional[int] = None
        self.cache_actual: Optional[str] = None

    def add(self, child: "PlanNode") -> "PlanNode":
        self.children.append(child)
        return child

    def walk(self, depth: int = 0):
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def __repr__(self) -> str:
        return (f"PlanNode({self.operator!r}, target={self.target!r}, "
                f"est={self.est_rows}, {len(self.children)} children)")


# ---------------------------------------------------------------------------
# Statement-level plan dispatch
# ---------------------------------------------------------------------------

def build_plan(provider, statement: ast.Statement) -> PlanNode:
    """Describe ``statement``'s execution plan without running it.

    Reads catalog and statistics only: no table is scanned, no model is
    trained or mutated, no span besides the parser's is opened.
    """
    database = provider.database
    external = provider.plan_external_source
    if isinstance(statement, ast.SelectStatement):
        if isinstance(statement.from_clause, ast.PredictionJoin):
            from repro.core.prediction import plan_prediction
            node = plan_prediction(provider, statement)
        else:
            node = database.plan_select(statement, external)
        if statement.flattened:
            flat = PlanNode("flatten", strategy="streamed",
                            est_rows=node.est_rows, span_name=None)
            flat.add(node)
            return flat
        return node
    if isinstance(statement, ast.UnionStatement):
        return database.plan_union(statement, external)
    if isinstance(statement, ast.InsertModelStatement):
        return _plan_train(provider, statement)
    if isinstance(statement, ast.InsertValuesStatement):
        return _plan_insert(provider, statement)
    if isinstance(statement, ast.CreateMiningModelStatement):
        return PlanNode("create mining model", target=statement.name,
                        strategy="catalog only", est_rows=0,
                        detail=f"USING {statement.algorithm}")
    if isinstance(statement, ast.CreateTableStatement):
        return PlanNode("create table", target=statement.name,
                        strategy="catalog only", est_rows=0)
    if isinstance(statement, ast.CreateViewStatement):
        node = PlanNode("create view", target=statement.name,
                        strategy="catalog only (definition stored)",
                        est_rows=0)
        node.add(provider.database.plan_select(statement.select, external))
        return node
    if isinstance(statement, ast.DeleteModelStatement):
        return _plan_model_reset(provider, statement.name,
                                 "delete from mining model")
    if isinstance(statement, ast.DeleteStatement):
        if provider.has_model(statement.table):
            return _plan_model_reset(provider, statement.table,
                                     "delete from mining model")
        est = _table_size(database, statement.table)
        strategy = ("truncate" if statement.where is None
                    else "scan + predicate delete")
        return PlanNode("delete", target=statement.table, strategy=strategy,
                        est_rows=est)
    if isinstance(statement, ast.UpdateStatement):
        return PlanNode("update", target=statement.table,
                        strategy="scan + predicate update",
                        est_rows=_table_size(database, statement.table))
    if isinstance(statement, ast.UpdateStatisticsStatement):
        if statement.table is not None:
            targets = [statement.table]
            est = _table_size(database, statement.table)
        else:
            targets = sorted(
                table.schema.name for table in database.tables.values())
            est = sum(len(table) for table in database.tables.values())
        return PlanNode("update statistics",
                        target=statement.table or "(all tables)",
                        strategy="full rebuild from stored rows",
                        est_rows=est,
                        detail=f"{len(targets)} table(s)")
    if isinstance(statement, ast.DropMiningModelStatement):
        return PlanNode("drop mining model", target=statement.name,
                        strategy="catalog only", est_rows=0)
    if isinstance(statement, ast.DropTableStatement):
        if provider.has_model(statement.name):
            return PlanNode("drop mining model", target=statement.name,
                            strategy="catalog only", est_rows=0)
        return PlanNode("drop table", target=statement.name,
                        strategy="catalog only", est_rows=0)
    if isinstance(statement, ast.ExportModelStatement):
        return PlanNode("export model", target=statement.name,
                        strategy="PMML file write", est_rows=0,
                        detail=statement.path)
    if isinstance(statement, ast.ImportModelStatement):
        return PlanNode("import model", target=statement.rename_to,
                        strategy="PMML file read", est_rows=0,
                        detail=statement.path)
    raise Error(
        f"EXPLAIN does not support {type(statement).__name__}")


def _table_size(database, name: str) -> Optional[int]:
    table = database.tables.get(name.upper())
    return len(table) if table is not None else None


def _plan_model_reset(provider, name: str, operator: str) -> PlanNode:
    model = provider.model(name)  # same missing-model error as execution
    return PlanNode(operator, target=model.name,
                    strategy="reset caseset and content", est_rows=0)


def _plan_train(provider, statement: ast.InsertModelStatement) -> PlanNode:
    from repro.exec.partition import training_parallelism_preview
    from repro.core.casecache import definition_fingerprint

    model = provider.model(statement.model)
    maxdop = statement.maxdop
    if maxdop is None:
        maxdop = getattr(statement.source, "maxdop", None)
    pool = provider.pool
    dop = pool.effective_dop(maxdop) if pool is not None else 1
    strategy, reason = training_parallelism_preview(model, pool, dop)

    cache = provider.caseset_cache
    cache_note = "disabled"
    if cache is not None and cache.enabled:
        key = ("train", model.name.upper(),
               definition_fingerprint(model.definition),
               repr(statement.source), repr(statement.bindings),
               provider.database.data_version)
        cache_note = "hit expected" if cache.contains(key) \
            else "miss expected"

    node = PlanNode("train", target=model.name,
                    strategy=f"{strategy} ({reason})",
                    detail=f"service {model.algorithm.SERVICE_NAME}, "
                           f"{model.case_count} case(s) retained",
                    cache=cache_note)
    if strategy.startswith("parallel"):
        node.add(PlanNode("partitioned refit", target=model.name,
                          strategy=f"dop={dop}",
                          span_name="train.partitioned",
                          rows_counter="observations"))
    else:
        node.add(PlanNode("fit", target=model.algorithm.SERVICE_NAME,
                          strategy="serial", span_name="algorithm.train",
                          rows_counter="observations"))
    bind = node.add(PlanNode("bind cases", target=model.name,
                             span_name="bind", rows_counter="cases_bound",
                             match="all"))
    source = _plan_train_source(provider, statement.source)
    bind.add(source)
    node.est_rows = source.est_rows
    bind.est_rows = source.est_rows
    return node


def _plan_train_source(provider, source) -> PlanNode:
    if isinstance(source, ast.ShapeExpr):
        from repro.shaping.shape import plan_shape
        return plan_shape(source, provider.database,
                          provider.plan_external_source)
    if isinstance(source, ast.SelectStatement):
        return provider.database.plan_select(source,
                                             provider.plan_external_source)
    raise Error("INSERT INTO a model requires a SHAPE or SELECT source")


def _plan_insert(provider, statement: ast.InsertValuesStatement) -> PlanNode:
    if provider.has_model(statement.table):
        if statement.select is None:
            raise Error(
                f"INSERT INTO mining model {statement.table!r} requires "
                f"a SELECT or SHAPE source, not VALUES")
        bindings = [ast.BindingColumn(name) for name in statement.columns]
        return _plan_train(provider, ast.InsertModelStatement(
            model=statement.table, bindings=bindings,
            source=statement.select))
    node = PlanNode("insert", target=statement.table,
                    strategy="row append")
    if statement.select is not None:
        child = provider.database.plan_select(
            statement.select, provider.plan_external_source)
        node.add(child)
        node.est_rows = child.est_rows
    else:
        node.est_rows = len(statement.rows)
    return node


# ---------------------------------------------------------------------------
# Reconciliation (EXPLAIN ANALYZE)
# ---------------------------------------------------------------------------

def reconcile_plan(plan: PlanNode, root_span,
                   result_rows: Optional[int] = None) -> None:
    """Annotate ``plan`` with actuals from an executed span tree.

    ``root_span`` is the span that wrapped the ANALYZE execution; spans
    are claimed in plan pre-order so nested operators of the same name
    (sub-selects, views, union branches) pair up positionally.  The root
    operator's actual row count is then pinned to the statement's real
    result (``result_rows``), which is the invariant the differential
    suite asserts against direct execution.
    """
    all_spans = [s for s, _ in root_span.walk()]
    claimed: set = set()

    def annotate(node: PlanNode, totals: Dict[str, float],
                 wall_ms: Optional[float]) -> None:
        node.wall_ms = wall_ms
        if node.rows_counter is not None and node.rows_counter in totals:
            node.actual_rows = int(totals[node.rows_counter])
        if "batches" in totals:
            node.actual_batches = int(totals["batches"])
        if "pool_tasks" in totals:
            node.pool_tasks = int(totals["pool_tasks"])
        if totals.get("cache_hit"):
            node.cache_actual = "hit"
        elif totals.get("cache_miss"):
            node.cache_actual = "miss"

    def visit(node: PlanNode, scope: List[Any], context_span) -> None:
        child_scope, context = scope, context_span
        matched = None
        if node.span_name is not None and node.match == "one":
            matched = next(
                (s for s in scope
                 if s.name == node.span_name and id(s) not in claimed),
                None)
            if matched is not None:
                claimed.add(id(matched))
                # Own counters only: a nested select's rows_out must not
                # roll up into its parent select's actuals.
                annotate(node, dict(matched.counters), matched.duration_ms)
                child_scope = [s for s, _ in matched.walk()]
                context = matched
        elif node.span_name is not None and node.match == "all":
            group = [s for s in scope if s.name == node.span_name]
            if group:
                totals: Dict[str, float] = {}
                wall = 0.0
                for s in group:
                    for name, amount in s.counters.items():
                        totals[name] = totals.get(name, 0) + amount
                    wall += s.duration_ms or 0.0
                annotate(node, totals, round(wall, 6))
        elif node.match == "parent" and context_span is not None and \
                node.rows_counter is not None:
            value = context_span.counters.get(node.rows_counter)
            if value is not None:
                node.actual_rows = int(value)
        for child in node.children:
            visit(child, child_scope, context)
        if matched is not None:
            # Seal the claimed subtree so later siblings cannot reach in.
            claimed.update(id(s) for s, _ in matched.walk())

    visit(plan, all_spans, root_span)
    if result_rows is not None:
        plan.actual_rows = result_rows
    if plan.wall_ms is None:
        plan.wall_ms = root_span.duration_ms


# ---------------------------------------------------------------------------
# Rowset rendering
# ---------------------------------------------------------------------------

PLAN_COLUMNS = [
    RowsetColumn("OP_ID", LONG),
    RowsetColumn("PARENT_ID", LONG),
    RowsetColumn("DEPTH", LONG),
    RowsetColumn("OPERATOR", TEXT),
    RowsetColumn("TARGET", TEXT),
    RowsetColumn("STRATEGY", TEXT),
    RowsetColumn("EST_ROWS", LONG),
    RowsetColumn("COST", DOUBLE),
    RowsetColumn("ACTUAL_ROWS", LONG),
    RowsetColumn("Q_ERROR", DOUBLE),
    RowsetColumn("ACTUAL_BATCHES", LONG),
    RowsetColumn("WALL_MS", DOUBLE),
    RowsetColumn("CACHE", TEXT),
    RowsetColumn("POOL_TASKS", LONG),
    RowsetColumn("DETAIL", TEXT),
]


def explain_rowset(plan: PlanNode, analyzed: bool) -> Rowset:
    """Flatten a plan tree into the EXPLAIN rowset (pre-order)."""
    from repro.obs.repository import q_error
    rows: List[tuple] = []
    ids: Dict[int, int] = {}
    parents: Dict[int, Optional[int]] = {}
    stack = [(plan, 0, None)]
    order: List[tuple] = []
    while stack:
        node, depth, parent_id = stack.pop()
        op_id = len(ids) + 1
        ids[id(node)] = op_id
        parents[op_id] = parent_id
        order.append((node, depth, op_id, parent_id))
        for child in reversed(node.children):
            stack.append((child, depth + 1, op_id))
    for node, depth, op_id, parent_id in order:
        cache = node.cache
        if analyzed and node.cache_actual is not None:
            cache = (f"{cache}, actual {node.cache_actual}"
                     if cache else node.cache_actual)
        q_err = None
        if analyzed:
            q_err = q_error(node.est_rows, node.actual_rows)
        rows.append((
            op_id, parent_id, depth, node.operator, node.target,
            node.strategy, node.est_rows,
            None if node.cost is None else round(node.cost, 3),
            node.actual_rows if analyzed else None,
            None if q_err is None else round(q_err, 3),
            node.actual_batches if analyzed else None,
            None if not analyzed or node.wall_ms is None
            else round(node.wall_ms, 3),
            cache,
            node.pool_tasks if analyzed else None,
            node.detail,
        ))
    return Rowset(list(PLAN_COLUMNS), rows)


def is_plan_rowset(rowset) -> bool:
    """True when ``rowset`` is an EXPLAIN plan (dmxsh renders it as a tree)."""
    names = [c.name for c in getattr(rowset, "columns", [])]
    return names == [c.name for c in PLAN_COLUMNS]
