"""Live workload introspection: active statements, cancellation, resources.

``$SYSTEM.DM_QUERY_LOG`` answers "what ran"; this module answers "what is
running *right now*, how far along is it, what is it costing, and how do I
stop it".  Three cooperating pieces:

* :class:`WorkloadRegistry` — one per provider.  Every executing statement
  registers an :class:`ActiveStatement` keyed by its query-log statement id,
  so ``$SYSTEM.DM_ACTIVE_STATEMENTS`` and ``CANCEL <id>`` share the id
  space operators already see in ``DM_QUERY_LOG``.  Finished statements
  move into a bounded ring that backs ``$SYSTEM.DM_STATEMENT_RESOURCES``.
* :class:`CancelToken` — cooperative cancellation.  ``CANCEL <id>`` (or
  :meth:`Connection.cancel`) sets the token; the executing statement
  observes it at its next progress checkpoint — a batch boundary in the
  engine, a partition boundary in partitioned training, a training
  iteration in iterative algorithms — and unwinds with
  :class:`~repro.errors.CancelledError`.  Nothing is interrupted
  mid-mutation: the mutation either completes or is rolled back by its
  owner, and a cancelled statement is never journaled.
* Per-statement resource accounting — CPU-ms (``time.thread_time`` deltas
  on the statement thread plus per-task deltas shipped back from pool
  workers), lock-wait-ms reported by :class:`repro.exec.locks.RWLock`,
  rows/batches processed, partition progress, and pool tasks in flight.
  Lock waits also aggregate per (lock, mode) into the contention table
  behind ``$SYSTEM.DM_LOCK_WAITS``.

Instrumented modules never hold a registry; like :mod:`repro.obs.trace`
they call the module-level functions (:func:`checkpoint`, :func:`progress`,
:func:`set_phase`, :func:`note_lock_wait`, ...), which resolve the active
statement from a thread-local slot the provider populates around each
statement.  With no active statement every call is a near-free no-op, so
the engine and algorithm layers stay usable standalone.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Dict, List, Optional

from repro.errors import CancelledError

_local = threading.local()

#: Finished statements retained for ``$SYSTEM.DM_STATEMENT_RESOURCES``.
DEFAULT_RESOURCE_RING = 256

#: The execution phases a statement moves through, for DM_ACTIVE_STATEMENTS.
PHASES = ("queued", "parse", "bind", "train", "predict", "scan")


class CancelToken:
    """A one-way latch checked cooperatively at batch/partition boundaries."""

    __slots__ = ("_cancelled", "reason", "statement_id")

    def __init__(self, statement_id: int = 0):
        self.statement_id = statement_id
        self._cancelled = False
        self.reason: Optional[str] = None

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self, reason: str = "cancelled by operator") -> None:
        # Write order matters for lock-free readers: reason first, then the
        # flag that makes check() raise.
        self.reason = reason
        self._cancelled = True

    def check(self) -> None:
        """Raise :class:`CancelledError` if cancellation was requested."""
        if self._cancelled:
            raise CancelledError(
                f"statement {self.statement_id} was cancelled "
                f"({self.reason})")


class ActiveStatement:
    """One executing (or recently finished) statement and its accounting.

    Progress counters are written by the statement's own thread (pool
    results are collected there too); snapshot readers on other threads see
    monotonically advancing plain attributes, which is all the live view
    needs.
    """

    __slots__ = (
        "statement_id", "text", "kind", "phase", "thread", "session",
        "registry",
        "started_at", "_started_perf", "_cpu_start", "token",
        "rows_processed", "batches", "peak_batch_rows",
        "partitions_done", "partitions_total",
        "pool_tasks", "pool_tasks_in_flight", "pool_cpu_ms",
        "cpu_ms", "lock_wait_ms", "lock_waits",
        "cache_hits", "cache_misses",
        "finished", "status", "duration_ms",
    )

    def __init__(self, statement_id: int, text: str,
                 kind: str = "UNKNOWN", registry=None):
        self.statement_id = statement_id
        self.text = text
        self.kind = kind
        self.phase = "queued"
        self.thread = threading.current_thread().name
        # Network sessions run statements on their own session thread; the
        # server stamps the session id into a thread-local, so statements
        # registered here inherit their owning session automatically.
        self.session = session_id()
        self.registry = registry
        self.started_at = time.time()
        self._started_perf = time.perf_counter()
        self._cpu_start = time.thread_time()
        self.token = CancelToken(statement_id)
        self.rows_processed = 0
        self.batches = 0
        self.peak_batch_rows = 0
        self.partitions_done = 0
        self.partitions_total = 0
        self.pool_tasks = 0
        self.pool_tasks_in_flight = 0
        self.pool_cpu_ms = 0.0
        self.cpu_ms = 0.0            # statement-thread CPU, stamped at finish
        self.lock_wait_ms = 0.0
        self.lock_waits = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.finished = False
        self.status = "running"
        self.duration_ms: Optional[float] = None

    # -- progress (statement thread) ------------------------------------------

    def advance(self, rows: int = 0) -> None:
        """One batch boundary: record progress, then honor cancellation."""
        if rows:
            self.rows_processed += rows
            if rows > self.peak_batch_rows:
                self.peak_batch_rows = rows
        self.batches += 1
        self.token.check()

    def elapsed_ms(self) -> float:
        if self.duration_ms is not None:
            return self.duration_ms
        return (time.perf_counter() - self._started_perf) * 1000.0

    def total_cpu_ms(self) -> float:
        """Statement-thread CPU plus worker CPU shipped back from the pool."""
        if self.finished:
            return self.cpu_ms + self.pool_cpu_ms
        return ((time.thread_time() - self._cpu_start) * 1000.0
                + self.pool_cpu_ms
                if threading.current_thread().name == self.thread
                else self.pool_cpu_ms)

    def resource_dict(self) -> Dict[str, Any]:
        """JSON-ready resource summary (sink records and ``/active``)."""
        return {
            "statement_id": self.statement_id,
            "phase": self.phase,
            "status": self.status,
            "cpu_ms": round(self.cpu_ms + self.pool_cpu_ms, 3),
            "pool_cpu_ms": round(self.pool_cpu_ms, 3),
            "lock_wait_ms": round(self.lock_wait_ms, 3),
            "lock_waits": self.lock_waits,
            "rows_processed": self.rows_processed,
            "peak_batch_rows": self.peak_batch_rows,
            "batches": self.batches,
            "partitions_done": self.partitions_done,
            "partitions_total": self.partitions_total,
            "pool_tasks": self.pool_tasks,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
        }

    def active_dict(self) -> Dict[str, Any]:
        """JSON-ready live view (the ``/active`` HTTP route)."""
        return {
            "statement_id": self.statement_id,
            "statement": " ".join(self.text.split()),
            "kind": self.kind,
            "phase": self.phase,
            "thread": self.thread,
            "session": self.session,
            "elapsed_ms": round(self.elapsed_ms(), 3),
            "rows_processed": self.rows_processed,
            "batches": self.batches,
            "partitions_done": self.partitions_done,
            "partitions_total": self.partitions_total,
            "pool_tasks_in_flight": self.pool_tasks_in_flight,
            "lock_wait_ms": round(self.lock_wait_ms, 3),
            "cancel_requested": self.token.cancelled,
        }

    def __repr__(self) -> str:
        return (f"ActiveStatement(#{self.statement_id}, {self.kind}, "
                f"{self.phase}, {self.rows_processed} rows)")


class _LockContention:
    """Aggregated waits for one (lock, mode) pair — a DM_LOCK_WAITS row."""

    __slots__ = ("lock", "mode", "waits", "total_wait_ms", "max_wait_ms",
                 "last_wait_at")

    def __init__(self, lock: str, mode: str):
        self.lock = lock
        self.mode = mode
        self.waits = 0
        self.total_wait_ms = 0.0
        self.max_wait_ms = 0.0
        self.last_wait_at: Optional[float] = None


class WorkloadRegistry:
    """Per-provider catalog of executing statements and contention stats.

    ``enabled = False`` turns the whole layer off (used by the accounting
    overhead benchmark to measure its own cost): nothing registers, so every
    module-level call short-circuits on the empty thread-local slot.
    """

    def __init__(self, metrics=None, resource_ring: int = DEFAULT_RESOURCE_RING):
        self.enabled = True
        self.metrics = metrics
        self._lock = threading.Lock()
        self._active: Dict[int, ActiveStatement] = {}
        self._finished: deque = deque(maxlen=max(1, int(resource_ring)))
        self._contention: Dict[tuple, _LockContention] = {}

    # -- statement lifecycle ---------------------------------------------------

    def register(self, statement_id: int, text: str,
                 kind: str = "UNKNOWN") -> Optional[ActiveStatement]:
        """Admit one executing statement; None when the layer is off."""
        if not self.enabled or not statement_id:
            return None
        statement = ActiveStatement(statement_id, text, kind, registry=self)
        with self._lock:
            self._active[statement_id] = statement
        return statement

    def finish(self, statement: Optional[ActiveStatement],
               status: str = "ok",
               duration_ms: Optional[float] = None) -> None:
        """Retire a statement into the resource ring, stamping CPU time."""
        if statement is None:
            return
        statement.cpu_ms += (time.thread_time() - statement._cpu_start) * 1000.0
        statement.status = status
        statement.duration_ms = (duration_ms if duration_ms is not None
                                 else statement.elapsed_ms())
        statement.finished = True
        with self._lock:
            self._active.pop(statement.statement_id, None)
            self._finished.append(statement)

    def observe(self, record) -> None:
        """Retire the statement behind a finished trace record.

        Called from the tracer's ``on_statement`` callback (still on the
        statement's own thread, so the CPU delta is valid).  Stamps the
        resource summary onto ``record.resources`` so the slow-query sink
        and ``DM_STATEMENT_RESOURCES`` agree with the query log.
        """
        statement_id = getattr(record, "statement_id", 0)
        if not statement_id:
            return
        with self._lock:
            statement = self._active.get(statement_id)
        if statement is None:
            return
        self.finish(statement, status=record.status or "ok",
                    duration_ms=record.duration_ms)
        try:
            record.resources = statement.resource_dict()
        except AttributeError:  # pragma: no cover - null records
            pass

    def cancel(self, statement_id: int,
               reason: str = "cancelled by operator",
               session: Optional[int] = None) -> ActiveStatement:
        """Request cancellation of an active statement; raises on unknown id.

        ``session`` scopes the request: a network session may cancel only
        statements it owns (the server and the CANCEL verb pass the
        caller's session id), while an embedded caller (``session=None``)
        acts as the operator and may cancel anything.
        """
        from repro.errors import Error
        with self._lock:
            statement = self._active.get(statement_id)
            active_ids = sorted(self._active)
        if statement is None:
            raise Error(
                f"no active statement with id {statement_id} "
                f"(active: {', '.join(map(str, active_ids)) or 'none'}); "
                f"see SELECT * FROM $SYSTEM.DM_ACTIVE_STATEMENTS")
        if session is not None and statement.session != session:
            owner = (f"session {statement.session}"
                     if statement.session is not None
                     else "the embedded connection")
            raise Error(
                f"statement {statement_id} is owned by {owner}; a session "
                f"may only cancel its own statements")
        statement.token.cancel(reason)
        if self.metrics is not None:
            self.metrics.counter("resource.cancel_requests").inc()
        return statement

    # -- snapshots -------------------------------------------------------------

    def active(self) -> List[ActiveStatement]:
        """Live statements, oldest first."""
        with self._lock:
            return sorted(self._active.values(),
                          key=lambda s: s.statement_id)

    def resource_records(self) -> List[ActiveStatement]:
        """Active statements then the finished ring, id order within each."""
        with self._lock:
            live = sorted(self._active.values(), key=lambda s: s.statement_id)
            done = list(self._finished)
        return live + done

    def contention(self) -> List[_LockContention]:
        """DM_LOCK_WAITS rows, sorted by (lock, mode)."""
        with self._lock:
            return [self._contention[key]
                    for key in sorted(self._contention)]

    # -- lock-wait profiling ---------------------------------------------------

    def record_lock_wait(self, lock: str, mode: str, wait_ms: float) -> None:
        with self._lock:
            entry = self._contention.get((lock, mode))
            if entry is None:
                entry = self._contention[(lock, mode)] = \
                    _LockContention(lock, mode)
            entry.waits += 1
            entry.total_wait_ms += wait_ms
            if wait_ms > entry.max_wait_ms:
                entry.max_wait_ms = wait_ms
            entry.last_wait_at = time.time()
        if self.metrics is not None:
            self.metrics.counter("lock.waits").inc()
            self.metrics.counter(f"lock.waits.{mode}").inc()
            self.metrics.counter("lock.wait_ms").inc(wait_ms)


# ---------------------------------------------------------------------------
# Module-level instrumentation API (resolves the thread-active statement)
# ---------------------------------------------------------------------------

def activate(statement: Optional[ActiveStatement]) -> Optional[ActiveStatement]:
    """Install the statement as this thread's active one; returns the prior."""
    previous = getattr(_local, "statement", None)
    _local.statement = statement
    return previous


def deactivate(previous: Optional[ActiveStatement]) -> None:
    """Restore the statement returned by the matching :func:`activate`."""
    _local.statement = previous


def current() -> Optional[ActiveStatement]:
    """This thread's active statement, or None."""
    return getattr(_local, "statement", None)


def set_session(session: Optional[int]) -> None:
    """Bind this thread to a network session id (None to unbind).

    The DMX server calls this once on each session thread; every statement
    registered on the thread then carries the session id into
    ``DM_ACTIVE_STATEMENTS`` / ``DM_QUERY_LOG`` and is protected by the
    cancel ownership check.
    """
    _local.session = session


def session_id() -> Optional[int]:
    """The network session id bound to this thread, or None (embedded)."""
    return getattr(_local, "session", None)


def checkpoint(rows: int = 0) -> None:
    """One batch boundary: record progress and honor cancellation.

    This is the cooperative-cancellation point the engine's scan loops, the
    pool's ordered merge, and the binding pipeline call once per batch.  It
    raises :class:`CancelledError` when the statement's token is set.
    """
    statement = getattr(_local, "statement", None)
    if statement is not None:
        statement.advance(rows)


def check() -> None:
    """Honor cancellation without recording progress (entry-point guard)."""
    statement = getattr(_local, "statement", None)
    if statement is not None:
        statement.token.check()


def set_phase(phase: str) -> None:
    """Move the active statement into a new execution phase."""
    statement = getattr(_local, "statement", None)
    if statement is not None:
        statement.phase = phase


def note_lock_wait(lock: str, mode: str, wait_ms: float) -> None:
    """Report one contended lock acquisition (called by RWLock)."""
    statement = getattr(_local, "statement", None)
    if statement is None:
        return
    statement.lock_wait_ms += wait_ms
    statement.lock_waits += 1
    if statement.registry is not None:
        statement.registry.record_lock_wait(lock, mode, wait_ms)


def note_cache(hit: bool) -> None:
    """Attribute one caseset-cache lookup to the active statement."""
    statement = getattr(_local, "statement", None)
    if statement is not None:
        if hit:
            statement.cache_hits += 1
        else:
            statement.cache_misses += 1


def set_partitions(total: int) -> None:
    statement = getattr(_local, "statement", None)
    if statement is not None:
        statement.partitions_total = total
        statement.partitions_done = 0


def partition_done() -> None:
    statement = getattr(_local, "statement", None)
    if statement is not None:
        statement.partitions_done += 1
