"""Rotating JSONL slow-query sink.

The query-log ring (``$SYSTEM.DM_QUERY_LOG``) answers "what ran recently"
from inside a session; this sink answers "what ran slowly, ever" from
outside one.  Every statement whose latency reaches the threshold is
appended to a JSONL file as a single self-contained record — statement
text, kind, status, latency, counter totals, and (when span capture was
on, e.g. under ``EXPLAIN ANALYZE`` or ``TRACE ON``) the full span tree —
so a log shipper can tail the file without speaking DMX.

Rotation is size-based and shift-style (``path`` -> ``path.1`` ->
``path.2`` ...), matching :class:`logging.handlers.RotatingFileHandler`
conventions so existing tooling picks the files up unchanged.
"""

from __future__ import annotations

import datetime
import json
import os
import threading
from typing import Any, Dict, Optional

DEFAULT_MAX_BYTES = 16 * 1024 * 1024
DEFAULT_BACKUPS = 3


def _span_dict(span) -> Dict[str, Any]:
    return {
        "name": span.name,
        "duration_ms": None if span.duration_ms is None
        else round(span.duration_ms, 3),
        "attributes": dict(span.attributes),
        "counters": dict(span.counters),
        "children": [_span_dict(child) for child in span.children],
    }


def statement_record_dict(record) -> Dict[str, Any]:
    """One statement record as a JSON-ready dict (sink and ``/queries``).

    ``spans`` is present only when the record carried a captured span tree
    (span capture on); the bare statement-log shape stays flat and cheap.
    """
    out: Dict[str, Any] = {
        "statement_id": record.statement_id,
        "thread": record.thread,
        "statement": " ".join((record.text or "").split()),
        "kind": record.kind,
        "status": record.status,
        "error": record.error,
        "started_at": datetime.datetime.fromtimestamp(
            record.started_at, datetime.timezone.utc).isoformat(),
        "duration_ms": None if record.duration_ms is None
        else round(record.duration_ms, 3),
        "counters": record.totals(),
        "span_count": record.root.span_count()
        if record.root is not None else 0,
    }
    session = getattr(record, "session", None)
    if session is not None:
        out["session"] = session
    # Workload-repository attribution, so log pipelines can join these
    # records against $SYSTEM.DM_STATEMENT_STATS / DM_PLAN_HISTORY.
    fingerprint = getattr(record, "fingerprint", None)
    if fingerprint is not None:
        out["fingerprint"] = fingerprint
    plan_hash = getattr(record, "plan_hash", None)
    if plan_hash is not None:
        out["plan_hash"] = plan_hash
    resources = getattr(record, "resources", None)
    if resources is not None:
        out["resources"] = resources
    if record.root is not None and record.root.children:
        out["spans"] = [_span_dict(child)
                        for child in record.root.children]
    return out


class SlowQuerySink:
    """Append-only JSONL writer with size-based rotation.

    The file is opened per write (append mode), so external rotation or
    deletion mid-run cannot wedge the provider; a write failure disables
    the sink rather than failing the statement that triggered it.
    """

    def __init__(self, path: str, threshold_ms: float = 0.0,
                 max_bytes: int = DEFAULT_MAX_BYTES,
                 backups: int = DEFAULT_BACKUPS):
        self.path = str(path)
        self.threshold_ms = float(threshold_ms)
        self.max_bytes = int(max_bytes)
        self.backups = max(0, int(backups))
        self.broken = False
        self._lock = threading.Lock()
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)

    def maybe_write(self, record) -> bool:
        """Write ``record`` if it is slow enough; True when written."""
        if self.broken:
            return False
        if record.duration_ms is None or \
                record.duration_ms < self.threshold_ms:
            return False
        line = json.dumps(statement_record_dict(record),
                          default=str, sort_keys=True)
        try:
            with self._lock:
                self._rotate_if_needed(len(line) + 1)
                with open(self.path, "a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
            return True
        except OSError:
            self.broken = True  # never fail the traced statement
            return False

    def _rotate_if_needed(self, incoming: int) -> None:
        try:
            size = os.path.getsize(self.path)
        except OSError:
            return
        if size + incoming <= self.max_bytes:
            return
        if self.backups == 0:
            os.replace(self.path, self.path + ".0")
            os.remove(self.path + ".0")
            return
        oldest = f"{self.path}.{self.backups}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.backups - 1, 0, -1):
            source = f"{self.path}.{index}"
            if os.path.exists(source):
                os.replace(source, f"{self.path}.{index + 1}")
        os.replace(self.path, f"{self.path}.1")

    def records(self) -> list:
        """Parse the current (unrotated) file back; [] when absent."""
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                return [json.loads(line) for line in handle
                        if line.strip()]
        except OSError:
            return []
