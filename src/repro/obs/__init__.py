"""Queryable observability: statement tracing and provider metrics.

:mod:`repro.obs.trace` captures per-statement span trees with counters in a
bounded ring buffer; :mod:`repro.obs.metrics` accumulates counters, gauges,
and latency histograms.  Both surface back through the SQL command surface
as the ``$SYSTEM.DM_QUERY_LOG``, ``$SYSTEM.DM_TRACE_EVENTS``, and
``$SYSTEM.DM_PROVIDER_METRICS`` schema rowsets, and through the DMX shell's
``TRACE ON | OFF | LAST`` verb.
"""

from repro.obs.trace import (
    NULL_SPAN,
    Span,
    StatementRecord,
    Tracer,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "Span",
    "StatementRecord",
    "Tracer",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]
