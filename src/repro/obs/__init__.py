"""Queryable observability: tracing, metrics, plans, and export surfaces.

:mod:`repro.obs.trace` captures per-statement span trees with counters in a
bounded ring buffer; :mod:`repro.obs.metrics` accumulates counters, gauges,
and latency histograms.  Both surface back through the SQL command surface
as the ``$SYSTEM.DM_QUERY_LOG``, ``$SYSTEM.DM_TRACE_EVENTS``, and
``$SYSTEM.DM_PROVIDER_METRICS`` schema rowsets, and through the DMX shell's
``TRACE ON | OFF | LAST`` verb.

:mod:`repro.obs.explain` is the ``EXPLAIN [ANALYZE]`` plan profiler;
:mod:`repro.obs.export` renders Prometheus text exposition and serves the
``/metrics`` / ``/healthz`` / ``/queries`` / ``/statements`` HTTP
endpoint; :mod:`repro.obs.sink` is the rotating JSONL slow-query sink;
:mod:`repro.obs.repository` is the workload repository — per-fingerprint
statement aggregates and plan history behind the
``$SYSTEM.DM_STATEMENT_STATS`` / ``DM_PLAN_HISTORY`` /
``DM_PLAN_CHANGES`` rowsets.
"""

from repro.obs.trace import (
    NULL_SPAN,
    Span,
    StatementRecord,
    Tracer,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.explain import (
    PlanNode,
    build_plan,
    explain_rowset,
    is_plan_rowset,
    reconcile_plan,
)
from repro.obs.export import TelemetryServer, render_prometheus
from repro.obs.repository import (
    QuantileSketch,
    WorkloadRepository,
    plan_skeleton,
    q_error,
)
from repro.obs.sink import SlowQuerySink, statement_record_dict
from repro.obs.workload import (
    ActiveStatement,
    CancelToken,
    WorkloadRegistry,
)

__all__ = [
    "ActiveStatement",
    "CancelToken",
    "WorkloadRegistry",
    "Span",
    "StatementRecord",
    "Tracer",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PlanNode",
    "build_plan",
    "explain_rowset",
    "is_plan_rowset",
    "reconcile_plan",
    "TelemetryServer",
    "render_prometheus",
    "SlowQuerySink",
    "statement_record_dict",
    "QuantileSketch",
    "WorkloadRepository",
    "plan_skeleton",
    "q_error",
]
