"""The workload repository: per-fingerprint aggregates and plan history.

``DM_QUERY_LOG`` is a bounded ring of raw events; fleet-level questions
("which statement *shape* got slower after the optimizer change?") need
aggregation by shape.  This module keys everything by **statement
fingerprint** (:mod:`repro.lang.normalizer`: literals blanked, identifiers
case-folded, rendered through the canonical formatter, hashed) and keeps,
per fingerprint:

* streaming aggregates — calls, errors, cancels, total/mean/min/max
  latency, p50/p95/p99 latency from a fixed-size :class:`QuantileSketch`,
  rows returned, CPU-ms, caseset-cache hits/misses, buffer-pool reads,
  and pool tasks;
* a bounded **plan history** — each EXPLAIN-able execution's plan
  *skeleton* (operator/strategy/target tree, no actuals or estimates) is
  hashed; per plan hash the repository tracks executions, latency, and
  est-vs-actual q-error aggregates;
* **plan-change events** — when a fingerprint's active plan hash changes
  (CREATE/DROP INDEX, UPDATE STATISTICS, ...), a change row records the
  old and new hash, the most recent schema-affecting trigger statement,
  and the old plan's latency baseline at the moment of the change.

Everything surfaces as ``$SYSTEM.DM_STATEMENT_STATS``,
``$SYSTEM.DM_PLAN_HISTORY``, and ``$SYSTEM.DM_PLAN_CHANGES``, the
``/statements`` HTTP route, and the ``repro_statement_*`` Prometheus
families.  The repository is observation-only: it never influences
planning or execution, which the differential suite pins byte-for-byte.

Persistence is a versioned JSON file (``workload_repository.json``) under
the provider's durable path, written with
:func:`repro.store.atomic.atomic_write_text` on ``close()``/
``checkpoint()`` and loaded lazily on first touch.  The DMJ1 journal is
never involved; a corrupt or alien repository file degrades to an empty
repository with a ``repository.load_errors`` warning metric — the read
path never raises.
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict, deque
from typing import Any, Dict, List, Optional

from repro.lang import ast_nodes as ast
from repro.lang.normalizer import fingerprint_text, normalize_statement

FORMAT_VERSION = 1

#: Samples retained by the latency sketch (exact until first compaction).
DEFAULT_SKETCH_CAPACITY = 256

#: Distinct plans remembered per fingerprint (oldest non-active evicted).
DEFAULT_PLAN_HISTORY = 8

#: Plan-change events retained (newest win).
DEFAULT_CHANGE_LIMIT = 256

#: Distinct fingerprints retained (least-recently-observed evicted).
DEFAULT_MAX_FINGERPRINTS = 512

#: Raw-text -> fingerprint memo entries (hot statements re-fingerprint free).
_TEXT_CACHE_LIMIT = 1024

#: (text, data_version, stats_enabled) -> plan memo entries; a hot
#: statement against unchanged data re-captures its plan for one dict hit.
_PLAN_CACHE_LIMIT = 512

#: Statement kinds whose completion can change later plans — remembered as
#: the ``TRIGGER_STATEMENT`` of the next plan-change event.
TRIGGER_KINDS = frozenset({
    "CREATE_INDEX", "DROP_INDEX", "UPDATE_STATISTICS",
    "CREATE_TABLE", "CREATE_VIEW", "DROP",
})


class QuantileSketch:
    """Fixed-size quantile estimator via systematic decimation.

    Observations are admitted every ``stride``-th arrival; when the buffer
    reaches ``capacity`` it is sorted and every other sample dropped, and
    the stride doubles — so each retained sample always represents exactly
    ``stride`` observations (uniform weights), and nearest-rank quantiles
    over the buffer estimate the true quantiles with relative rank error
    bounded by ``stride / n`` ≈ ``2 / capacity`` after the first
    compaction (exact before it).  Deterministic: no randomness, so tests
    and persistence round-trips are stable.
    """

    __slots__ = ("capacity", "stride", "samples", "count", "_skipped")

    def __init__(self, capacity: int = DEFAULT_SKETCH_CAPACITY):
        self.capacity = max(8, int(capacity))
        self.stride = 1
        self.samples: List[float] = []
        self.count = 0
        self._skipped = 0

    def observe(self, value: float) -> None:
        self.count += 1
        self._skipped += 1
        if self._skipped < self.stride:
            return
        self._skipped = 0
        self.samples.append(float(value))
        if len(self.samples) >= self.capacity:
            self.samples = sorted(self.samples)[::2]
            self.stride *= 2

    def quantile(self, fraction: float) -> Optional[float]:
        """Nearest-rank quantile over the retained samples."""
        if not self.samples:
            return None
        ordered = sorted(self.samples)
        rank = max(0, min(len(ordered) - 1,
                          int(round(fraction * len(ordered))) - 1))
        return ordered[rank]

    def to_dict(self) -> Dict[str, Any]:
        return {"capacity": self.capacity, "stride": self.stride,
                "count": self.count, "samples": list(self.samples)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QuantileSketch":
        sketch = cls(int(data.get("capacity", DEFAULT_SKETCH_CAPACITY)))
        sketch.stride = max(1, int(data.get("stride", 1)))
        sketch.count = int(data.get("count", 0))
        sketch.samples = [float(v) for v in data.get("samples", [])]
        del sketch.samples[sketch.capacity:]
        return sketch


# ---------------------------------------------------------------------------
# Plan skeletons
# ---------------------------------------------------------------------------

def plan_skeleton(plan) -> str:
    """Render a :class:`~repro.obs.explain.PlanNode` tree as its skeleton.

    Operator, target, and strategy only — no estimates, costs, actuals, or
    detail strings (which carry volatile facts such as buffer residency) —
    so the skeleton is stable across executions of the same plan shape.
    """
    lines = []
    for node, depth in plan.walk():
        parts = [node.operator]
        if node.target:
            parts.append(str(node.target))
        if node.strategy:
            parts.append(str(node.strategy))
        lines.append("  " * depth + " | ".join(parts))
    return "\n".join(lines)


def skeleton_hash(skeleton: str) -> str:
    """Short stable hash of a plan skeleton (the ``PLAN_HASH`` columns)."""
    return fingerprint_text(skeleton)


# ---------------------------------------------------------------------------
# Entries
# ---------------------------------------------------------------------------

class PlanEntry:
    """One captured plan of one fingerprint, with per-plan aggregates."""

    __slots__ = ("plan_hash", "skeleton", "first_seen", "last_seen",
                 "executions", "total_ms", "q_count", "q_sum", "q_max")

    def __init__(self, plan_hash: str, skeleton: str,
                 first_seen: Optional[float] = None):
        self.plan_hash = plan_hash
        self.skeleton = skeleton
        self.first_seen = time.time() if first_seen is None else first_seen
        self.last_seen = self.first_seen
        self.executions = 0
        self.total_ms = 0.0
        # est-vs-actual q-error aggregates, reconciled from root actuals.
        self.q_count = 0
        self.q_sum = 0.0
        self.q_max: Optional[float] = None

    def mean_ms(self) -> Optional[float]:
        return self.total_ms / self.executions if self.executions else None

    def mean_q_error(self) -> Optional[float]:
        return self.q_sum / self.q_count if self.q_count else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "plan_hash": self.plan_hash, "skeleton": self.skeleton,
            "first_seen": self.first_seen, "last_seen": self.last_seen,
            "executions": self.executions, "total_ms": self.total_ms,
            "q_count": self.q_count, "q_sum": self.q_sum,
            "q_max": self.q_max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlanEntry":
        entry = cls(str(data["plan_hash"]), str(data.get("skeleton", "")),
                    first_seen=float(data.get("first_seen", 0.0)))
        entry.last_seen = float(data.get("last_seen", entry.first_seen))
        entry.executions = int(data.get("executions", 0))
        entry.total_ms = float(data.get("total_ms", 0.0))
        entry.q_count = int(data.get("q_count", 0))
        entry.q_sum = float(data.get("q_sum", 0.0))
        q_max = data.get("q_max")
        entry.q_max = None if q_max is None else float(q_max)
        return entry


class PlanChange:
    """One plan-regression event: a fingerprint's active plan hash moved."""

    __slots__ = ("change_id", "fingerprint", "statement", "changed_at",
                 "old_plan_hash", "new_plan_hash", "trigger",
                 "before_mean_ms")

    def __init__(self, change_id: int, fingerprint: str, statement: str,
                 old_plan_hash: str, new_plan_hash: str,
                 trigger: Optional[str], before_mean_ms: Optional[float],
                 changed_at: Optional[float] = None):
        self.change_id = change_id
        self.fingerprint = fingerprint
        self.statement = statement
        self.changed_at = time.time() if changed_at is None else changed_at
        self.old_plan_hash = old_plan_hash
        self.new_plan_hash = new_plan_hash
        self.trigger = trigger
        # The old plan's mean latency frozen at the moment of the change;
        # the *after* baseline is read live off the new plan's entry.
        self.before_mean_ms = before_mean_ms

    def to_dict(self) -> Dict[str, Any]:
        return {
            "change_id": self.change_id, "fingerprint": self.fingerprint,
            "statement": self.statement, "changed_at": self.changed_at,
            "old_plan_hash": self.old_plan_hash,
            "new_plan_hash": self.new_plan_hash, "trigger": self.trigger,
            "before_mean_ms": self.before_mean_ms,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PlanChange":
        before = data.get("before_mean_ms")
        return cls(int(data["change_id"]), str(data["fingerprint"]),
                   str(data.get("statement", "")),
                   str(data["old_plan_hash"]), str(data["new_plan_hash"]),
                   data.get("trigger"),
                   None if before is None else float(before),
                   changed_at=float(data.get("changed_at", 0.0)))


class FingerprintEntry:
    """Aggregates for one statement shape."""

    __slots__ = ("fingerprint", "normalized", "exemplar", "kind",
                 "calls", "errors", "cancels",
                 "total_ms", "min_ms", "max_ms", "sketch",
                 "rows_returned", "cpu_ms", "cache_hits", "cache_misses",
                 "buffer_reads", "pool_tasks",
                 "first_at", "last_at", "plans", "active_plan")

    def __init__(self, fingerprint: str, normalized: str, exemplar: str,
                 kind: str = "UNKNOWN",
                 sketch_capacity: int = DEFAULT_SKETCH_CAPACITY):
        self.fingerprint = fingerprint
        self.normalized = normalized
        self.exemplar = exemplar
        self.kind = kind
        self.calls = 0
        self.errors = 0
        self.cancels = 0
        self.total_ms = 0.0
        self.min_ms: Optional[float] = None
        self.max_ms: Optional[float] = None
        self.sketch = QuantileSketch(sketch_capacity)
        self.rows_returned = 0
        self.cpu_ms = 0.0
        self.cache_hits = 0
        self.cache_misses = 0
        self.buffer_reads = 0
        self.pool_tasks = 0
        self.first_at = time.time()
        self.last_at = self.first_at
        # plan_hash -> PlanEntry, insertion-ordered for eviction.
        self.plans: "OrderedDict[str, PlanEntry]" = OrderedDict()
        self.active_plan: Optional[str] = None

    def mean_ms(self) -> Optional[float]:
        return self.total_ms / self.calls if self.calls else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "fingerprint": self.fingerprint, "normalized": self.normalized,
            "exemplar": self.exemplar, "kind": self.kind,
            "calls": self.calls, "errors": self.errors,
            "cancels": self.cancels, "total_ms": self.total_ms,
            "min_ms": self.min_ms, "max_ms": self.max_ms,
            "sketch": self.sketch.to_dict(),
            "rows_returned": self.rows_returned, "cpu_ms": self.cpu_ms,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "buffer_reads": self.buffer_reads,
            "pool_tasks": self.pool_tasks,
            "first_at": self.first_at, "last_at": self.last_at,
            "plans": [plan.to_dict() for plan in self.plans.values()],
            "active_plan": self.active_plan,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FingerprintEntry":
        entry = cls(str(data["fingerprint"]),
                    str(data.get("normalized", "")),
                    str(data.get("exemplar", "")),
                    kind=str(data.get("kind", "UNKNOWN")))
        entry.calls = int(data.get("calls", 0))
        entry.errors = int(data.get("errors", 0))
        entry.cancels = int(data.get("cancels", 0))
        entry.total_ms = float(data.get("total_ms", 0.0))
        for name in ("min_ms", "max_ms"):
            value = data.get(name)
            setattr(entry, name, None if value is None else float(value))
        entry.sketch = QuantileSketch.from_dict(data.get("sketch", {}))
        entry.rows_returned = int(data.get("rows_returned", 0))
        entry.cpu_ms = float(data.get("cpu_ms", 0.0))
        entry.cache_hits = int(data.get("cache_hits", 0))
        entry.cache_misses = int(data.get("cache_misses", 0))
        entry.buffer_reads = int(data.get("buffer_reads", 0))
        entry.pool_tasks = int(data.get("pool_tasks", 0))
        entry.first_at = float(data.get("first_at", 0.0))
        entry.last_at = float(data.get("last_at", entry.first_at))
        for plan_data in data.get("plans", []):
            plan = PlanEntry.from_dict(plan_data)
            entry.plans[plan.plan_hash] = plan
        active = data.get("active_plan")
        entry.active_plan = None if active is None else str(active)
        return entry


def q_error(estimated: Optional[float],
            actual: Optional[float]) -> Optional[float]:
    """``max(est, actual) / min(est, actual)``; None when undefined.

    None when either side is missing; 1.0 when both are zero (a correct
    estimate of an empty result); None when exactly one side is zero
    (the ratio is unbounded, not infinite-ly informative).
    """
    if estimated is None or actual is None:
        return None
    estimated = float(estimated)
    actual = float(actual)
    if estimated == actual:
        return 1.0
    if estimated <= 0 or actual <= 0:
        return None
    return max(estimated, actual) / min(estimated, actual)


# ---------------------------------------------------------------------------
# The repository
# ---------------------------------------------------------------------------

class WorkloadRepository:
    """Per-provider statement/plan store keyed by fingerprint.

    Thread-safe: statements retire concurrently from wire-session threads.
    ``path=None`` keeps the repository memory-only; with a path, state is
    loaded lazily on first touch and saved by :meth:`save` (the provider
    calls it from ``close()`` and ``checkpoint()``).
    """

    def __init__(self, path: Optional[str] = None, metrics=None,
                 sketch_capacity: int = DEFAULT_SKETCH_CAPACITY,
                 plan_history: int = DEFAULT_PLAN_HISTORY,
                 change_limit: int = DEFAULT_CHANGE_LIMIT,
                 max_fingerprints: int = DEFAULT_MAX_FINGERPRINTS):
        self.path = path
        self.metrics = metrics
        self.enabled = True
        self.sketch_capacity = int(sketch_capacity)
        self.plan_history = max(1, int(plan_history))
        self.max_fingerprints = max(1, int(max_fingerprints))
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, FingerprintEntry]" = OrderedDict()
        self._changes: deque = deque(maxlen=max(1, int(change_limit)))
        self._change_seq = 0
        self._last_trigger: Optional[str] = None
        self._loaded = path is None
        self._dirty = False
        # raw statement text -> (fingerprint, normalized) memo, bounded.
        self._text_cache: "OrderedDict[str, tuple]" = OrderedDict()
        # (text, data_version, stats_enabled) -> (hash, skeleton, est_rows)
        # plan memo; None hash marks a statement with no EXPLAIN-able plan.
        self._plan_cache: "OrderedDict[tuple, tuple]" = OrderedDict()

    # -- attribution (statement thread, after parse, before execution) ---------

    def annotate(self, record, provider, statement, command: str) -> None:
        """Stamp fingerprint and plan attribution onto a statement record.

        Called by the dispatcher once the statement is parsed; the stamped
        ``record.fingerprint`` / ``record.plan_hash`` / ``record.
        plan_est_rows`` are folded into the aggregates at retirement by
        :meth:`observe`.  Never raises into the statement: a statement
        that cannot be normalized or planned simply goes unattributed.
        """
        if not self.enabled or record.root is None:
            return
        fingerprint = self._fingerprint(command, statement, record.kind)
        if fingerprint is None:
            return
        record.fingerprint = fingerprint
        if isinstance(statement, (ast.ExplainStatement, ast.TraceStatement,
                                  ast.CancelStatement)):
            return  # control verbs have no data-path plan
        plan_hash, skeleton, est_rows = self._plan_for(provider, statement,
                                                       command)
        if plan_hash is None:
            return
        self._record_plan(fingerprint, plan_hash, skeleton)
        record.plan_hash = plan_hash
        record.plan_est_rows = est_rows

    def _fingerprint(self, text: str, statement,
                     kind: Optional[str]) -> Optional[str]:
        """Fingerprint a parsed statement, ensuring its entry exists.

        Memoized by raw text so hot statements pay one dict lookup.
        Returns None (and records nothing) when the statement cannot be
        normalized — fingerprinting must never fail the statement.
        """
        with self._lock:
            cached = self._text_cache.get(text)
            if cached is not None:
                self._text_cache.move_to_end(text)
        if cached is None:
            try:
                normalized = normalize_statement(statement)
            except Exception:
                return None
            cached = (fingerprint_text(normalized), normalized)
        fingerprint, normalized = cached
        with self._lock:
            self._text_cache[text] = cached
            while len(self._text_cache) > _TEXT_CACHE_LIMIT:
                self._text_cache.popitem(last=False)
            self._ensure_loaded()
            entry = self._touch_entry(fingerprint, normalized, text)
            if kind:
                entry.kind = kind
        return fingerprint

    def _plan_for(self, provider, statement, command: str) -> tuple:
        """The statement's (plan_hash, skeleton, est_rows), memoized.

        The memo key folds in ``data_version`` (monotonic over catalog DDL
        and every row mutation — CREATE/DROP INDEX bump it) and the
        planner's statistics gate, so a changed plan is always re-captured
        while a hot statement against unchanged data costs one dict hit.
        """
        key = (command, provider.database.data_version,
               provider.database.stats_enabled)
        with self._lock:
            cached = self._plan_cache.get(key)
            if cached is not None:
                self._plan_cache.move_to_end(key)
                return cached
        try:
            from repro.obs.explain import build_plan
            plan = build_plan(provider, statement)
            skeleton = plan_skeleton(plan)
            est = plan.est_rows
            cached = (skeleton_hash(skeleton), skeleton,
                      None if est is None else float(est))
        except Exception:
            cached = (None, None, None)  # not EXPLAIN-able; cache that too
        with self._lock:
            self._plan_cache[key] = cached
            while len(self._plan_cache) > _PLAN_CACHE_LIMIT:
                self._plan_cache.popitem(last=False)
        return cached

    def _record_plan(self, fingerprint: str, plan_hash: str,
                     skeleton: str) -> None:
        """Ensure a :class:`PlanEntry` exists; counts happen at retirement."""
        with self._lock:
            self._ensure_loaded()
            entry = self._entries.get(fingerprint)
            if entry is None:
                return
            plan_entry = entry.plans.get(plan_hash)
            if plan_entry is None:
                entry.plans[plan_hash] = PlanEntry(plan_hash, skeleton)
                self._evict_plans(entry)
            else:
                entry.plans.move_to_end(plan_hash)
            self._dirty = True

    def _evict_plans(self, entry: FingerprintEntry) -> None:
        while len(entry.plans) > self.plan_history:
            for plan_hash in entry.plans:
                if plan_hash != entry.active_plan:
                    del entry.plans[plan_hash]
                    break
            else:  # only the active plan remains; nothing to evict
                break

    # -- retirement (tracer callback, statement thread) ------------------------

    def observe(self, record) -> None:
        """Fold one finished statement record into the aggregates."""
        if not self.enabled:
            return
        fingerprint = getattr(record, "fingerprint", None)
        kind = getattr(record, "kind", None) or "UNKNOWN"
        with self._lock:
            self._ensure_loaded()
            if kind in TRIGGER_KINDS and record.status == "ok":
                self._last_trigger = " ".join(
                    (getattr(record, "text", "") or "").split())
            if fingerprint is None:
                return
            entry = self._entries.get(fingerprint)
            if entry is None:
                return
            self._entries.move_to_end(fingerprint)
            entry.kind = kind
            entry.calls += 1
            entry.last_at = time.time()
            if record.status == "error":
                entry.errors += 1
            elif record.status == "cancelled":
                entry.cancels += 1
            duration = record.duration_ms
            if duration is not None:
                entry.total_ms += duration
                entry.min_ms = (duration if entry.min_ms is None
                                else min(entry.min_ms, duration))
                entry.max_ms = (duration if entry.max_ms is None
                                else max(entry.max_ms, duration))
                entry.sketch.observe(duration)
            totals = record.totals()
            rows_out = totals.get("rows_out")
            entry.rows_returned += int(rows_out or 0)
            entry.buffer_reads += int(totals.get("buffer_reads", 0) or 0)
            resources = getattr(record, "resources", None)
            if resources is not None:
                entry.cpu_ms += float(resources.get("cpu_ms", 0.0) or 0.0)
                entry.cache_hits += int(resources.get("cache_hits", 0) or 0)
                entry.cache_misses += int(
                    resources.get("cache_misses", 0) or 0)
                entry.pool_tasks += int(resources.get("pool_tasks", 0) or 0)
            self._observe_plan(entry, record, duration, rows_out)
            self._dirty = True

    def _observe_plan(self, entry: FingerprintEntry, record,
                      duration: Optional[float], rows_out) -> None:
        plan_hash = getattr(record, "plan_hash", None)
        if plan_hash is None:
            return
        plan = entry.plans.get(plan_hash)
        if plan is None:
            return
        plan.executions += 1
        plan.last_seen = time.time()
        if duration is not None:
            plan.total_ms += duration
        error = q_error(getattr(record, "plan_est_rows", None),
                        None if rows_out is None else float(rows_out))
        if error is not None:
            plan.q_count += 1
            plan.q_sum += error
            plan.q_max = (error if plan.q_max is None
                          else max(plan.q_max, error))
        if entry.active_plan != plan_hash:
            if entry.active_plan is not None:
                old = entry.plans.get(entry.active_plan)
                self._change_seq += 1
                self._changes.append(PlanChange(
                    self._change_seq, entry.fingerprint, entry.normalized,
                    entry.active_plan, plan_hash, self._last_trigger,
                    None if old is None else old.mean_ms()))
                if self.metrics is not None:
                    self.metrics.counter("repository.plan_changes").inc()
            entry.active_plan = plan_hash

    def _touch_entry(self, fingerprint: str, normalized: str,
                     exemplar: str) -> FingerprintEntry:
        entry = self._entries.get(fingerprint)
        if entry is None:
            entry = FingerprintEntry(fingerprint, normalized, exemplar,
                                     sketch_capacity=self.sketch_capacity)
            self._entries[fingerprint] = entry
            while len(self._entries) > self.max_fingerprints:
                self._entries.popitem(last=False)
                if self.metrics is not None:
                    self.metrics.counter("repository.evictions").inc()
        self._entries.move_to_end(fingerprint)
        return entry

    # -- snapshots (rowsets, /statements, Prometheus) --------------------------

    def statement_stats(self) -> List[Dict[str, Any]]:
        """Per-fingerprint aggregate dicts, hottest (most total time) first."""
        with self._lock:
            self._ensure_loaded()
            entries = list(self._entries.values())
            rows = []
            for entry in entries:
                rows.append({
                    "fingerprint": entry.fingerprint,
                    "statement": entry.normalized,
                    "exemplar": " ".join(entry.exemplar.split()),
                    "kind": entry.kind,
                    "calls": entry.calls,
                    "errors": entry.errors,
                    "cancels": entry.cancels,
                    "total_ms": entry.total_ms,
                    "mean_ms": entry.mean_ms(),
                    "min_ms": entry.min_ms,
                    "max_ms": entry.max_ms,
                    "p50_ms": entry.sketch.quantile(0.50),
                    "p95_ms": entry.sketch.quantile(0.95),
                    "p99_ms": entry.sketch.quantile(0.99),
                    "rows_returned": entry.rows_returned,
                    "cpu_ms": entry.cpu_ms,
                    "cache_hits": entry.cache_hits,
                    "cache_misses": entry.cache_misses,
                    "buffer_reads": entry.buffer_reads,
                    "pool_tasks": entry.pool_tasks,
                    "plans": len(entry.plans),
                    "plan_hash": entry.active_plan,
                    "first_at": entry.first_at,
                    "last_at": entry.last_at,
                })
        rows.sort(key=lambda r: (-r["total_ms"], r["fingerprint"]))
        return rows

    def plan_history_rows(self) -> List[Dict[str, Any]]:
        """One dict per (fingerprint, plan), fingerprint-then-first-seen
        order."""
        with self._lock:
            self._ensure_loaded()
            rows = []
            for entry in self._entries.values():
                for plan in entry.plans.values():
                    rows.append({
                        "fingerprint": entry.fingerprint,
                        "plan_hash": plan.plan_hash,
                        "active": plan.plan_hash == entry.active_plan,
                        "first_seen": plan.first_seen,
                        "last_seen": plan.last_seen,
                        "executions": plan.executions,
                        "mean_ms": plan.mean_ms(),
                        "q_count": plan.q_count,
                        "mean_q_error": plan.mean_q_error(),
                        "max_q_error": plan.q_max,
                        "skeleton": plan.skeleton,
                    })
        rows.sort(key=lambda r: (r["fingerprint"], r["first_seen"],
                                 r["plan_hash"]))
        return rows

    def plan_changes(self) -> List[Dict[str, Any]]:
        """Plan-change events oldest first, with live *after* baselines."""
        with self._lock:
            self._ensure_loaded()
            rows = []
            for change in self._changes:
                row = change.to_dict()
                entry = self._entries.get(change.fingerprint)
                after = None
                if entry is not None:
                    new_plan = entry.plans.get(change.new_plan_hash)
                    if new_plan is not None:
                        after = new_plan.mean_ms()
                row["after_mean_ms"] = after
                rows.append(row)
        return rows

    def __len__(self) -> int:
        with self._lock:
            self._ensure_loaded()
            return len(self._entries)

    # -- persistence -----------------------------------------------------------

    def _ensure_loaded(self) -> None:
        """Lazy one-shot load; corrupt files degrade to empty, never raise."""
        if self._loaded:
            return
        self._loaded = True
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("format") != FORMAT_VERSION:
                raise ValueError(
                    f"unknown repository format {data.get('format')!r}")
            for item in data.get("statements", []):
                entry = FingerprintEntry.from_dict(item)
                self._entries[entry.fingerprint] = entry
            for item in data.get("changes", []):
                self._changes.append(PlanChange.from_dict(item))
            self._change_seq = int(data.get("change_seq", len(self._changes)))
            trigger = data.get("last_trigger")
            self._last_trigger = None if trigger is None else str(trigger)
        except FileNotFoundError:
            pass
        except Exception:
            self._entries.clear()
            self._changes.clear()
            self._change_seq = 0
            self._last_trigger = None
            if self.metrics is not None:
                self.metrics.counter("repository.load_errors").inc()

    def save(self) -> bool:
        """Write the repository to its JSON file; True when written.

        No-op without a path or without changes since the last save.  A
        write failure counts ``repository.save_errors`` and returns False
        rather than failing the close/checkpoint that triggered it.
        """
        if self.path is None:
            return False
        with self._lock:
            if not self._dirty and self._loaded:
                return False
            self._ensure_loaded()
            payload = {
                "format": FORMAT_VERSION,
                "change_seq": self._change_seq,
                "last_trigger": self._last_trigger,
                "statements": [entry.to_dict()
                               for entry in self._entries.values()],
                "changes": [change.to_dict() for change in self._changes],
            }
            self._dirty = False
        from repro.store.atomic import atomic_write_text
        try:
            atomic_write_text(self.path, json.dumps(payload, sort_keys=True))
            return True
        except OSError:
            if self.metrics is not None:
                self.metrics.counter("repository.save_errors").inc()
            return False
