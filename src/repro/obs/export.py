"""Telemetry export: Prometheus text exposition + the HTTP endpoint.

:func:`render_prometheus` turns :meth:`MetricsRegistry.snapshot` into the
Prometheus text exposition format (version 0.0.4): counters and gauges as
single samples, histograms as summaries (window-based ``quantile`` labels
plus the monotonic ``_count``/``_sum`` series that survive window
eviction).  Everything is stdlib-only — no client library.

:class:`TelemetryServer` serves a provider's telemetry over plain
``http.server`` on a daemon thread:

* ``GET /metrics``  — the exposition text;
* ``GET /healthz``  — 200 while the provider can accept writes, 503 once
  the durable store has turned read-only after a durability failure;
* ``GET /queries``  — the recent ``$SYSTEM.DM_QUERY_LOG`` ring as JSON.

Started with ``connect(...).provider.serve_metrics(port)`` or
``dmxsh --metrics-port N``.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.sink import statement_record_dict

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, namespace: str = "repro") -> str:
    """Sanitize a registry metric name into a legal Prometheus name."""
    flat = _NAME_OK.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{namespace}_{flat}" if namespace else flat


def escape_label_value(value: str) -> str:
    """Escape per the text-format rules: backslash, quote, newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(registry, namespace: str = "repro",
                      info: Optional[Dict[str, str]] = None) -> str:
    """The full exposition for one registry, one family per metric.

    ``info`` adds a constant ``<namespace>_provider_info`` gauge whose
    labels carry build/configuration facts (the conventional ``_info``
    pattern); label values are escaped, so arbitrary strings are safe.
    """
    lines = []
    for row in registry.snapshot():
        name = metric_name(row["name"], namespace)
        kind = row["kind"]
        if kind == "counter":
            lines.append(f"# HELP {name} counter {row['name']}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_format_value(row['value'])}")
        elif kind == "gauge":
            lines.append(f"# HELP {name} gauge {row['name']}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(row['value'])}")
        elif kind == "histogram":
            lines.append(f"# HELP {name} histogram {row['name']}")
            lines.append(f"# TYPE {name} summary")
            for label, key in (("0.5", "p50"), ("0.95", "p95"),
                               ("0.99", "p99")):
                if row.get(key) is not None:
                    lines.append(f'{name}{{quantile="{label}"}} '
                                 f"{_format_value(row[key])}")
            # Monotonic accumulators: unlike the quantile window these
            # never forget, which is what rate() needs.
            lines.append(f"{name}_count {_format_value(row['count'])}")
            lines.append(f"{name}_sum {_format_value(row.get('sum', row['value']))}")
    if info is not None:
        name = metric_name("provider_info", namespace)
        labels = ",".join(
            f'{_NAME_OK.sub("_", key)}="{escape_label_value(value)}"'
            for key, value in sorted(info.items()))
        lines.append(f"# HELP {name} provider build/configuration info")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{{{labels}}} 1")
    return "\n".join(lines) + "\n"


def provider_info(provider) -> Dict[str, str]:
    """The constant labels for the ``provider_info`` series."""
    import repro
    return {
        "version": getattr(repro, "__version__", "0"),
        "pool_mode": provider.pool.mode,
        "max_workers": str(provider.pool.max_workers),
        "durable": "yes" if provider.store is not None else "no",
    }


class _Handler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz, /queries against ``server.provider``."""

    server_version = "repro-telemetry"

    def log_message(self, *args) -> None:  # silence per-request stderr noise
        pass

    def _reply(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        provider = self.server.provider
        parsed = urlparse(self.path)
        if parsed.path == "/metrics":
            body = render_prometheus(provider.metrics,
                                     info=provider_info(provider))
            self._reply(200, body, CONTENT_TYPE)
            return
        if parsed.path == "/healthz":
            store = provider.store
            if store is not None and store.broken:
                self._reply(503, json.dumps(
                    {"status": "read-only",
                     "reason": "durable store failed; writes refused"}),
                    "application/json")
                return
            self._reply(200, json.dumps({"status": "ok"}),
                        "application/json")
            return
        if parsed.path == "/queries":
            try:
                limit = int(parse_qs(parsed.query).get("limit", ["50"])[0])
            except (TypeError, ValueError):
                limit = 50
            records = provider.tracer.statements()[-max(0, limit):]
            body = json.dumps([statement_record_dict(record)
                               for record in records], default=str)
            self._reply(200, body, "application/json")
            return
        self._reply(404, json.dumps({"error": f"no route {parsed.path!r}"}),
                    "application/json")


class TelemetryServer:
    """The provider's HTTP telemetry endpoint, on a daemon thread."""

    def __init__(self, provider, host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.provider = provider
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-telemetry:{self.port}", daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
