"""Telemetry export: Prometheus text exposition + the HTTP endpoint.

:func:`render_prometheus` turns :meth:`MetricsRegistry.snapshot` into the
Prometheus text exposition format (version 0.0.4): counters and gauges as
single samples, histograms as summaries (window-based ``quantile`` labels
plus the monotonic ``_count``/``_sum`` series that survive window
eviction).  Everything is stdlib-only — no client library.

:class:`TelemetryServer` serves a provider's telemetry over plain
``http.server`` on a daemon thread:

* ``GET /metrics``  — the exposition text;
* ``GET /healthz``  — 200 while the provider can accept writes, 503 once
  the durable store has turned read-only after a durability failure;
* ``GET /queries``  — the recent ``$SYSTEM.DM_QUERY_LOG`` ring as JSON;
* ``GET /active``   — the live ``$SYSTEM.DM_ACTIVE_STATEMENTS`` view as
  JSON (phase, progress, pending cancels);
* ``GET /statements`` — the workload repository as JSON: per-fingerprint
  aggregates (``DM_STATEMENT_STATS``) and plan-change events
  (``DM_PLAN_CHANGES``).

``/metrics`` additionally exposes the ``repro_statement_*`` families —
per-fingerprint calls/errors/latency-quantiles for the hottest statement
shapes, labelled by fingerprint.

Started with ``connect(...).provider.serve_metrics(port)`` or
``dmxsh --metrics-port N``.

:func:`export_chrome_trace` writes the tracer's statement ring as a
Chrome-trace JSON array (the ``chrome://tracing`` / Perfetto format), one
complete ("X") event per span, so a whole statement's span tree can be
inspected on a timeline.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional
from urllib.parse import parse_qs, urlparse

from repro.obs.sink import statement_record_dict

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, namespace: str = "repro") -> str:
    """Sanitize a registry metric name into a legal Prometheus name."""
    flat = _NAME_OK.sub("_", name)
    if flat and flat[0].isdigit():
        flat = "_" + flat
    return f"{namespace}_{flat}" if namespace else flat


def escape_label_value(value: str) -> str:
    """Escape per the text-format rules: backslash, quote, newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def render_prometheus(registry, namespace: str = "repro",
                      info: Optional[Dict[str, str]] = None) -> str:
    """The full exposition for one registry, one family per metric.

    ``info`` adds a constant ``<namespace>_provider_info`` gauge whose
    labels carry build/configuration facts (the conventional ``_info``
    pattern); label values are escaped, so arbitrary strings are safe.
    """
    lines = []
    for row in registry.snapshot():
        name = metric_name(row["name"], namespace)
        kind = row["kind"]
        if kind == "counter":
            lines.append(f"# HELP {name} counter {row['name']}")
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {_format_value(row['value'])}")
        elif kind == "gauge":
            lines.append(f"# HELP {name} gauge {row['name']}")
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(row['value'])}")
        elif kind == "histogram":
            lines.append(f"# HELP {name} histogram {row['name']}")
            lines.append(f"# TYPE {name} summary")
            for label, key in (("0.5", "p50"), ("0.95", "p95"),
                               ("0.99", "p99")):
                if row.get(key) is not None:
                    lines.append(f'{name}{{quantile="{label}"}} '
                                 f"{_format_value(row[key])}")
            # Monotonic accumulators: unlike the quantile window these
            # never forget, which is what rate() needs.
            lines.append(f"{name}_count {_format_value(row['count'])}")
            lines.append(f"{name}_sum {_format_value(row.get('sum', row['value']))}")
    if info is not None:
        name = metric_name("provider_info", namespace)
        labels = ",".join(
            f'{_NAME_OK.sub("_", key)}="{escape_label_value(value)}"'
            for key, value in sorted(info.items()))
        lines.append(f"# HELP {name} provider build/configuration info")
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{{{labels}}} 1")
    return "\n".join(lines) + "\n"


#: Fingerprints exposed through the ``repro_statement_*`` families —
#: hottest (most total time) first; the full set stays queryable via
#: ``$SYSTEM.DM_STATEMENT_STATS`` and ``/statements``.
STATEMENT_FAMILY_TOP = 5


def render_statement_families(repository, namespace: str = "repro",
                              top: int = STATEMENT_FAMILY_TOP) -> str:
    """The workload repository's ``<namespace>_statement_*`` exposition.

    Per-fingerprint counters and a latency summary for the ``top`` hottest
    statement shapes, plus the monotonic plan-change event counter.
    Returns "" when the repository is disabled or empty.
    """
    if not repository.enabled:
        return ""
    stats = repository.statement_stats()
    if not stats:
        return ""
    prefix = metric_name("statement", namespace)
    lines = []

    def family(suffix: str, kind: str, help_text: str) -> str:
        name = f"{prefix}_{suffix}"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        return name

    hottest = stats[:max(0, top)]
    name = family("calls_total", "counter",
                  "statement executions per fingerprint")
    for stat in hottest:
        lines.append(f'{name}{{fingerprint="{stat["fingerprint"]}"}} '
                     f"{_format_value(stat['calls'])}")
    name = family("errors_total", "counter",
                  "failed statement executions per fingerprint")
    for stat in hottest:
        lines.append(f'{name}{{fingerprint="{stat["fingerprint"]}"}} '
                     f"{_format_value(stat['errors'])}")
    name = family("rows_returned_total", "counter",
                  "rows returned per fingerprint")
    for stat in hottest:
        lines.append(f'{name}{{fingerprint="{stat["fingerprint"]}"}} '
                     f"{_format_value(stat['rows_returned'])}")
    name = family("latency_ms", "summary",
                  "statement latency quantiles per fingerprint (sketched)")
    for stat in hottest:
        fp = stat["fingerprint"]
        for label, key in (("0.5", "p50_ms"), ("0.95", "p95_ms"),
                           ("0.99", "p99_ms")):
            if stat.get(key) is not None:
                lines.append(f'{name}{{fingerprint="{fp}",'
                             f'quantile="{label}"}} '
                             f"{_format_value(stat[key])}")
        lines.append(f'{name}_count{{fingerprint="{fp}"}} '
                     f"{_format_value(stat['calls'])}")
        lines.append(f'{name}_sum{{fingerprint="{fp}"}} '
                     f"{_format_value(stat['total_ms'])}")
    name = family("plan_changes_total", "counter",
                  "active-plan changes observed across all fingerprints")
    lines.append(f"{name} {_format_value(len(repository.plan_changes()))}")
    return "\n".join(lines) + "\n"


def provider_info(provider) -> Dict[str, str]:
    """The constant labels for the ``provider_info`` series."""
    import repro
    return {
        "version": getattr(repro, "__version__", "0"),
        "pool_mode": provider.pool.mode,
        "max_workers": str(provider.pool.max_workers),
        "durable": "yes" if provider.store is not None else "no",
    }


class _Handler(BaseHTTPRequestHandler):
    """Routes /metrics, /healthz, /queries against ``server.provider``."""

    server_version = "repro-telemetry"

    def log_message(self, *args) -> None:  # silence per-request stderr noise
        pass

    def _reply(self, status: int, body: str, content_type: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        provider = self.server.provider
        parsed = urlparse(self.path)
        if parsed.path == "/metrics":
            body = render_prometheus(provider.metrics,
                                     info=provider_info(provider))
            repository = getattr(provider, "repository", None)
            if repository is not None:
                body += render_statement_families(repository)
            self._reply(200, body, CONTENT_TYPE)
            return
        if parsed.path == "/healthz":
            store = provider.store
            if store is not None and store.broken:
                self._reply(503, json.dumps(
                    {"status": "read-only",
                     "reason": "durable store failed; writes refused"}),
                    "application/json")
                return
            self._reply(200, json.dumps({"status": "ok"}),
                        "application/json")
            return
        if parsed.path == "/queries":
            try:
                limit = int(parse_qs(parsed.query).get("limit", ["50"])[0])
            except (TypeError, ValueError):
                limit = 50
            records = provider.tracer.statements()[-max(0, limit):]
            body = json.dumps([statement_record_dict(record)
                               for record in records], default=str)
            self._reply(200, body, "application/json")
            return
        if parsed.path == "/active":
            body = json.dumps([statement.active_dict()
                               for statement in provider.workload.active()],
                              default=str)
            self._reply(200, body, "application/json")
            return
        if parsed.path == "/statements":
            repository = provider.repository
            body = json.dumps({
                "statements": repository.statement_stats(),
                "plan_changes": repository.plan_changes(),
            }, default=str)
            self._reply(200, body, "application/json")
            return
        self._reply(404, json.dumps({"error": f"no route {parsed.path!r}"}),
                    "application/json")


class TelemetryServer:
    """The provider's HTTP telemetry endpoint, on a daemon thread.

    :meth:`close` releases the socket and joins the serving thread, and is
    idempotent — repeated serve/close cycles in one process neither leak
    daemon threads nor hold ports.
    """

    def __init__(self, provider, host: str = "127.0.0.1", port: int = 0):
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.provider = provider
        self.host, self.port = self._httpd.server_address[:2]
        self._closed = False
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name=f"repro-telemetry:{self.port}", daemon=True)
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5)

    def __enter__(self) -> "TelemetryServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Chrome-trace export (chrome://tracing / Perfetto JSON array format)
# ---------------------------------------------------------------------------

def chrome_trace_events(provider) -> list:
    """The tracer ring as a list of Chrome-trace event dicts.

    Each span becomes one complete ("X") event: ``ts``/``dur`` in
    microseconds, ``pid`` fixed, ``tid`` the executing thread.  Span
    counters, attributes, and the statement's resource summary travel in
    ``args`` so Perfetto shows them on selection.  Thread names are
    emitted as metadata ("M") events.
    """
    events = []
    threads = {}

    def tid_for(thread_name):
        if thread_name not in threads:
            threads[thread_name] = len(threads) + 1
            events.append({
                "name": "thread_name", "ph": "M", "pid": 1,
                "tid": threads[thread_name],
                "args": {"name": thread_name},
            })
        return threads[thread_name]

    for record in provider.tracer.statements():
        if record.root is None or record.duration_ms is None:
            continue
        tid = tid_for(record.thread or "main")
        # Wall-clock anchor for the statement; span offsets are the
        # perf_counter deltas from the root span's start.
        base_us = record.started_at * 1e6
        root_started = record.root.started
        label = " ".join(record.text.split())
        for span, _depth in record.root.walk():
            if span.duration_ms is None:
                continue
            args = {}
            if span is record.root:
                args["statement"] = label
                args["kind"] = record.kind
                args["status"] = record.status
                if record.resources is not None:
                    args["resources"] = record.resources
            if span.counters:
                args["counters"] = dict(span.counters)
            if span.attributes:
                args["attributes"] = {key: str(value) for key, value
                                      in span.attributes.items()}
            events.append({
                "name": (f"#{record.statement_id} {record.kind}"
                         if span is record.root else span.name),
                "cat": record.kind or "statement",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": base_us + (span.started - root_started) * 1e6,
                "dur": span.duration_ms * 1000.0,
                "args": args,
            })
    return events


def export_chrome_trace(provider, path: str) -> int:
    """Write the trace ring to ``path`` as Chrome-trace JSON.

    Returns the number of statements exported.  Load the file in
    ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events = chrome_trace_events(provider)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"},
                  handle, default=str)
    return sum(1 for record in provider.tracer.statements()
               if record.root is not None and record.duration_ms is not None)
