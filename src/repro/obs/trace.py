"""Statement tracing: nested spans with counters, in a bounded ring buffer.

The paper's thesis is that every part of the mining life cycle is driven
through the SQL command surface; this module applies the same idea to the
provider's own runtime behaviour.  Each executed statement becomes a
:class:`StatementRecord` holding a tree of :class:`Span` objects
(``statement -> parse -> shape/bind -> engine -> algorithm -> predict``),
each carrying wall-time and named counters (rows scanned, cases bound,
observations trained, ...).  Records land in a thread-safe, bounded ring
buffer which the ``$SYSTEM.DM_QUERY_LOG`` and ``$SYSTEM.DM_TRACE_EVENTS``
schema rowsets expose back through the very surface being traced.

Cost model (the contract the overhead benchmark asserts):

* ``recording`` off — ``statement()`` yields a shared null record; nothing
  is allocated, counted, or stored;
* ``recording`` on, ``enabled`` off (the default) — one root span per
  statement plus a handful of batched counter adds; child ``span()`` calls
  return a shared no-op span;
* ``enabled`` on — the full span tree is captured.

Instrumented modules never hold a tracer; they call the module-level
:func:`span` and :func:`add`, which resolve the active tracer from a
thread-local slot that :meth:`Provider.execute` populates around each
statement.  With no active tracer both are near-free no-ops, so the
engine, shaping, and algorithm layers stay usable standalone.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

_local = threading.local()

DEFAULT_RING_SIZE = 256


class Span:
    """One timed region of statement execution, with counters and children."""

    __slots__ = ("name", "attributes", "counters", "children", "started",
                 "duration_ms", "_tracer")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None,
                 tracer: Optional["Tracer"] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.counters: Dict[str, float] = {}
        self.children: List[Span] = []
        self.started = time.perf_counter()
        self.duration_ms: Optional[float] = None
        self._tracer = tracer

    def add(self, counter: str, amount: float = 1) -> None:
        """Increment a named counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def set(self, attribute: str, value: Any) -> None:
        self.attributes[attribute] = value

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Yield (span, depth) over this subtree, pre-order."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def totals(self) -> Dict[str, float]:
        """Counters aggregated over this span and all descendants."""
        aggregate: Dict[str, float] = {}
        for span, _ in self.walk():
            for name, amount in span.counters.items():
                aggregate[name] = aggregate.get(name, 0) + amount
        return aggregate

    def span_count(self) -> int:
        return sum(1 for _ in self.walk())

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._tracer is not None:
            self._tracer._finish_span(self)
        return False

    def __repr__(self) -> str:
        timing = "open" if self.duration_ms is None else \
            f"{self.duration_ms:.3f} ms"
        return (f"Span({self.name!r}, {timing}, {len(self.children)} "
                f"children, {self.counters})")


class _NullSpan:
    """Shared no-op span returned when tracing is disabled."""

    __slots__ = ()

    def add(self, counter: str, amount: float = 1) -> None:
        pass

    def set(self, attribute: str, value: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class StatementRecord:
    """One executed statement: text, outcome, latency, and its span tree."""

    __slots__ = ("statement_id", "text", "kind", "status", "error",
                 "started_at", "duration_ms", "root", "thread", "session",
                 "resources", "fingerprint", "plan_hash", "plan_est_rows")

    def __init__(self, statement_id: int, text: str, kind: str = "UNKNOWN"):
        self.statement_id = statement_id
        self.text = text
        self.kind = kind
        self.thread = threading.current_thread().name
        # Network session id, stamped by the dispatcher when the statement
        # arrived over the wire; None for embedded statements.
        self.session: Optional[int] = None
        self.status: Optional[str] = None
        self.error: Optional[str] = None
        self.started_at = time.time()
        self.duration_ms: Optional[float] = None
        self.root: Optional[Span] = None
        # Resource summary dict stamped by the workload registry at finish
        # (CPU-ms, lock-wait-ms, rows, partitions, ...); None when the
        # workload layer is disabled.
        self.resources: Optional[Dict[str, Any]] = None
        # Workload-repository attribution, stamped by the dispatcher after
        # parse: statement fingerprint, captured plan-skeleton hash, and
        # the plan root's estimated cardinality (for q-error at retire).
        self.fingerprint: Optional[str] = None
        self.plan_hash: Optional[str] = None
        self.plan_est_rows: Optional[float] = None

    def totals(self) -> Dict[str, float]:
        return self.root.totals() if self.root is not None else {}

    def spans(self) -> List[Tuple[Span, int]]:
        return list(self.root.walk()) if self.root is not None else []

    def __repr__(self) -> str:
        return (f"StatementRecord(#{self.statement_id}, {self.kind}, "
                f"{self.status}, {self.duration_ms and round(self.duration_ms, 3)} ms)")


class _NullRecord:
    """Absorbs record mutations when statement recording is off."""

    root = None
    statement_id = 0
    text = ""
    thread = ""
    session = None
    duration_ms = None
    status = None
    error = None
    resources = None
    fingerprint = None
    plan_hash = None
    plan_est_rows = None

    def __setattr__(self, name: str, value: Any) -> None:
        pass  # swallow kind/status assignments from the dispatcher

    def totals(self) -> Dict[str, float]:
        return {}

    def spans(self) -> list:
        return []


NULL_RECORD = _NullRecord()


class Tracer:
    """Per-provider trace collector: span stack + statement ring buffer.

    ``recording`` gates the statement log (query log rows, root-span
    counters, metrics callback); ``enabled`` additionally captures nested
    span trees.  The ring holds the most recent ``ring_size`` statements.
    """

    def __init__(self, ring_size: int = DEFAULT_RING_SIZE,
                 enabled: bool = False):
        self.enabled = enabled
        self.recording = True
        self._ring: deque = deque(maxlen=max(1, int(ring_size)))
        self._lock = threading.Lock()
        self._seq = 0
        self._stacks = threading.local()
        # on_statement(record) is invoked after each completed statement;
        # the provider uses it to fold trace totals into its metrics.
        self.on_statement = None

    # -- configuration --------------------------------------------------------

    @property
    def ring_size(self) -> int:
        return self._ring.maxlen

    def resize_ring(self, ring_size: int) -> None:
        """Rebound the ring, keeping the newest records."""
        with self._lock:
            self._ring = deque(self._ring, maxlen=max(1, int(ring_size)))

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()

    # -- statement lifecycle --------------------------------------------------

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "value", None)
        if stack is None:
            stack = []
            self._stacks.value = stack
        return stack

    @contextmanager
    def statement(self, text: str, kind: str = "UNKNOWN"):
        """Trace one statement; yields its mutable :class:`StatementRecord`."""
        if not self.recording:
            yield NULL_RECORD
            return
        with self._lock:
            self._seq += 1
            record = StatementRecord(self._seq, text, kind)
        root = Span("statement", tracer=self)
        record.root = root
        stack = self._stack()
        stack.append(root)
        try:
            yield record
            if record.status is None:
                record.status = "ok"
        except Exception as exc:
            from repro.errors import CancelledError
            record.status = ("cancelled" if isinstance(exc, CancelledError)
                             else "error")
            record.error = f"{type(exc).__name__}: {exc}"
            raise
        finally:
            root.duration_ms = (time.perf_counter() - root.started) * 1000.0
            record.duration_ms = root.duration_ms
            # Unwind any spans left open by an exception, then the root.
            while stack and stack[-1] is not root:
                stack.pop()
            if stack:
                stack.pop()
            with self._lock:
                self._ring.append(record)
            if self.on_statement is not None:
                self.on_statement(record)

    # -- span stack -----------------------------------------------------------

    def start_span(self, name: str, **attributes) -> Span:
        span = Span(name, attributes, tracer=self)
        stack = self._stack()
        if stack:
            stack[-1].children.append(span)
        stack.append(span)
        return span

    def _finish_span(self, span: Span) -> None:
        span.duration_ms = (time.perf_counter() - span.started) * 1000.0
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()

    def current_span(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    # -- ring access ----------------------------------------------------------

    def statements(self) -> List[StatementRecord]:
        """Snapshot of the ring, oldest first."""
        with self._lock:
            return list(self._ring)

    def last(self) -> Optional[StatementRecord]:
        with self._lock:
            return self._ring[-1] if self._ring else None

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


# ---------------------------------------------------------------------------
# Module-level instrumentation API (resolves the thread-active tracer)
# ---------------------------------------------------------------------------

def activate(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Install ``tracer`` as this thread's active tracer; returns the prior."""
    previous = getattr(_local, "tracer", None)
    _local.tracer = tracer
    return previous


def deactivate(previous: Optional[Tracer]) -> None:
    """Restore the tracer returned by the matching :func:`activate`."""
    _local.tracer = previous


def active_tracer() -> Optional[Tracer]:
    return getattr(_local, "tracer", None)


def span(name: str, **attributes):
    """Open a child span on the active tracer (no-op span when disabled)."""
    tracer = getattr(_local, "tracer", None)
    if tracer is None or not tracer.enabled:
        return NULL_SPAN
    return tracer.start_span(name, **attributes)


def add(counter: str, amount: float = 1) -> None:
    """Add to a counter on the innermost open span of the active tracer.

    With span tracing disabled the innermost span is the statement root, so
    counters still roll up into ``$SYSTEM.DM_QUERY_LOG`` row totals.
    """
    tracer = getattr(_local, "tracer", None)
    if tracer is None or not tracer.recording:
        return
    stack = tracer._stack()
    if stack:
        stack[-1].add(counter, amount)


def current_span():
    """The innermost open span of the active tracer, for pinning.

    Lazy producers call this at plan time and pass the result to
    :func:`add_to`, so counters produced after the enclosing span closes
    still attribute to it.  Returns :data:`NULL_SPAN` when span capture is
    off, which makes :func:`add_to` fall back to :func:`add`.
    """
    tracer = getattr(_local, "tracer", None)
    if tracer is None or not tracer.enabled:
        return NULL_SPAN
    stack = tracer._stack()
    return stack[-1] if stack else NULL_SPAN


def add_to(span, counter: str, amount: float = 1) -> None:
    """Add to a counter on a captured span; used by lazy producers.

    Streaming operators capture their span at plan time and produce rows
    after it has closed; pinning the counter to the captured span keeps the
    trace attribution right.  When span capture is off the captured span is
    the shared null span, so fall back to :func:`add` and the counter rolls
    up into whatever statement is live at consumption time.
    """
    if span is NULL_SPAN:
        add(counter, amount)
    else:
        span.add(counter, amount)
