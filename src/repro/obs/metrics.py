"""Provider metrics: counters, gauges, and histograms with snapshots.

A :class:`MetricsRegistry` lives on each :class:`~repro.core.provider.Provider`
and accumulates runtime statistics across statements: per-kind latency
percentiles, engine row-scan totals, per-model training volumes,
prediction-join fan-out.  ``SELECT * FROM $SYSTEM.DM_PROVIDER_METRICS``
renders :meth:`MetricsRegistry.snapshot` as a schema rowset, so the
provider's performance counters are queryable through the same SQL surface
as its models — the paper's "everything is a rowset" principle applied to
the provider itself.

All types are thread-safe and dependency-free.  Histograms keep exact
count/sum/min/max plus a bounded window of recent observations from which
percentiles are computed, so memory stays constant under heavy traffic.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Dict, List, Optional


class Counter:
    """A monotonically increasing total."""

    KIND = "counter"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self.value += amount

    def row(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.KIND, "value": self.value}


class Gauge:
    """A value that can move in both directions (last write wins)."""

    KIND = "gauge"
    __slots__ = ("name", "value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self.value = value

    def row(self) -> Dict[str, Any]:
        return {"name": self.name, "kind": self.KIND, "value": self.value}


class Histogram:
    """Exact count/sum/min/max plus percentile estimates over a recent window.

    ``window`` bounds memory: percentiles are computed over the most recent
    observations only, which is the usual sliding-window compromise for an
    in-process, dependency-free histogram.
    """

    KIND = "histogram"
    __slots__ = ("name", "count", "total", "min", "max", "_recent", "_lock")

    def __init__(self, name: str, window: int = 512):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._recent: deque = deque(maxlen=window)
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)
            self._recent.append(value)

    def percentile(self, fraction: float) -> Optional[float]:
        """Nearest-rank percentile over the recent window (0 < fraction <= 1)."""
        with self._lock:
            window = sorted(self._recent)
        if not window:
            return None
        rank = max(0, min(len(window) - 1,
                          int(round(fraction * len(window))) - 1))
        return window[rank]

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    @property
    def sum(self) -> float:
        """Monotonic sum of every observation ever made.

        Unlike the percentile window, ``count``/``sum`` never forget: they
        survive eviction from the 512-sample window, which is what makes
        them usable as Prometheus ``_count``/``_sum`` series (rates over
        scrape intervals need monotonic accumulators, not windows).
        """
        return self.total

    def row(self) -> Dict[str, Any]:
        return {
            "name": self.name, "kind": self.KIND, "count": self.count,
            "value": self.total, "sum": self.sum, "min": self.min,
            "max": self.max, "mean": self.mean, "p50": self.percentile(0.50),
            "p95": self.percentile(0.95), "p99": self.percentile(0.99),
        }


class MetricsRegistry:
    """Named metric catalog with get-or-create accessors and snapshots."""

    def __init__(self):
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, factory, kind):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} is a {metric.KIND}, not a "
                    f"{kind.KIND}")
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str, window: int = 512) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, window), Histogram)

    def get(self, name: str) -> Optional[Any]:
        with self._lock:
            return self._metrics.get(name)

    def value(self, name: str, default: float = 0.0) -> float:
        """Current value of a counter/gauge; ``default`` if absent/unset."""
        metric = self.get(name)
        if metric is None or getattr(metric, "value", None) is None:
            return default
        return metric.value

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()

    def snapshot(self) -> List[Dict[str, Any]]:
        """One dict per metric, sorted by name (the DM_PROVIDER_METRICS rows)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return [metric.row() for metric in metrics]

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics
