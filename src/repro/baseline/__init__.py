"""The "mining outside the database" baseline (system S12)."""

from repro.baseline.external_pipeline import (
    ExternalMiningPipeline,
    run_external_pipeline,
    run_in_provider_pipeline,
)

__all__ = [
    "ExternalMiningPipeline",
    "run_external_pipeline",
    "run_in_provider_pipeline",
]
