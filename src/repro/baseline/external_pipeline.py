"""A faithful "mining outside the DBMS" pipeline — the paper's strawman.

Section 1: "Data is dumped or sampled out of the database, and then a series
of Perl, Awk, and special purpose programs are used for data preparation.
This typically results in the familiar large trail of droppings in the file
system."

:class:`ExternalMiningPipeline` re-enacts that workflow honestly so benchmark
C1 can compare it against the in-provider path on identical work:

1. **export**: SELECT each source table and dump it to CSV files;
2. **prepare**: join/denormalise the CSVs with file-based line processing
   (the Perl/Awk stand-in) into a prepared training file — another dropping;
3. **train**: run the *same* mining algorithm over cases parsed back from
   the prepared file;
4. **predict**: dump the test set, prepare it, score it, and write a
   predictions file, which must then be re-imported into the database.

Every byte written is tallied, so the benchmark reports data movement as
well as wall-clock time.  The in-provider path does the equivalent work via
two DMX statements and moves no bytes through the file system.
"""

from __future__ import annotations

import csv
import os
from typing import Dict, List, Optional, Tuple

from repro.core.bindings import MappedCase
from repro.core.columns import ModelDefinition
from repro.core.model import MiningModel
from repro.sqlstore.engine import Database


class PipelineStats:
    """What the external pipeline cost: files, bytes, rows."""

    def __init__(self):
        self.files_written: List[str] = []
        self.bytes_written = 0
        self.rows_exported = 0

    def record(self, path: str, rows: int) -> None:
        self.files_written.append(path)
        self.bytes_written += os.path.getsize(path)
        self.rows_exported += rows

    def __repr__(self) -> str:
        return (f"PipelineStats({len(self.files_written)} files, "
                f"{self.bytes_written} bytes, {self.rows_exported} rows)")


class ExternalMiningPipeline:
    """Export -> file prep -> external train/score -> import."""

    def __init__(self, database: Database, workdir: str):
        self.database = database
        self.workdir = workdir
        os.makedirs(workdir, exist_ok=True)
        self.stats = PipelineStats()

    # -- step 1: export -----------------------------------------------------------

    def export_table(self, query: str, filename: str) -> str:
        """Dump a query result to CSV (the 'data is dumped out' step)."""
        rowset = self.database.execute(query)
        path = os.path.join(self.workdir, filename)
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(rowset.column_names())
            for row in rowset.rows:
                writer.writerow(["" if v is None else v for v in row])
        self.stats.record(path, len(rowset))
        return path

    # -- step 2: file-based preparation ---------------------------------------------

    def prepare_cases(self, customers_csv: str, sales_csv: str,
                      output_filename: str) -> str:
        """Line-oriented join of the two dumps (the Perl/Awk stand-in).

        Produces one line per customer:
        ``id,gender,age,product1:qty1;product2:qty2;...`` — yet another
        file-system dropping.
        """
        purchases: Dict[str, List[str]] = {}
        with open(sales_csv, newline="") as handle:
            reader = csv.reader(handle)
            header = next(reader)
            for row in reader:
                record = dict(zip(header, row))
                purchases.setdefault(record["CustID"], []).append(
                    f"{record['Product Name']}:{record['Quantity']}")
        path = os.path.join(self.workdir, output_filename)
        rows = 0
        with open(customers_csv, newline="") as source, \
                open(path, "w") as target:
            reader = csv.reader(source)
            header = next(reader)
            for row in reader:
                record = dict(zip(header, row))
                basket = ";".join(purchases.get(record["Customer ID"], []))
                target.write(f"{record['Customer ID']},{record['Gender']},"
                             f"{record['Age']},{basket}\n")
                rows += 1
        self.stats.record(path, rows)
        return path

    # -- step 3: external training ----------------------------------------------------

    @staticmethod
    def parse_prepared_file(path: str) -> List[MappedCase]:
        """Read prepared cases back from disk (the external tool's loader)."""
        cases = []
        with open(path) as handle:
            for line in handle:
                line = line.rstrip("\n")
                if not line:
                    continue
                customer_id, gender, age, basket = line.split(",", 3)
                case = MappedCase()
                case.scalars["CUSTOMER ID"] = int(customer_id)
                case.scalars["GENDER"] = gender or None
                case.scalars["AGE"] = float(age) if age else None
                rows = []
                if basket:
                    for entry in basket.split(";"):
                        name, _, quantity = entry.partition(":")
                        rows.append({"PRODUCT NAME": name,
                                     "QUANTITY": float(quantity or 1.0)})
                case.tables["PRODUCT PURCHASES"] = rows
                cases.append(case)
        return cases

    def train_external_model(self, definition: ModelDefinition,
                             prepared_path: str) -> MiningModel:
        model = MiningModel(definition)
        model.train(self.parse_prepared_file(prepared_path))
        return model

    # -- step 4: score + re-import ------------------------------------------------------

    def score_and_import(self, model: MiningModel, prepared_path: str,
                         predictions_table: str,
                         target_column: str) -> str:
        """Score the prepared test file and import predictions back."""
        cases = self.parse_prepared_file(prepared_path)
        predictions_path = os.path.join(self.workdir,
                                        f"{predictions_table}.csv")
        attribute = model.space.for_column(target_column)
        rows = 0
        with open(predictions_path, "w") as handle:
            for case in cases:
                prediction = model.predict_case(case).get(attribute)
                value = prediction.value if prediction is not None else None
                handle.write(f"{case.scalars['CUSTOMER ID']},{value}\n")
                rows += 1
        self.stats.record(predictions_path, rows)

        # Re-import: the "data consistency nightmare" round trip.
        self.database.execute(
            f"CREATE TABLE [{predictions_table}] "
            f"([Customer ID] LONG, Predicted TEXT)")
        table = self.database.table(predictions_table)
        with open(predictions_path) as handle:
            for line in handle:
                customer_id, _, value = line.rstrip("\n").partition(",")
                table.insert((int(customer_id), value))
        return predictions_path


AGE_MODEL_DDL = """
CREATE MINING MODEL [{name}] (
    [Customer ID] LONG KEY,
    [Gender] TEXT DISCRETE,
    [Age] DOUBLE DISCRETIZED PREDICT,
    [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Quantity] DOUBLE CONTINUOUS
    )
) USING [Decision_Trees_101]
"""

TRAIN_DMX = """
INSERT INTO [{name}] ([Customer ID], [Gender], [Age],
    [Product Purchases]([Product Name], [Quantity]))
SHAPE
    {{SELECT [Customer ID], [Gender], [Age] FROM Customers
      ORDER BY [Customer ID]}}
APPEND (
    {{SELECT [CustID], [Product Name], [Quantity] FROM Sales
      ORDER BY [CustID]}}
    RELATE [Customer ID] TO [CustID]) AS [Product Purchases]
"""

PREDICT_DMX = """
SELECT t.[Customer ID], [{name}].[Age]
FROM [{name}] NATURAL PREDICTION JOIN
    (SHAPE
        {{SELECT [Customer ID], [Gender] FROM Customers
          ORDER BY [Customer ID]}}
     APPEND (
        {{SELECT [CustID], [Product Name], [Quantity] FROM Sales
          ORDER BY [CustID]}}
        RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t
"""


def run_in_provider_pipeline(provider, model_name: str = "C1 InDb"):
    """The paper's path: define, train, and predict via DMX only."""
    provider.execute(AGE_MODEL_DDL.format(name=model_name))
    provider.execute(TRAIN_DMX.format(name=model_name))
    return provider.execute(PREDICT_DMX.format(name=model_name))


def run_external_pipeline(provider, workdir: str,
                          model_name: str = "C1 External"):
    """The strawman path on the same data; returns (rowset, stats)."""
    from repro.lang.parser import parse_statement
    from repro.core.columns import compile_model_definition

    pipeline = ExternalMiningPipeline(provider.database, workdir)
    customers_csv = pipeline.export_table(
        "SELECT [Customer ID], Gender, Age FROM Customers "
        "ORDER BY [Customer ID]", "customers.csv")
    sales_csv = pipeline.export_table(
        "SELECT CustID, [Product Name], Quantity FROM Sales "
        "ORDER BY CustID", "sales.csv")
    prepared = pipeline.prepare_cases(customers_csv, sales_csv,
                                      "prepared_cases.txt")
    definition = compile_model_definition(
        parse_statement(AGE_MODEL_DDL.format(name=model_name)))
    model = pipeline.train_external_model(definition, prepared)
    pipeline.score_and_import(model, prepared,
                              f"{model_name} Predictions", "Age")
    result = provider.database.execute(
        f"SELECT * FROM [{model_name} Predictions]")
    return result, pipeline.stats
