"""Logistic-regression mining service (probabilistic discrete targets).

Complements the tree/Bayes services with a calibrated linear classifier:
multinomial logistic regression over the same one-hot/continuous design
matrix as :mod:`repro.algorithms.linear_regression`, fitted by batch
gradient descent with L2 regularisation (numpy only).  Included chiefly as
a further demonstration that new services keep plugging into the same
definition/training/prediction statements — and because its calibrated
probabilities make the lift charts of ``repro.evaluation`` interesting.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import CapabilityError, TrainError
from repro.algorithms.attributes import Attribute, AttributeSpace, Observation
from repro.algorithms.base import (
    AttributePrediction,
    CasePrediction,
    MiningAlgorithm,
)
from repro.algorithms.statistics import CategoricalDistribution
from repro.core.content import (
    NODE_MODEL,
    NODE_PREDICTABLE,
    ContentNode,
    DistributionRow,
)


class _LogisticModel:
    """Per-target fitted weights: (classes, features) plus feature means."""

    __slots__ = ("weights", "feature_means", "support", "log_loss")

    def __init__(self, weights: np.ndarray, feature_means: np.ndarray,
                 support: float, log_loss: float):
        self.weights = weights
        self.feature_means = feature_means
        self.support = support
        self.log_loss = log_loss


class LogisticRegressionAlgorithm(MiningAlgorithm):
    """Multinomial logistic regression by batch gradient descent."""

    SERVICE_NAME = "Repro_Logistic_Regression"
    DISPLAY_NAME = "Logistic Regression (reproduction)"
    ALIASES = ("Microsoft_Logistic_Regression", "Logistic_Regression")
    SERVICE_TYPE_ID = 8
    PREDICTS_DISCRETE = True
    PREDICTS_CONTINUOUS = False
    SUPPORTED_PARAMETERS = {
        "MAX_ITERATIONS": 300,
        "LEARNING_RATE": 0.5,
        "L2": 1e-3,
        "TOLERANCE": 1e-6,
    }

    def __init__(self, parameters=None):
        super().__init__(parameters)
        self.models: Dict[int, _LogisticModel] = {}
        self._plans: Dict[int, List] = {}

    # -- design matrix (shared shape with the linear service) ----------------

    def _plan_for(self, space: AttributeSpace, target: Attribute) -> List:
        plan = []
        offset = 1  # intercept
        for attribute in space.inputs():
            if attribute.index == target.index:
                continue
            width = max(attribute.cardinality, 1) \
                if attribute.is_categorical else 1
            plan.append((attribute, offset, width))
            offset += width
        return plan

    def _design_row(self, plan, width: int,
                    observation: Observation) -> np.ndarray:
        row = np.full(width, np.nan)
        row[0] = 1.0
        for attribute, offset, columns in plan:
            value = observation.values[attribute.index]
            if attribute.is_categorical:
                if value is not None and 0 <= int(value) < columns:
                    row[offset:offset + columns] = 0.0
                    row[offset + int(value)] = 1.0
            elif value is not None:
                row[offset] = value
        return row

    # -- training ---------------------------------------------------------------

    def _train(self, space: AttributeSpace,
               observations: List[Observation]) -> None:
        targets = space.outputs()
        continuous = [t.name for t in targets if not t.is_categorical]
        if continuous:
            raise CapabilityError(
                f"{self.SERVICE_NAME} only predicts categorical "
                f"attributes; {', '.join(continuous)} is continuous")
        if not targets:
            raise TrainError(
                f"model {space.definition.name!r} declares no PREDICT "
                f"column")
        self.models = {}
        for target in targets:
            self._fit_target(space, target, observations)

    def _fit_target(self, space, target, observations) -> None:
        plan = self._plan_for(space, target)
        width = 1 + sum(columns for _, _, columns in plan)
        classes = max(target.cardinality, 1)
        rows, labels, weights = [], [], []
        for observation in observations:
            value = observation.values[target.index]
            if value is None:
                continue
            rows.append(self._design_row(plan, width, observation))
            labels.append(int(value))
            weights.append(observation.effective_weight(target.index))
        if not rows:
            raise TrainError(
                f"no training cases have a value for {target.name!r}")
        design = np.array(rows)
        label_array = np.array(labels)
        case_weights = np.array(weights)

        means = np.nanmean(design, axis=0)
        means = np.where(np.isnan(means), 0.0, means)
        design = np.where(np.isnan(design), means, design)
        # Scale features for stable gradient steps; constant columns
        # (std 0, e.g. a one-hot level present in every row) keep scale 1.
        std = design.std(axis=0)
        scale = np.where(std > 1e-9, std, 1.0)
        scale[0] = 1.0
        design_scaled = design / scale

        one_hot = np.zeros((len(labels), classes))
        one_hot[np.arange(len(labels)), label_array] = 1.0
        total_weight = case_weights.sum()

        weights_matrix = np.zeros((classes, width))
        learning_rate = float(self.param("LEARNING_RATE"))
        l2 = float(self.param("L2"))
        previous_loss = None
        log_loss = 0.0
        for _ in range(int(self.param("MAX_ITERATIONS"))):
            self.note_pass()
            logits = design_scaled @ weights_matrix.T
            logits -= logits.max(axis=1, keepdims=True)
            probabilities = np.exp(logits)
            probabilities /= probabilities.sum(axis=1, keepdims=True)
            log_loss = float(
                -(case_weights *
                  np.log(np.maximum(
                      probabilities[np.arange(len(labels)), label_array],
                      1e-12))).sum() / max(total_weight, 1e-9))
            if previous_loss is not None and \
                    abs(previous_loss - log_loss) < \
                    float(self.param("TOLERANCE")):
                break
            previous_loss = log_loss
            gradient = ((probabilities - one_hot) *
                        case_weights[:, None]).T @ design_scaled
            gradient /= max(total_weight, 1e-9)
            gradient += l2 * weights_matrix
            weights_matrix -= learning_rate * gradient

        # Fold the feature scaling back into the weights.
        self.models[target.index] = _LogisticModel(
            weights_matrix / scale, means, float(total_weight), log_loss)
        self._plans[target.index] = plan

    # -- prediction ----------------------------------------------------------------

    def predict(self, observation: Observation) -> CasePrediction:
        self.require_trained()
        result = CasePrediction()
        for target in self.space.outputs():
            model = self.models[target.index]
            plan = self._plans[target.index]
            width = model.weights.shape[1]
            row = self._design_row(plan, width, observation)
            row = np.where(np.isnan(row), model.feature_means, row)
            logits = model.weights @ row
            logits -= logits.max()
            probabilities = np.exp(logits)
            probabilities /= probabilities.sum()
            distribution = CategoricalDistribution()
            for code, probability in enumerate(probabilities):
                distribution.add(float(code),
                                 float(probability) * model.support)
            result.set(AttributePrediction.from_categorical(target,
                                                            distribution))
        return result

    # -- content -----------------------------------------------------------------

    def content_nodes(self) -> ContentNode:
        self.require_trained()
        root = ContentNode("0", NODE_MODEL, self.space.definition.name,
                           description="Logistic regression model",
                           support=self.space.total_weight,
                           probability=1.0)
        for position, (target_index, model) in enumerate(
                sorted(self.models.items())):
            target = self.space.attributes[target_index]
            rows = []
            for class_code, class_weights in enumerate(model.weights):
                label = target.decode(float(class_code))
                rows.append(DistributionRow(
                    f"{target.name}={label} (intercept)",
                    float(class_weights[0]), model.support, 1.0))
                for attribute, offset, columns in \
                        self._plans[target_index]:
                    for column in range(columns):
                        coefficient = float(class_weights[offset + column])
                        if abs(coefficient) < 1e-9:
                            continue
                        if attribute.is_categorical:
                            name = (f"{target.name}={label} | "
                                    f"{attribute.name}="
                                    f"{attribute.decode(float(column))}")
                        else:
                            name = f"{target.name}={label} | " \
                                   f"{attribute.name}"
                        rows.append(DistributionRow(
                            name, coefficient, model.support, 1.0))
            root.add_child(ContentNode(
                f"0.{position}", NODE_PREDICTABLE, target.name,
                description=f"log loss {model.log_loss:.4f}",
                support=model.support, probability=1.0,
                distribution=rows))
        return root
