"""Weighted distribution statistics shared by the mining algorithms.

Everything here supports *weighted* observations, because OLE DB DM cases may
carry SUPPORT qualifiers (case replication factors) and PROBABILITY
qualifiers (uncertain values) — section 3.2.1 of the paper.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Optional, Tuple


class CategoricalDistribution:
    """Weighted value counts for a categorical attribute."""

    def __init__(self):
        self.counts: Dict[Any, float] = {}
        self.total: float = 0.0

    def add(self, value: Any, weight: float = 1.0) -> None:
        if weight <= 0:
            return
        self.counts[value] = self.counts.get(value, 0.0) + weight
        self.total += weight

    def merge(self, other: "CategoricalDistribution") -> None:
        for value, weight in other.counts.items():
            self.counts[value] = self.counts.get(value, 0.0) + weight
        self.total += other.total

    def probability(self, value: Any, smoothing: float = 0.0,
                    cardinality: int = 0) -> float:
        """P(value), optionally Laplace-smoothed over ``cardinality`` states."""
        denominator = self.total + smoothing * cardinality
        if denominator <= 0:
            return 0.0
        return (self.counts.get(value, 0.0) + smoothing) / denominator

    def most_likely(self) -> Tuple[Optional[Any], float]:
        """(value, probability) of the modal value; (None, 0.0) if empty."""
        if not self.counts or self.total <= 0:
            return None, 0.0
        value = max(self.counts, key=lambda v: (self.counts[v], _tiebreak(v)))
        return value, self.counts[value] / self.total

    def support(self, value: Any) -> float:
        return self.counts.get(value, 0.0)

    def entropy(self) -> float:
        """Shannon entropy in bits."""
        if self.total <= 0:
            return 0.0
        result = 0.0
        for weight in self.counts.values():
            if weight > 0:
                p = weight / self.total
                result -= p * math.log2(p)
        return result

    def gini(self) -> float:
        if self.total <= 0:
            return 0.0
        return 1.0 - sum((w / self.total) ** 2 for w in self.counts.values())

    def sorted_items(self) -> List[Tuple[Any, float]]:
        """(value, weight) pairs, heaviest first, deterministic ties."""
        return sorted(self.counts.items(),
                      key=lambda item: (-item[1], _tiebreak(item[0])))

    def __len__(self) -> int:
        return len(self.counts)

    def copy(self) -> "CategoricalDistribution":
        clone = CategoricalDistribution()
        clone.counts = dict(self.counts)
        clone.total = self.total
        return clone


def _tiebreak(value: Any) -> str:
    return "" if value is None else str(value)


class GaussianStats:
    """Weighted running mean/variance (West's weighted Welford update)."""

    def __init__(self):
        self.sum_weight: float = 0.0
        self.mean: float = 0.0
        self._m2: float = 0.0
        self.minimum: Optional[float] = None
        self.maximum: Optional[float] = None

    def add(self, value: float, weight: float = 1.0) -> None:
        if weight <= 0:
            return
        value = float(value)
        self.sum_weight += weight
        delta = value - self.mean
        self.mean += (weight / self.sum_weight) * delta
        self._m2 += weight * delta * (value - self.mean)
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def variance(self) -> float:
        """Population-style weighted variance."""
        if self.sum_weight <= 0:
            return 0.0
        return max(self._m2 / self.sum_weight, 0.0)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def pdf(self, value: float, floor: float = 1e-6) -> float:
        """Gaussian density with a variance floor for degenerate columns."""
        variance = max(self.variance, floor)
        coefficient = 1.0 / math.sqrt(2.0 * math.pi * variance)
        exponent = -((float(value) - self.mean) ** 2) / (2.0 * variance)
        return coefficient * math.exp(exponent)

    def merge(self, other: "GaussianStats") -> None:
        """Fold another partition's stats in (Chan et al.'s parallel update).

        Algebraically equivalent to replaying the other partition's
        observations, but floating-point round-off may differ from the
        serial order — which is exactly why continuous attributes disable
        partitioned training when bit-identical output is required.
        """
        if other.sum_weight <= 0:
            return
        if self.sum_weight <= 0:
            self.sum_weight = other.sum_weight
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        combined = self.sum_weight + other.sum_weight
        delta = other.mean - self.mean
        self._m2 += other._m2 + (delta * delta) * (
            self.sum_weight * other.sum_weight / combined)
        self.mean += delta * (other.sum_weight / combined)
        self.sum_weight = combined
        if other.minimum is not None and (self.minimum is None
                                          or other.minimum < self.minimum):
            self.minimum = other.minimum
        if other.maximum is not None and (self.maximum is None
                                          or other.maximum > self.maximum):
            self.maximum = other.maximum

    def copy(self) -> "GaussianStats":
        clone = GaussianStats()
        clone.sum_weight = self.sum_weight
        clone.mean = self.mean
        clone._m2 = self._m2
        clone.minimum = self.minimum
        clone.maximum = self.maximum
        return clone


def entropy(probabilities: Iterable[float]) -> float:
    """Shannon entropy (bits) of a probability vector (zeros ignored)."""
    result = 0.0
    for p in probabilities:
        if p > 0:
            result -= p * math.log2(p)
    return result


def log_sum_exp(values: List[float]) -> float:
    """Numerically stable log(sum(exp(v)))."""
    if not values:
        return float("-inf")
    peak = max(values)
    if peak == float("-inf"):
        return peak
    return peak + math.log(sum(math.exp(v - peak) for v in values))
