"""Association-rules mining service (Apriori).

Mines frequent itemsets and rules over the existence attributes of a
PREDICT-able nested table — the paper's market-basket motivation ("the set
of products that the customer is likely to buy").  Prediction returns a
recommendation histogram for the nested table: for each candidate item not
already in the case, the best applicable rule's confidence; PredictHistogram
/ TopCount over that histogram give the usual top-N recommendations.

Reference: Agrawal et al., "Fast discovery of association rules" ([2] in the
paper).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import CapabilityError, TrainError
from repro.algorithms.attributes import Attribute, AttributeSpace, Observation
from repro.algorithms.base import (
    AttributePrediction,
    CasePrediction,
    MiningAlgorithm,
    PredictionBucket,
)
from repro.core.content import (
    NODE_ITEMSET,
    NODE_MODEL,
    NODE_RULE,
    ContentNode,
    DistributionRow,
)


class AssociationRule:
    """left => right with support/confidence/lift (right is one item)."""

    __slots__ = ("left", "right", "support", "confidence", "lift")

    def __init__(self, left: FrozenSet[int], right: int, support: float,
                 confidence: float, lift: float):
        self.left = left
        self.right = right
        self.support = support
        self.confidence = confidence
        self.lift = lift


class AssociationRulesAlgorithm(MiningAlgorithm):
    """Apriori frequent itemsets + confidence-filtered rules."""

    SERVICE_NAME = "Repro_Association_Rules"
    DISPLAY_NAME = "Association Rules (reproduction)"
    ALIASES = ("Microsoft_Association_Rules", "Association_Rules", "Apriori")
    SERVICE_TYPE_ID = 5
    PREDICTS_DISCRETE = True
    PREDICTS_CONTINUOUS = False
    SUPPORTED_PARAMETERS = {
        "MINIMUM_SUPPORT": 0.02,        # fraction of cases (or count if > 1)
        "MINIMUM_PROBABILITY": 0.3,     # rule confidence threshold
        "MAXIMUM_ITEMSET_SIZE": 4,
        "MAXIMUM_RULE_LEFT_SIZE": 3,
    }

    def __init__(self, parameters=None):
        super().__init__(parameters)
        self.items: List[Attribute] = []
        self.itemsets: Dict[FrozenSet[int], float] = {}
        self.rules: List[AssociationRule] = []
        self.case_total = 0.0
        self._table_name: Optional[str] = None

    # -- training -------------------------------------------------------------

    def _train(self, space: AttributeSpace,
               observations: List[Observation]) -> None:
        continuous_targets = [a.name for a in space.outputs()
                              if not a.is_categorical and not a.is_existence]
        if continuous_targets:
            raise CapabilityError(
                f"{self.SERVICE_NAME} cannot predict continuous "
                f"attribute(s): {', '.join(continuous_targets)}")
        tables = [t for t in space.definition.nested_tables() if t.predict] \
            or space.definition.nested_tables()
        if not tables:
            raise TrainError(
                f"{self.SERVICE_NAME} requires a nested TABLE column (the "
                f"basket); model {space.definition.name!r} has none")
        table = tables[0]
        self._table_name = table.name
        self.items = space.existence_attributes(table.name)
        if not self.items:
            raise TrainError(
                f"nested table {table.name!r} produced no item attributes")

        baskets: List[Tuple[FrozenSet[int], float]] = []
        for observation in observations:
            basket = frozenset(
                a.index for a in self.items
                if observation.values[a.index] == 1.0)
            baskets.append((basket, observation.weight))
        self.case_total = sum(w for _, w in baskets)

        threshold = float(self.param("MINIMUM_SUPPORT"))
        if threshold <= 1.0:
            threshold *= self.case_total

        # Apriori level-wise search.
        level: Dict[FrozenSet[int], float] = {}
        for attribute in self.items:
            single = frozenset([attribute.index])
            support = sum(w for basket, w in baskets if attribute.index in
                          basket)
            if support >= threshold:
                level[single] = support
        self.itemsets = dict(level)
        size = 1
        while level and size < int(self.param("MAXIMUM_ITEMSET_SIZE")):
            size += 1
            candidates = self._candidates(level, size)
            level = {}
            for candidate in candidates:
                support = sum(w for basket, w in baskets
                              if candidate <= basket)
                if support >= threshold:
                    level[candidate] = support
            self.itemsets.update(level)

        self._generate_rules()

    @staticmethod
    def _candidates(level: Dict[FrozenSet[int], float],
                    size: int) -> List[FrozenSet[int]]:
        """Join step: merge (size-1)-sets sharing a (size-2)-prefix, then
        prune candidates with an infrequent subset."""
        previous = sorted(level, key=lambda s: sorted(s))
        candidates = set()
        for a, b in itertools.combinations(previous, 2):
            union = a | b
            if len(union) != size:
                continue
            if all(frozenset(subset) in level
                   for subset in itertools.combinations(union, size - 1)):
                candidates.add(union)
        return sorted(candidates, key=lambda s: sorted(s))

    def _generate_rules(self) -> None:
        self.rules = []
        minimum_probability = float(self.param("MINIMUM_PROBABILITY"))
        maximum_left = int(self.param("MAXIMUM_RULE_LEFT_SIZE"))
        for itemset, support in self.itemsets.items():
            if len(itemset) < 2:
                continue
            for right in itemset:
                left = itemset - {right}
                if len(left) > maximum_left:
                    continue
                left_support = self.itemsets.get(left)
                if not left_support:
                    continue
                confidence = support / left_support
                if confidence < minimum_probability:
                    continue
                right_support = self.itemsets.get(frozenset([right]), 0.0)
                lift = (confidence /
                        (right_support / self.case_total)
                        if right_support else 0.0)
                self.rules.append(AssociationRule(
                    left, right, support, confidence, lift))
        self.rules.sort(key=lambda r: (-r.confidence, -r.support,
                                       sorted(r.left), r.right))

    # -- prediction -------------------------------------------------------------

    def predict(self, observation: Observation) -> CasePrediction:
        """Recommendations: best-rule confidence per absent item."""
        self.require_trained()
        result = CasePrediction()
        basket = frozenset(a.index for a in self.items
                           if observation.values[a.index] == 1.0)
        scores: Dict[int, Tuple[float, float]] = {}  # item -> (conf, support)
        for rule in self.rules:
            if rule.right in basket:
                continue
            if rule.left <= basket:
                best = scores.get(rule.right)
                if best is None or rule.confidence > best[0]:
                    scores[rule.right] = (rule.confidence, rule.support)
        # Fall back to item popularity so every item is rankable.
        for attribute in self.items:
            if attribute.index in basket or attribute.index in scores:
                continue
            support = self.itemsets.get(frozenset([attribute.index]))
            if support:
                scores[attribute.index] = (0.0, support)

        # Existence attributes get individual predictions, plus a
        # case-level recommendation histogram used by PredictAssociation.
        recommendation: List[PredictionBucket] = []
        for attribute in self.items:
            if attribute.index in basket:
                present = PredictionBucket(True, 1.0, observation.weight)
                result.set(AttributePrediction(
                    attribute, True, 1.0, observation.weight, None,
                    [present]))
                continue
            confidence, support = scores.get(attribute.index, (0.0, 0.0))
            buckets = [PredictionBucket(True, confidence, support),
                       PredictionBucket(False, 1.0 - confidence, 0.0)]
            result.set(AttributePrediction(
                attribute, confidence >= 0.5, confidence, support, None,
                buckets))
            recommendation.append(PredictionBucket(
                attribute.key_value, confidence, support))
        recommendation.sort(key=lambda b: (-b.probability, -b.support,
                                           str(b.value)))
        result.recommendations = {self._table_name.upper(): recommendation}
        return result

    # -- content ---------------------------------------------------------------

    def content_nodes(self) -> ContentNode:
        self.require_trained()
        root = ContentNode(
            "0", NODE_MODEL, self.space.definition.name,
            description=f"Association model: {len(self.itemsets)} frequent "
                        f"itemsets, {len(self.rules)} rules",
            support=self.case_total, probability=1.0)
        by_index = {a.index: a for a in self.items}
        for position, (itemset, support) in enumerate(
                sorted(self.itemsets.items(),
                       key=lambda kv: (-kv[1], sorted(kv[0])))):
            names = [str(by_index[i].key_value) for i in sorted(itemset)]
            root.add_child(ContentNode(
                f"0.I{position}", NODE_ITEMSET, ", ".join(names),
                support=support,
                probability=support / self.case_total if self.case_total
                else 0.0,
                distribution=[DistributionRow(by_index[i].name,
                                              by_index[i].key_value,
                                              support, 1.0)
                              for i in sorted(itemset)]))
        for position, rule in enumerate(self.rules):
            left = ", ".join(str(by_index[i].key_value)
                             for i in sorted(rule.left))
            right = by_index[rule.right].key_value
            root.add_child(ContentNode(
                f"0.R{position}", NODE_RULE, f"{left} -> {right}",
                description=f"confidence={rule.confidence:.3f}, "
                            f"lift={rule.lift:.3f}",
                support=rule.support, probability=rule.confidence))
        return root

    # -- introspection helpers (used by tests and examples) ---------------------

    def frequent_itemsets(self) -> List[Tuple[Tuple, float]]:
        """(item value tuple, support) pairs, largest support first."""
        by_index = {a.index: a for a in self.items}
        output = []
        for itemset, support in self.itemsets.items():
            values = tuple(sorted(str(by_index[i].key_value)
                                  for i in itemset))
            output.append((values, support))
        output.sort(key=lambda pair: (-pair[1], pair[0]))
        return output

    def rules_as_tuples(self) -> List[Tuple[Tuple, str, float, float]]:
        by_index = {a.index: a for a in self.items}
        return [
            (tuple(sorted(str(by_index[i].key_value) for i in rule.left)),
             str(by_index[rule.right].key_value),
             rule.support, rule.confidence)
            for rule in self.rules]
