"""Decision-tree mining service (classification and regression).

The reference service behind the paper's ``USING [Decision_Trees_101]``
example.  One tree is grown per PREDICT attribute:

* categorical targets: greedy top-down induction maximising entropy gain
  (or Gini, per SCORE_METHOD);
* continuous targets: regression trees maximising weighted variance
  reduction, leaves carrying mean/variance;
* categorical inputs split multiway, continuous inputs split on a binary
  threshold chosen among quantile candidates;
* missing values are routed *fractionally* down every child in proportion
  to the children's weights (CART-style), both in training and prediction —
  this is what lets a PREDICTION JOIN supply only a subset of the input
  columns, as the paper's section 3.3 example does.

Growth is regularised by MINIMUM_SUPPORT, MAXIMUM_DEPTH and a
COMPLEXITY_PENALTY charged per additional child.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.algorithms.attributes import Attribute, AttributeSpace, Observation
from repro.algorithms.base import (
    AttributePrediction,
    CasePrediction,
    MiningAlgorithm,
)
from repro.algorithms.statistics import CategoricalDistribution, GaussianStats
from repro.core.content import (
    NODE_DISTRIBUTION,
    NODE_INTERIOR,
    NODE_MODEL,
    NODE_TREE,
    ContentNode,
    DistributionRow,
)

_MAX_THRESHOLD_CANDIDATES = 32


class _TreeNode:
    """One node of a grown tree."""

    __slots__ = ("distribution", "stats", "split_attribute", "threshold",
                 "children", "child_values", "support", "depth", "condition")

    def __init__(self, support: float, depth: int, condition: str):
        self.distribution: Optional[CategoricalDistribution] = None
        self.stats: Optional[GaussianStats] = None
        self.split_attribute: Optional[Attribute] = None
        self.threshold: Optional[float] = None       # continuous splits
        self.children: List["_TreeNode"] = []
        self.child_values: List[Optional[float]] = []  # categorical splits
        self.support = support
        self.depth = depth
        self.condition = condition  # display text, e.g. "Gender = 'Male'"

    @property
    def is_leaf(self) -> bool:
        return not self.children


class DecisionTreeAlgorithm(MiningAlgorithm):
    """Greedy decision/regression trees with fractional missing-value routing."""

    SERVICE_NAME = "Repro_Decision_Trees"
    DISPLAY_NAME = "Decision Trees (reproduction)"
    ALIASES = ("Microsoft_Decision_Trees", "Decision_Trees_101",
               "Decision_Trees")
    SERVICE_TYPE_ID = 1
    PREDICTS_DISCRETE = True
    PREDICTS_CONTINUOUS = True
    SUPPORTED_PARAMETERS = {
        "MINIMUM_SUPPORT": 10.0,
        "COMPLEXITY_PENALTY": 0.1,
        "MAXIMUM_DEPTH": 16,
        "SCORE_METHOD": "ENTROPY",   # ENTROPY | GINI
    }

    def __init__(self, parameters=None):
        super().__init__(parameters)
        self.trees: Dict[int, _TreeNode] = {}

    # -- training -------------------------------------------------------------

    def _train(self, space: AttributeSpace,
               observations: List[Observation]) -> None:
        self.trees = {}
        outputs = space.outputs() or []
        for target in outputs:
            inputs = [a for a in space.inputs()
                      if a.index != target.index and
                      not self._same_nested_item(a, target)]
            weighted = [(o, o.effective_weight(target.index))
                        for o in observations
                        if o.values[target.index] is not None]
            self.trees[target.index] = self._grow(
                target, inputs, weighted, depth=0, condition="All")

    @staticmethod
    def _same_nested_item(a: Attribute, b: Attribute) -> bool:
        """Existence and its per-item value attribute must not predict
        each other (they are two facets of the same nested row)."""
        return (a.table is not None and b.table is not None and
                a.table is b.table and a.key_value == b.key_value)

    def _grow(self, target: Attribute, inputs: List[Attribute],
              weighted: List[Tuple[Observation, float]], depth: int,
              condition: str) -> _TreeNode:
        node = _TreeNode(sum(w for _, w in weighted), depth, condition)
        self._summarise(node, target, weighted)

        if depth >= int(self.param("MAXIMUM_DEPTH")):
            return node
        if node.support < 2 * float(self.param("MINIMUM_SUPPORT")):
            return node
        if target.is_categorical and node.distribution is not None and \
                len(node.distribution) <= 1:
            return node

        best = self._best_split(target, inputs, weighted, node)
        if best is None:
            return node
        attribute, threshold, partitions, labels = best
        node.split_attribute = attribute
        node.threshold = threshold
        remaining = [a for a in inputs if a.index != attribute.index] \
            if attribute.is_categorical else inputs
        for partition, label, child_value in zip(
                partitions, labels, _child_values(attribute, threshold,
                                                  partitions)):
            child = self._grow(target, remaining, partition, depth + 1, label)
            node.children.append(child)
            node.child_values.append(child_value)
        return node

    def _summarise(self, node: _TreeNode, target: Attribute,
                   weighted: List[Tuple[Observation, float]]) -> None:
        if target.is_categorical:
            distribution = CategoricalDistribution()
            for observation, weight in weighted:
                distribution.add(observation.values[target.index], weight)
            node.distribution = distribution
        else:
            stats = GaussianStats()
            for observation, weight in weighted:
                stats.add(observation.values[target.index], weight)
            node.stats = stats

    def _impurity(self, target: Attribute,
                  weighted: List[Tuple[Observation, float]]) -> float:
        if target.is_categorical:
            distribution = CategoricalDistribution()
            for observation, weight in weighted:
                distribution.add(observation.values[target.index], weight)
            if self.param("SCORE_METHOD").upper() == "GINI":
                return distribution.gini()
            return distribution.entropy()
        stats = GaussianStats()
        for observation, weight in weighted:
            stats.add(observation.values[target.index], weight)
        return stats.variance

    def _best_split(self, target: Attribute, inputs: List[Attribute],
                    weighted: List[Tuple[Observation, float]],
                    node: _TreeNode):
        total = node.support
        if total <= 0:
            return None
        parent_impurity = self._impurity(target, weighted)
        minimum_support = float(self.param("MINIMUM_SUPPORT"))
        penalty = float(self.param("COMPLEXITY_PENALTY"))
        best_gain = 0.0
        best = None

        for attribute in inputs:
            if attribute.is_categorical:
                result = self._categorical_split(attribute, target, weighted,
                                                 minimum_support)
            else:
                result = self._continuous_split(attribute, target, weighted,
                                                minimum_support)
            if result is None:
                continue
            threshold, partitions, labels = result
            known = sum(sum(w for _, w in p) for p in partitions)
            if known <= 0:
                continue
            child_impurity = sum(
                (sum(w for _, w in p) / known) *
                self._impurity(target, p)
                for p in partitions)
            gain = (parent_impurity - child_impurity) * (known / total)
            gain -= penalty * (len(partitions) - 1) / max(total, 1.0)
            if gain > best_gain + 1e-12:
                best_gain = gain
                best = (attribute, threshold,
                        self._route_missing(attribute, weighted, partitions),
                        labels)
        return best

    def _categorical_split(self, attribute, target, weighted,
                           minimum_support):
        buckets: Dict[float, List[Tuple[Observation, float]]] = {}
        for observation, weight in weighted:
            value = observation.values[attribute.index]
            if value is None:
                continue
            buckets.setdefault(value, []).append((observation, weight))
        if len(buckets) < 2:
            return None
        values = sorted(buckets)
        partitions = [buckets[v] for v in values]
        if sum(1 for p in partitions
               if sum(w for _, w in p) >= minimum_support) < 2:
            return None
        labels = [f"{attribute.name} = {attribute.decode(v)!r}"
                  for v in values]
        return None, partitions, labels

    def _continuous_split(self, attribute, target, weighted,
                          minimum_support):
        known = [(observation.values[attribute.index], observation, weight)
                 for observation, weight in weighted
                 if observation.values[attribute.index] is not None]
        if len(known) < 2:
            return None
        known.sort(key=lambda item: item[0])
        distinct = sorted({value for value, _, _ in known})
        if len(distinct) < 2:
            return None
        if len(distinct) > _MAX_THRESHOLD_CANDIDATES:
            step = len(distinct) / _MAX_THRESHOLD_CANDIDATES
            candidates = [distinct[int(i * step)]
                          for i in range(1, _MAX_THRESHOLD_CANDIDATES)]
        else:
            candidates = [(distinct[i] + distinct[i + 1]) / 2.0
                          for i in range(len(distinct) - 1)]

        best_threshold = None
        best_impurity = None
        for threshold in candidates:
            low = [(o, w) for v, o, w in known if v <= threshold]
            high = [(o, w) for v, o, w in known if v > threshold]
            low_weight = sum(w for _, w in low)
            high_weight = sum(w for _, w in high)
            if low_weight < minimum_support or high_weight < minimum_support:
                continue
            total = low_weight + high_weight
            impurity = (low_weight / total * self._impurity(target, low) +
                        high_weight / total * self._impurity(target, high))
            if best_impurity is None or impurity < best_impurity - 1e-12:
                best_impurity = impurity
                best_threshold = threshold
        if best_threshold is None:
            return None
        low = [(o, w) for v, o, w in known if v <= best_threshold]
        high = [(o, w) for v, o, w in known if v > best_threshold]
        labels = [f"{attribute.name} <= {best_threshold:g}",
                  f"{attribute.name} > {best_threshold:g}"]
        return best_threshold, [low, high], labels

    def _route_missing(self, attribute, weighted, partitions):
        """Distribute missing-valued observations across children
        proportionally to child weights."""
        missing = [(o, w) for o, w in weighted
                   if o.values[attribute.index] is None]
        if not missing:
            return partitions
        child_weights = [sum(w for _, w in p) for p in partitions]
        total = sum(child_weights)
        if total <= 0:
            return partitions
        routed = [list(p) for p in partitions]
        for observation, weight in missing:
            for child, child_weight in zip(routed, child_weights):
                share = weight * child_weight / total
                if share > 0:
                    child.append((observation, share))
        return routed

    # -- prediction -----------------------------------------------------------

    def predict(self, observation: Observation) -> CasePrediction:
        self.require_trained()
        result = CasePrediction()
        for target in self.space.outputs():
            tree = self.trees.get(target.index)
            if tree is None:
                result.set(self.marginal_prediction(target))
                continue
            if target.is_categorical:
                merged = CategoricalDistribution()
                self._collect_categorical(tree, observation, 1.0, merged)
                result.set(AttributePrediction.from_categorical(target,
                                                                merged))
            else:
                stats = _WeightedMoments()
                self._collect_gaussian(tree, observation, 1.0, stats)
                result.set(stats.to_prediction(target))
        return result

    def _walk(self, node: _TreeNode, observation: Observation,
              weight: float):
        """Yield (leaf, weight) pairs, splitting on missing values."""
        if node.is_leaf:
            yield node, weight
            return
        attribute = node.split_attribute
        value = observation.values[attribute.index]
        if value is None:
            total = sum(child.support for child in node.children)
            if total <= 0:
                yield node, weight
                return
            for child in node.children:
                share = weight * child.support / total
                if share > 0:
                    yield from self._walk(child, observation, share)
            return
        if node.threshold is not None:
            child = node.children[0] if value <= node.threshold \
                else node.children[1]
            yield from self._walk(child, observation, weight)
            return
        for child, child_value in zip(node.children, node.child_values):
            if child_value == value:
                yield from self._walk(child, observation, weight)
                return
        # Unseen category: fall back to this node's own distribution.
        yield node, weight

    def _collect_categorical(self, tree, observation, weight, merged):
        for leaf, share in self._walk(tree, observation, weight):
            if leaf.distribution is None or leaf.distribution.total <= 0:
                continue
            for value, count in leaf.distribution.counts.items():
                merged.add(value, share * count / leaf.distribution.total)

    def _collect_gaussian(self, tree, observation, weight, stats):
        for leaf, share in self._walk(tree, observation, weight):
            if leaf.stats is None or leaf.stats.sum_weight <= 0:
                continue
            stats.add(leaf.stats.mean, leaf.stats.variance,
                      leaf.stats.sum_weight, share)

    # -- content --------------------------------------------------------------

    def content_nodes(self) -> ContentNode:
        self.require_trained()
        root = ContentNode("0", NODE_MODEL, self.space.definition.name,
                           description=f"Decision tree model "
                                       f"({len(self.trees)} trees)",
                           support=self.space.total_weight, probability=1.0)
        for position, (target_index, tree) in enumerate(
                sorted(self.trees.items())):
            target = self.space.attributes[target_index]
            tree_node = root.add_child(ContentNode(
                f"0.{position}", NODE_TREE, target.name,
                description=f"Tree for predictable attribute {target.name}",
                support=tree.support, probability=1.0))
            self._render(tree, target, tree_node, f"0.{position}", "All")
        return root

    def _render(self, node: _TreeNode, target: Attribute,
                content: ContentNode, prefix: str, path: str) -> None:
        content.distribution = _distribution_rows(node, target)
        for position, child in enumerate(node.children):
            node_id = f"{prefix}.{position}"
            node_type = NODE_DISTRIBUTION if child.is_leaf else NODE_INTERIOR
            child_content = content.add_child(ContentNode(
                node_id, node_type, child.condition,
                description=f"{path} and {child.condition}",
                support=child.support,
                probability=(child.support / node.support
                             if node.support else 0.0)))
            self._render(child, target, child_content, node_id,
                         f"{path} and {child.condition}")

    def tree_for(self, attribute_name: str) -> Optional[_TreeNode]:
        """The grown tree for one predictable attribute (for tests/tools)."""
        self.require_trained()
        attribute = self.space.by_name(attribute_name)
        if attribute is None:
            return None
        return self.trees.get(attribute.index)


class _WeightedMoments:
    """Mixture of leaf Gaussians: combined mean/variance across leaves."""

    def __init__(self):
        self.weight = 0.0
        self.mean_sum = 0.0
        self.second_moment = 0.0
        self.support = 0.0

    def add(self, mean: float, variance: float, support: float,
            share: float) -> None:
        self.weight += share
        self.mean_sum += share * mean
        self.second_moment += share * (variance + mean * mean)
        self.support += share * support

    def to_prediction(self, target: Attribute) -> AttributePrediction:
        from repro.algorithms.base import PredictionBucket
        if self.weight <= 0:
            return AttributePrediction(target, None, None, 0.0, None, [])
        mean = self.mean_sum / self.weight
        variance = max(self.second_moment / self.weight - mean * mean, 0.0)
        bucket = PredictionBucket(mean, 1.0, self.support, variance)
        return AttributePrediction(target, mean, None, self.support,
                                   variance, [bucket])


def _child_values(attribute: Attribute, threshold: Optional[float],
                  partitions) -> List[Optional[float]]:
    """Internal split values aligned with partitions."""
    if threshold is not None:
        return [None, None]  # binary continuous split uses the threshold
    # Categorical: recover each partition's shared category code.
    values = []
    for partition in partitions:
        code = None
        for observation, _ in partition:
            value = observation.values[attribute.index]
            if value is not None:
                code = value
                break
        values.append(code)
    return values


def _distribution_rows(node: _TreeNode, target: Attribute):
    rows = []
    if node.distribution is not None and node.distribution.total > 0:
        for value, weight in node.distribution.sorted_items():
            rows.append(DistributionRow(
                target.name, target.decode(value), weight,
                weight / node.distribution.total))
    elif node.stats is not None and node.stats.sum_weight > 0:
        rows.append(DistributionRow(
            target.name, node.stats.mean, node.stats.sum_weight, 1.0,
            node.stats.variance))
    return rows
