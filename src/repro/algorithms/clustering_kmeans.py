"""K-means clustering mining service (hard-assignment counterpart of EM).

Categorical attributes are one-hot encoded, continuous attributes are
z-scored, and missing entries are imputed with the column mean so distance
stays defined.  Kept alongside the EM service to demonstrate that two
services of the same *capability class* (segmentation) plug into the same
model definition — benchmark X1's point.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import TrainError
from repro.algorithms.attributes import Attribute, AttributeSpace, Observation
from repro.algorithms.base import (
    AttributePrediction,
    CasePrediction,
    MiningAlgorithm,
    PredictionBucket,
)
from repro.algorithms.statistics import CategoricalDistribution, GaussianStats
from repro.core.content import (
    NODE_CLUSTER,
    NODE_MODEL,
    ContentNode,
    DistributionRow,
)


class KMeansAlgorithm(MiningAlgorithm):
    """Lloyd's algorithm over a one-hot / z-scored embedding."""

    SERVICE_NAME = "Repro_KMeans"
    DISPLAY_NAME = "K-Means Clustering (reproduction)"
    ALIASES = ("KMeans", "K_Means")
    SERVICE_TYPE_ID = 4
    PREDICTS_DISCRETE = True
    PREDICTS_CONTINUOUS = True
    SUPPORTED_PARAMETERS = {
        "CLUSTER_COUNT": 8,
        "MAX_ITERATIONS": 100,
        "CLUSTER_SEED": 42,
    }

    def __init__(self, parameters=None):
        super().__init__(parameters)
        self.cluster_count = 0
        self.centroids: Optional[np.ndarray] = None
        self.cluster_support: Optional[np.ndarray] = None
        self._plan = []            # (attribute, offset, width)
        self._feature_count = 0
        self._scale_mean: Optional[np.ndarray] = None
        self._scale_std: Optional[np.ndarray] = None
        self._per_cluster_stats = []  # per cluster: {attr_index: dist/stats}

    # -- embedding ----------------------------------------------------------------

    def _build_plan(self, space: AttributeSpace) -> None:
        self._plan = []
        offset = 0
        for attribute in space.attributes:
            width = max(attribute.cardinality, 1) if attribute.is_categorical \
                else 1
            self._plan.append((attribute, offset, width))
            offset += width
        self._feature_count = offset

    def _embed(self, observations: List[Observation]) -> np.ndarray:
        matrix = np.full((len(observations), self._feature_count), np.nan)
        for row, observation in enumerate(observations):
            for attribute, offset, width in self._plan:
                value = observation.values[attribute.index]
                if attribute.is_categorical:
                    if value is not None and 0 <= int(value) < width:
                        matrix[row, offset:offset + width] = 0.0
                        matrix[row, offset + int(value)] = 1.0
                elif value is not None:
                    matrix[row, offset] = value
        return matrix

    # -- training -------------------------------------------------------------------

    def _train(self, space: AttributeSpace,
               observations: List[Observation]) -> None:
        k = int(self.param("CLUSTER_COUNT"))
        if k < 1:
            raise TrainError("CLUSTER_COUNT must be >= 1")
        k = min(k, len(observations))
        self.cluster_count = k
        self._build_plan(space)
        matrix = self._embed(observations)
        case_weights = np.array([o.weight for o in observations])

        # Impute missing with column means, then z-score.
        column_means = np.nanmean(np.where(np.isnan(matrix), np.nan, matrix),
                                  axis=0)
        column_means = np.where(np.isnan(column_means), 0.0, column_means)
        matrix = np.where(np.isnan(matrix), column_means, matrix)
        std = matrix.std(axis=0)
        std = np.where(std < 1e-9, 1.0, std)
        self._scale_mean = column_means
        self._scale_std = std
        scaled = (matrix - column_means) / std

        rng = np.random.RandomState(int(self.param("CLUSTER_SEED")))
        centroids = scaled[rng.choice(len(scaled), size=k, replace=False)]
        assignment = np.zeros(len(scaled), dtype=np.int64)
        for _ in range(int(self.param("MAX_ITERATIONS"))):
            self.note_pass()
            distances = ((scaled[:, None, :] - centroids[None, :, :]) ** 2) \
                .sum(axis=2)
            new_assignment = distances.argmin(axis=1)
            if (new_assignment == assignment).all() and _ > 0:
                break
            assignment = new_assignment
            for cluster in range(k):
                mask = assignment == cluster
                if mask.any():
                    weights = case_weights[mask]
                    centroids[cluster] = np.average(scaled[mask], axis=0,
                                                    weights=weights)
        self.centroids = centroids
        self.cluster_support = np.array([
            case_weights[assignment == cluster].sum() for cluster in range(k)])

        # Per-cluster raw-value statistics for attribute prediction/content.
        self._per_cluster_stats = []
        for cluster in range(k):
            mask = assignment == cluster
            stats = {}
            for attribute in space.attributes:
                if attribute.is_categorical:
                    distribution = CategoricalDistribution()
                    for row in np.nonzero(mask)[0]:
                        value = observations[row].values[attribute.index]
                        if value is not None:
                            distribution.add(value, case_weights[row])
                    stats[attribute.index] = distribution
                else:
                    gaussian = GaussianStats()
                    for row in np.nonzero(mask)[0]:
                        value = observations[row].values[attribute.index]
                        if value is not None:
                            gaussian.add(value, case_weights[row])
                    stats[attribute.index] = gaussian
            self._per_cluster_stats.append(stats)

    # -- prediction -------------------------------------------------------------------

    def _assign(self, observation: Observation):
        matrix = self._embed([observation])[0]
        matrix = np.where(np.isnan(matrix), self._scale_mean, matrix)
        scaled = (matrix - self._scale_mean) / self._scale_std
        distances = ((self.centroids - scaled) ** 2).sum(axis=1)
        return int(distances.argmin()), distances

    def predict(self, observation: Observation) -> CasePrediction:
        self.require_trained()
        result = CasePrediction()
        cluster, distances = self._assign(observation)
        result.cluster_id = cluster + 1
        result.cluster_distances = [float(d) for d in distances]
        # A soft pseudo-posterior from inverse distances (for UDF parity).
        inverse = 1.0 / (distances + 1e-9)
        result.cluster_probabilities = [float(p) for p in inverse /
                                        inverse.sum()]
        stats = self._per_cluster_stats[cluster]
        for target in self.space.outputs():
            stat = stats[target.index]
            if target.is_categorical:
                if stat.total > 0:
                    result.set(AttributePrediction.from_categorical(target,
                                                                    stat))
                else:
                    result.set(self.marginal_prediction(target))
            else:
                if stat.sum_weight > 0:
                    result.set(AttributePrediction.from_gaussian(target,
                                                                 stat))
                else:
                    result.set(self.marginal_prediction(target))
        return result

    # -- content ---------------------------------------------------------------------

    def content_nodes(self) -> ContentNode:
        self.require_trained()
        total = float(self.cluster_support.sum()) or 1.0
        root = ContentNode("0", NODE_MODEL, self.space.definition.name,
                           description=f"K-means model "
                                       f"({self.cluster_count} clusters)",
                           support=total, probability=1.0)
        for cluster in range(self.cluster_count):
            rows = []
            for attribute in self.space.attributes:
                stat = self._per_cluster_stats[cluster][attribute.index]
                if attribute.is_categorical:
                    for value, weight in stat.sorted_items()[:5]:
                        rows.append(DistributionRow(
                            attribute.name, attribute.decode(value), weight,
                            weight / stat.total if stat.total else 0.0))
                elif stat.sum_weight > 0:
                    rows.append(DistributionRow(
                        attribute.name, stat.mean, stat.sum_weight, 1.0,
                        stat.variance))
            support = float(self.cluster_support[cluster])
            root.add_child(ContentNode(
                f"0.{cluster}", NODE_CLUSTER, f"Cluster {cluster + 1}",
                description=f"Cluster {cluster + 1} centroid",
                support=support, probability=support / total,
                distribution=rows))
        return root
