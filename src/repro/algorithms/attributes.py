"""The attribute space: the case representation every algorithm consumes.

The paper's pluggability story rests on giving any algorithm the same view of
a case.  ``AttributeSpace`` compiles a model's column tree into a flat list of
:class:`Attribute` and encodes each :class:`MappedCase` into an
:class:`Observation` (a value vector plus weights):

* scalar ATTRIBUTE/RELATION columns become categorical or continuous
  attributes (DISCRETIZED columns are bucketed by the fitted discretizer;
  MODEL_EXISTENCE_ONLY columns become present/absent booleans);
* each frequent key value of a nested table becomes an *existence* attribute
  ("does this case contain TV?") — the paper's "truth table" reading of a
  model, where a case is characterised by which nested rows it contains;
* non-key CONTINUOUS columns of a nested table become per-item value
  attributes ("Quantity of TV"), missing when the item is absent;
* PROBABILITY qualifiers become per-attribute observation confidences and
  SUPPORT qualifiers become case weights (section 3.2.1).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.errors import TrainError
from repro.core.bindings import MappedCase
from repro.core.columns import (
    AttributeType,
    ContentRole,
    ModelColumn,
    ModelDefinition,
)
from repro.algorithms.discretization import Discretizer, fit_discretizer
from repro.algorithms.statistics import CategoricalDistribution, GaussianStats

CATEGORICAL = "categorical"
CONTINUOUS = "continuous"

DEFAULT_MAXIMUM_STATES = 100
DEFAULT_MAXIMUM_ITEMS = 500


class Attribute:
    """One dimension of the attribute space."""

    def __init__(self, index: int, name: str, kind: str,
                 is_input: bool, is_output: bool,
                 column: Optional[ModelColumn] = None,
                 table: Optional[ModelColumn] = None,
                 key_value: Any = None,
                 value_column: Optional[ModelColumn] = None,
                 categories: Optional[List[Any]] = None,
                 discretizer: Optional[Discretizer] = None,
                 is_existence: bool = False):
        self.index = index
        self.name = name
        self.kind = kind
        self.is_input = is_input
        self.is_output = is_output
        self.column = column          # scalar model column (if any)
        self.table = table            # owning nested table (if any)
        self.key_value = key_value    # nested item value for existence attrs
        self.value_column = value_column  # nested value column, if per-item
        self.categories = categories or []
        self._category_index = {_norm(v): i
                                for i, v in enumerate(self.categories)}
        self.discretizer = discretizer
        self.is_existence = is_existence

    @property
    def is_categorical(self) -> bool:
        return self.kind == CATEGORICAL

    @property
    def cardinality(self) -> int:
        return len(self.categories) if self.is_categorical else 0

    def encode(self, value: Any) -> Optional[float]:
        """Raw value -> internal representation (None = missing)."""
        if value is None:
            return None
        if self.discretizer is not None:
            return self.discretizer.bucket_of(float(value))
        if self.is_categorical:
            return self._category_index.get(_norm(value))
        return float(value)

    def decode(self, internal: Optional[float]) -> Any:
        """Internal representation -> display value."""
        if internal is None:
            return None
        if self.discretizer is not None:
            return self.discretizer.label(int(internal))
        if self.is_categorical:
            index = int(internal)
            if 0 <= index < len(self.categories):
                return self.categories[index]
            return None
        return internal

    def __repr__(self) -> str:
        flags = []
        if self.is_input:
            flags.append("input")
        if self.is_output:
            flags.append("output")
        return f"Attribute({self.index}, {self.name!r}, {self.kind}, {'/'.join(flags)})"


def _norm(value: Any) -> Any:
    """Category identity: case-insensitive for strings, numeric-widened."""
    if isinstance(value, str):
        return value.upper()
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return float(value)
    return value


class Observation:
    """One encoded case: value vector, case weight, optional confidences.

    ``sequences`` holds, per nested table with a SEQUENCE_TIME column, the
    case's state values in time order (used by the sequence service).
    """

    __slots__ = ("values", "weight", "confidences", "case_key", "sequences")

    def __init__(self, values: List[Optional[float]], weight: float = 1.0,
                 confidences: Optional[Dict[int, float]] = None,
                 case_key: Any = None,
                 sequences: Optional[Dict[str, List[Any]]] = None):
        self.values = values
        self.weight = weight
        self.confidences = confidences or {}
        self.case_key = case_key
        self.sequences = sequences or {}

    def confidence(self, index: int) -> float:
        return self.confidences.get(index, 1.0)

    def effective_weight(self, index: int) -> float:
        """Weight of this observation for one attribute (weight x confidence)."""
        return self.weight * self.confidences.get(index, 1.0)


class AttributeSpace:
    """Fitted attribute dictionary + encoder for one mining model."""

    def __init__(self, definition: ModelDefinition):
        self.definition = definition
        self.attributes: List[Attribute] = []
        self.case_count = 0
        self.total_weight = 0.0
        self.marginals: List[Any] = []  # CategoricalDistribution | GaussianStats
        self.relations: Dict[Tuple[str, str], Dict[Any, Any]] = {}
        self._by_name: Dict[str, Attribute] = {}
        maximum_states = definition.parameters.get("MAXIMUM_STATES",
                                                   DEFAULT_MAXIMUM_STATES)
        maximum_items = definition.parameters.get("MAXIMUM_ITEMS",
                                                  DEFAULT_MAXIMUM_ITEMS)
        self.maximum_states = int(maximum_states)
        self.maximum_items = int(maximum_items)

    # -- fitting --------------------------------------------------------------

    def fit(self, cases: List[MappedCase]) -> None:
        """Build the attribute dictionary and marginals from training cases."""
        self.fit_schema(cases)
        self._fit_marginals(cases)

    def fit_schema(self, cases: List[MappedCase]) -> None:
        """The dictionary pass only: attributes, relations, discretizers.

        After this the space can :meth:`encode` cases, but marginals are
        unfitted — partitioned training computes them per partition with
        :meth:`partial_marginals` and folds them back in order through
        :meth:`merge_marginal_partials`.
        """
        if not cases:
            raise TrainError(
                f"model {self.definition.name!r}: the training caseset is "
                f"empty")
        self.case_count = len(cases)
        scalar_columns = [
            c for c in self.definition.scalar_attributes()]
        observed: Dict[str, CategoricalDistribution] = {}
        numeric_values: Dict[str, List[float]] = {}
        for column in scalar_columns:
            observed[column.name.upper()] = CategoricalDistribution()
            numeric_values[column.name.upper()] = []

        item_counts: Dict[str, CategoricalDistribution] = {
            t.name.upper(): CategoricalDistribution()
            for t in self.definition.nested_tables()}
        relation_maps: Dict[Tuple[str, str], Dict[Any, Any]] = {}

        for case in cases:
            weight = case.weight()
            self.total_weight += weight
            for column in scalar_columns:
                key = column.name.upper()
                value = case.scalars.get(key)
                if column.model_existence_only:
                    observed[key].add(value is not None, weight)
                    continue
                if value is None:
                    continue
                if column.attribute_type in (AttributeType.CONTINUOUS,
                                             AttributeType.DISCRETIZED):
                    numeric_values[key].append(float(value))
                else:
                    observed[key].add(value, weight)
            for table in self.definition.nested_tables():
                key_column = table.key_column()
                table_key = table.name.upper()
                for row in case.tables.get(table_key, []):
                    item = row.get(key_column.name.upper())
                    if item is None:
                        continue
                    item_counts[table_key].add(item, weight)
                    for nested in table.nested_columns:
                        if nested.role is ContentRole.RELATION and \
                                nested.related_to and \
                                nested.related_to.upper() == \
                                key_column.name.upper():
                            relation_value = row.get(nested.name.upper())
                            if relation_value is not None:
                                relation_maps.setdefault(
                                    (table_key, nested.name.upper()), {})[
                                    _norm(item)] = relation_value

        self.relations = relation_maps
        self._build_attributes(scalar_columns, observed, numeric_values,
                               item_counts)

    def _build_attributes(self, scalar_columns, observed, numeric_values,
                          item_counts) -> None:
        for column in scalar_columns:
            key = column.name.upper()
            if column.model_existence_only:
                self._add(Attribute(
                    len(self.attributes), column.name, CATEGORICAL,
                    is_input=column.is_input, is_output=column.is_output,
                    column=column, categories=[False, True]))
                continue
            if column.attribute_type is AttributeType.DISCRETIZED:
                if not numeric_values[key]:
                    raise TrainError(
                        f"column {column.name!r} has no non-NULL training "
                        f"values to discretize")
                discretizer = fit_discretizer(
                    numeric_values[key], column.discretization_method,
                    column.discretization_buckets)
                categories = [discretizer.label(b)
                              for b in range(discretizer.bucket_count)]
                self._add(Attribute(
                    len(self.attributes), column.name, CATEGORICAL,
                    is_input=column.is_input, is_output=column.is_output,
                    column=column, categories=categories,
                    discretizer=discretizer))
            elif column.attribute_type is AttributeType.CONTINUOUS:
                self._add(Attribute(
                    len(self.attributes), column.name, CONTINUOUS,
                    is_input=column.is_input, is_output=column.is_output,
                    column=column))
            else:
                states = [value for value, _ in
                          observed[key].sorted_items()[:self.maximum_states]]
                # Deterministic category order: by descending frequency.
                self._add(Attribute(
                    len(self.attributes), column.name, CATEGORICAL,
                    is_input=column.is_input, is_output=column.is_output,
                    column=column, categories=states))

        for table in self.definition.nested_tables():
            table_key = table.name.upper()
            key_column = table.key_column()
            items = [value for value, _ in
                     item_counts[table_key].sorted_items()
                     [:self.maximum_items]]
            value_columns = [
                c for c in table.nested_columns
                if c.role is ContentRole.ATTRIBUTE and
                c.attribute_type is AttributeType.CONTINUOUS]
            for item in items:
                self._add(Attribute(
                    len(self.attributes), f"{table.name}({item})",
                    CATEGORICAL, is_input=table.is_input,
                    is_output=table.predict, table=table,
                    key_value=item, categories=[False, True],
                    is_existence=True))
                for value_column in value_columns:
                    self._add(Attribute(
                        len(self.attributes),
                        f"{table.name}({item}).{value_column.name}",
                        CONTINUOUS,
                        is_input=table.is_input and value_column.is_input,
                        is_output=table.predict and value_column.predict,
                        table=table, key_value=item,
                        value_column=value_column))
            setattr(table, "_fitted_key_column", key_column)

        if not self.attributes:
            raise TrainError(
                f"model {self.definition.name!r} has no attributes to mine "
                f"(every column is a KEY or qualifier)")

    def _fit_marginals(self, cases: List[MappedCase]) -> None:
        self.marginals = self.partial_marginals(self.encode_many(cases))

    def marginals_from_observations(
            self, observations: List[Observation]) -> None:
        """Fit marginals from already-encoded observations (the serial
        single-encode path: encode once, feed both marginals and the
        algorithm)."""
        self.marginals = self.partial_marginals(observations)

    def partial_marginals(self, observations) -> List[Any]:
        """Per-attribute marginal statistics of one observation partition."""
        partials: List[Any] = []
        for attribute in self.attributes:
            if attribute.is_categorical:
                partials.append(CategoricalDistribution())
            else:
                partials.append(GaussianStats())
        for observation in observations:
            for attribute, marginal in zip(self.attributes, partials):
                value = observation.values[attribute.index]
                if value is None:
                    continue
                weight = observation.effective_weight(attribute.index)
                marginal.add(value, weight)
        return partials

    def merge_marginal_partials(self, partial_lists) -> None:
        """Install marginals by merging partition partials in order."""
        merged = None
        for partials in partial_lists:
            if merged is None:
                merged = partials
                continue
            for mine, other in zip(merged, partials):
                mine.merge(other)
        self.marginals = merged if merged is not None else []

    def _add(self, attribute: Attribute) -> None:
        self.attributes.append(attribute)
        self._by_name[attribute.name.upper()] = attribute

    # -- lookup ---------------------------------------------------------------

    def by_name(self, name: str) -> Optional[Attribute]:
        return self._by_name.get(name.upper())

    def for_column(self, column_name: str) -> Optional[Attribute]:
        """The attribute backing a top-level scalar model column."""
        return self._by_name.get(column_name.upper())

    def inputs(self) -> List[Attribute]:
        return [a for a in self.attributes if a.is_input]

    def outputs(self) -> List[Attribute]:
        return [a for a in self.attributes if a.is_output]

    def existence_attributes(self, table_name: str) -> List[Attribute]:
        return [a for a in self.attributes
                if a.is_existence and a.table is not None and
                a.table.name.upper() == table_name.upper()]

    def covers(self, case: MappedCase) -> bool:
        """True if the case encodes without losing information.

        Used by the incremental-maintenance path: a case with an unseen
        category, an unseen nested item, or a value outside a discretizer's
        fitted range requires a full refit of the attribute space.
        """
        for column in self.definition.scalar_attributes():
            value = case.scalars.get(column.name.upper())
            if value is None or column.model_existence_only:
                continue
            attribute = self.by_name(column.name)
            if attribute is None:
                return False
            if attribute.discretizer is not None:
                if not (attribute.discretizer.minimum <= float(value) <=
                        attribute.discretizer.maximum):
                    return False
            elif attribute.is_categorical and \
                    attribute.encode(value) is None:
                return False
        for table in self.definition.nested_tables():
            key_name = table.key_column().name.upper()
            known = {_norm(a.key_value)
                     for a in self.existence_attributes(table.name)}
            for row in case.tables.get(table.name.upper(), []):
                item = row.get(key_name)
                if item is not None and _norm(item) not in known:
                    return False
        return True

    def absorb(self, observations: List["Observation"],
               case_count: int) -> None:
        """Update marginals/counters for incrementally-absorbed cases."""
        self.case_count += case_count
        for observation in observations:
            self.total_weight += observation.weight
            for attribute, marginal in zip(self.attributes, self.marginals):
                value = observation.values[attribute.index]
                if value is not None:
                    marginal.add(
                        value, observation.effective_weight(attribute.index))

    # -- encoding -------------------------------------------------------------

    def encode(self, case: MappedCase) -> Observation:
        values: List[Optional[float]] = [None] * len(self.attributes)
        confidences: Dict[int, float] = {}
        case_key = None
        key_column = self.definition.case_key()
        if key_column is not None:
            case_key = case.scalars.get(key_column.name.upper())

        nested_index: Dict[str, Dict[Any, Dict[str, Any]]] = {}
        for table in self.definition.nested_tables():
            table_key = table.name.upper()
            key_name = table.key_column().name.upper()
            rows = {}
            for row in case.tables.get(table_key, []):
                item = row.get(key_name)
                if item is not None:
                    rows[_norm(item)] = row
            nested_index[table_key] = rows

        for attribute in self.attributes:
            if attribute.table is not None:
                table_key = attribute.table.name.upper()
                row = nested_index[table_key].get(_norm(attribute.key_value))
                if attribute.is_existence:
                    values[attribute.index] = 1.0 if row is not None else 0.0
                    if row is not None:
                        qualifier = row.get("__QUALIFIERS__", {})
                        key_name = attribute.table.key_column().name.upper()
                        probability = qualifier.get(key_name, {}).get(
                            "PROBABILITY")
                        if probability is not None:
                            confidences[attribute.index] = float(probability)
                elif row is not None:
                    value = row.get(attribute.value_column.name.upper())
                    if value is not None:
                        values[attribute.index] = float(value)
                continue
            column = attribute.column
            raw = case.scalars.get(column.name.upper())
            if column.model_existence_only:
                values[attribute.index] = attribute.encode(raw is not None)
            else:
                values[attribute.index] = attribute.encode(raw)
            qualifiers = case.qualifiers.get(column.name.upper(), {})
            probability = qualifiers.get("PROBABILITY")
            if probability is not None:
                confidences[attribute.index] = float(probability)

        sequences: Dict[str, List[Any]] = {}
        for table in self.definition.nested_tables():
            time_column = next(
                (c for c in table.nested_columns
                 if c.sequence_time or
                 c.attribute_type is AttributeType.SEQUENCE_TIME), None)
            if time_column is None:
                continue
            state_column = self.sequence_state_column(table)
            rows = case.tables.get(table.name.upper(), [])
            ordered = sorted(
                (row for row in rows
                 if row.get(time_column.name.upper()) is not None),
                key=lambda row: row[time_column.name.upper()])
            sequences[table.name.upper()] = [
                row.get(state_column.name.upper()) for row in ordered]

        return Observation(values, weight=case.weight(),
                           confidences=confidences, case_key=case_key,
                           sequences=sequences)

    @staticmethod
    def sequence_state_column(table: ModelColumn) -> ModelColumn:
        """The column whose values form the sequence states.

        The first non-key DISCRETE attribute if one exists, otherwise the
        nested table's KEY (market-basket-style sequences of items).
        """
        for column in table.nested_columns:
            if column.role is ContentRole.ATTRIBUTE and \
                    column.attribute_type is AttributeType.DISCRETE:
                return column
        return table.key_column()

    def encode_many(self, cases: Iterable[MappedCase]) -> List[Observation]:
        return [self.encode(case) for case in cases]
