"""Linear (multi-)regression mining service.

The paper's section 3.3 mentions "multi-regression DMM" content as one of
the model families a provider may expose.  Continuous targets are fitted by
ordinary least squares over a design matrix of continuous inputs plus
one-hot-encoded categorical inputs (numpy ``lstsq``); missing design entries
are mean-imputed with means learned at training time.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.errors import CapabilityError, TrainError
from repro.algorithms.attributes import Attribute, AttributeSpace, Observation
from repro.algorithms.base import (
    AttributePrediction,
    CasePrediction,
    MiningAlgorithm,
    PredictionBucket,
)
from repro.core.content import (
    NODE_MODEL,
    NODE_REGRESSION_ROOT,
    ContentNode,
    DistributionRow,
)


class _RegressionModel:
    """Per-target fitted coefficients and residual statistics."""

    __slots__ = ("coefficients", "residual_variance", "support", "r_squared")

    def __init__(self, coefficients: np.ndarray, residual_variance: float,
                 support: float, r_squared: float):
        self.coefficients = coefficients
        self.residual_variance = residual_variance
        self.support = support
        self.r_squared = r_squared


class LinearRegressionAlgorithm(MiningAlgorithm):
    """Ordinary least squares over one-hot/continuous features."""

    SERVICE_NAME = "Repro_Linear_Regression"
    DISPLAY_NAME = "Linear Regression (reproduction)"
    ALIASES = ("Microsoft_Linear_Regression", "Linear_Regression")
    SERVICE_TYPE_ID = 6
    PREDICTS_DISCRETE = False
    PREDICTS_CONTINUOUS = True
    SUPPORTED_PARAMETERS = {
        "RIDGE": 1e-6,   # Tikhonov stabiliser on the normal equations
    }

    def __init__(self, parameters=None):
        super().__init__(parameters)
        self.models: Dict[int, _RegressionModel] = {}
        self._plans: Dict[int, List] = {}   # target -> (attr, offset, width)
        self._feature_means: Dict[int, np.ndarray] = {}

    # -- design matrix ----------------------------------------------------------

    def _plan_for(self, space: AttributeSpace,
                  target: Attribute) -> List:
        plan = []
        offset = 1  # column 0 is the intercept
        for attribute in space.inputs():
            if attribute.index == target.index:
                continue
            width = max(attribute.cardinality, 1) \
                if attribute.is_categorical else 1
            plan.append((attribute, offset, width))
            offset += width
        return plan

    def _design_row(self, plan, width: int,
                    observation: Observation) -> np.ndarray:
        row = np.full(width, np.nan)
        row[0] = 1.0
        for attribute, offset, columns in plan:
            value = observation.values[attribute.index]
            if attribute.is_categorical:
                if value is not None and 0 <= int(value) < columns:
                    row[offset:offset + columns] = 0.0
                    row[offset + int(value)] = 1.0
            elif value is not None:
                row[offset] = value
        return row

    # -- training ----------------------------------------------------------------

    def _train(self, space: AttributeSpace,
               observations: List[Observation]) -> None:
        targets = space.outputs()
        discrete = [t.name for t in targets if t.is_categorical]
        if discrete:
            raise CapabilityError(
                f"{self.SERVICE_NAME} only predicts CONTINUOUS attributes; "
                f"{', '.join(discrete)} is categorical")
        if not targets:
            raise TrainError(
                f"model {space.definition.name!r} declares no PREDICT "
                f"column")
        self.models = {}
        for target in targets:
            plan = self._plan_for(space, target)
            width = 1 + sum(columns for _, _, columns in plan)
            rows = []
            y = []
            weights = []
            for observation in observations:
                value = observation.values[target.index]
                if value is None:
                    continue
                rows.append(self._design_row(plan, width, observation))
                y.append(value)
                weights.append(observation.effective_weight(target.index))
            if not rows:
                raise TrainError(
                    f"no training cases have a value for {target.name!r}")
            design = np.array(rows)
            target_values = np.array(y)
            case_weights = np.array(weights)

            means = np.nanmean(design, axis=0)
            means = np.where(np.isnan(means), 0.0, means)
            design = np.where(np.isnan(design), means, design)
            self._feature_means[target.index] = means

            sqrt_weights = np.sqrt(case_weights)
            a = design * sqrt_weights[:, None]
            b = target_values * sqrt_weights
            ridge = float(self.param("RIDGE"))
            gram = a.T @ a + ridge * np.eye(width)
            coefficients = np.linalg.solve(gram, a.T @ b)

            predictions = design @ coefficients
            residuals = target_values - predictions
            total_weight = case_weights.sum()
            residual_variance = float(
                (case_weights * residuals ** 2).sum() / max(total_weight, 1e-9))
            mean_y = float((case_weights * target_values).sum() /
                           max(total_weight, 1e-9))
            total_variance = float(
                (case_weights * (target_values - mean_y) ** 2).sum() /
                max(total_weight, 1e-9))
            r_squared = 1.0 - residual_variance / total_variance \
                if total_variance > 0 else 0.0
            self.models[target.index] = _RegressionModel(
                coefficients, residual_variance, float(total_weight),
                r_squared)
            self._plans[target.index] = plan

    # -- prediction ---------------------------------------------------------------

    def predict(self, observation: Observation) -> CasePrediction:
        self.require_trained()
        result = CasePrediction()
        for target in self.space.outputs():
            model = self.models[target.index]
            plan = self._plans[target.index]
            width = len(model.coefficients)
            row = self._design_row(plan, width, observation)
            means = self._feature_means[target.index]
            row = np.where(np.isnan(row), means, row)
            estimate = float(row @ model.coefficients)
            bucket = PredictionBucket(estimate, 1.0, model.support,
                                      model.residual_variance)
            result.set(AttributePrediction(
                target, estimate, None, model.support,
                model.residual_variance, [bucket]))
        return result

    # -- content -----------------------------------------------------------------

    def content_nodes(self) -> ContentNode:
        self.require_trained()
        root = ContentNode("0", NODE_MODEL, self.space.definition.name,
                           description="Linear regression model",
                           support=self.space.total_weight, probability=1.0)
        for position, (target_index, model) in enumerate(
                sorted(self.models.items())):
            target = self.space.attributes[target_index]
            rows = [DistributionRow("(intercept)",
                                    float(model.coefficients[0]),
                                    model.support, 1.0)]
            for attribute, offset, columns in self._plans[target_index]:
                for column in range(columns):
                    coefficient = float(model.coefficients[offset + column])
                    if attribute.is_categorical:
                        label = (f"{attribute.name}="
                                 f"{attribute.decode(float(column))}")
                    else:
                        label = attribute.name
                    rows.append(DistributionRow(label, coefficient,
                                                model.support, 1.0))
            root.add_child(ContentNode(
                f"0.{position}", NODE_REGRESSION_ROOT, target.name,
                description=f"R^2={model.r_squared:.4f}, residual "
                            f"variance={model.residual_variance:.4f}",
                support=model.support, probability=1.0,
                distribution=rows))
        return root
