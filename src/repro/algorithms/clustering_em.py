"""EM (mixture-model) clustering mining service.

A segmentation service in the paper's sense ("the supported capabilities,
e.g. prediction, segmentation, ...").  Each cluster is a product
distribution: Gaussian per continuous attribute, multinomial per categorical
attribute; missing values drop out of the likelihood.  Because every cluster
carries a full distribution over every attribute, the model can also
*predict* any PREDICT column by mixing per-cluster distributions with the
case's cluster posterior — so segmentation models participate in PREDICTION
JOIN like any other model.

The E/M steps are vectorised with numpy; initialisation is deterministic
given CLUSTER_SEED.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.errors import TrainError
from repro.algorithms.attributes import Attribute, AttributeSpace, Observation
from repro.algorithms.base import (
    AttributePrediction,
    CasePrediction,
    MiningAlgorithm,
    PredictionBucket,
)
from repro.algorithms.statistics import CategoricalDistribution
from repro.core.content import (
    NODE_CLUSTER,
    NODE_MODEL,
    ContentNode,
    DistributionRow,
)

_VARIANCE_FLOOR = 1e-4
_LOG_FLOOR = 1e-12


def _logsumexp_rows(matrix: np.ndarray) -> np.ndarray:
    """Row-wise log(sum(exp(.))) with the usual max-shift stabilisation."""
    peak = matrix.max(axis=1)
    return peak + np.log(np.exp(matrix - peak[:, None]).sum(axis=1))


class EMClusteringAlgorithm(MiningAlgorithm):
    """Mixture-model clustering with per-attribute product distributions."""

    SERVICE_NAME = "Repro_Clustering"
    DISPLAY_NAME = "EM Clustering (reproduction)"
    ALIASES = ("Microsoft_Clustering", "Clustering", "EM_Clustering")
    SERVICE_TYPE_ID = 3
    PREDICTS_DISCRETE = True
    PREDICTS_CONTINUOUS = True
    SUPPORTED_PARAMETERS = {
        "CLUSTER_COUNT": 8,
        "MAX_ITERATIONS": 50,
        "CLUSTER_SEED": 42,
        "STOPPING_TOLERANCE": 1e-4,
    }

    def __init__(self, parameters=None):
        super().__init__(parameters)
        self.cluster_count = 0
        self.weights: Optional[np.ndarray] = None          # (K,)
        self.cluster_support: Optional[np.ndarray] = None  # (K,)
        self.means = None       # (K, Dc)
        self.variances = None   # (K, Dc)
        self.categorical = {}   # attr position -> (K, cardinality) probs
        self._continuous: List[Attribute] = []
        self._categorical: List[Attribute] = []
        self.log_likelihood_trace: List[float] = []

    # -- encoding to matrices ---------------------------------------------------

    def _matrices(self, observations: List[Observation]):
        n = len(observations)
        x = np.full((n, len(self._continuous)), np.nan)
        codes = np.full((n, len(self._categorical)), -1, dtype=np.int64)
        case_weights = np.ones(n)
        for row, observation in enumerate(observations):
            case_weights[row] = observation.weight
            for position, attribute in enumerate(self._continuous):
                value = observation.values[attribute.index]
                if value is not None:
                    x[row, position] = value
            for position, attribute in enumerate(self._categorical):
                value = observation.values[attribute.index]
                if value is not None:
                    codes[row, position] = int(value)
        return x, codes, case_weights

    # -- training ---------------------------------------------------------------

    def _train(self, space: AttributeSpace,
               observations: List[Observation]) -> None:
        self._continuous = [a for a in space.attributes
                            if not a.is_categorical]
        self._categorical = [a for a in space.attributes if a.is_categorical]
        k = int(self.param("CLUSTER_COUNT"))
        if k < 1:
            raise TrainError("CLUSTER_COUNT must be >= 1")
        k = min(k, len(observations))
        self.cluster_count = k
        x, codes, case_weights = self._matrices(observations)
        n = len(observations)
        rng = np.random.RandomState(int(self.param("CLUSTER_SEED")))

        # Parameter initialisation from k distinct seed cases (k-means
        # style) breaks the symmetry a uniform responsibility init gets
        # stuck in: each cluster starts centred on a real case.
        self._init_parameters(x, codes, case_weights, rng)
        self.log_likelihood_trace = []
        previous = None
        responsibilities = None
        for _ in range(int(self.param("MAX_ITERATIONS"))):
            self.note_pass()
            if responsibilities is not None:
                self._m_step(x, codes, case_weights, responsibilities)
            log_density = self._log_density(x, codes)
            log_norm = _logsumexp_rows(log_density)
            responsibilities = np.exp(log_density - log_norm[:, None])
            likelihood = float(np.sum(case_weights * log_norm))
            self.log_likelihood_trace.append(likelihood)
            if previous is not None and \
                    abs(likelihood - previous) < \
                    float(self.param("STOPPING_TOLERANCE")) * max(n, 1):
                break
            previous = likelihood
        if responsibilities is not None:
            self._m_step(x, codes, case_weights, responsibilities)
            self.cluster_support = (responsibilities *
                                    case_weights[:, None]).sum(axis=0)

    def _init_parameters(self, x, codes, case_weights, rng) -> None:
        """Seed each cluster on one random case (global spread elsewhere)."""
        k = self.cluster_count
        n = max(x.shape[0], codes.shape[0])
        seeds = rng.choice(n, size=k, replace=False)
        self.weights = np.full(k, 1.0 / k)
        self.cluster_support = np.full(k, case_weights.sum() / k)
        if self._continuous:
            known = ~np.isnan(x)
            filled = np.where(known, x, 0.0)
            counts = np.maximum(known.sum(axis=0), 1)
            global_mean = filled.sum(axis=0) / counts
            centred = np.where(known, x - global_mean, 0.0)
            global_var = np.maximum(
                (centred ** 2).sum(axis=0) / counts, _VARIANCE_FLOOR)
            means = np.tile(global_mean, (k, 1))
            for cluster, seed in enumerate(seeds):
                row = x[seed]
                means[cluster] = np.where(np.isnan(row), global_mean, row)
            self.means = means
            self.variances = np.tile(global_var, (k, 1))
        self.categorical = {}
        for position, attribute in enumerate(self._categorical):
            cardinality = max(attribute.cardinality, 1)
            probs = np.full((k, cardinality), 1.0 / cardinality)
            for cluster, seed in enumerate(seeds):
                code = codes[seed, position]
                if code >= 0:
                    probs[cluster] *= 0.5
                    probs[cluster, code] += 0.5
            self.categorical[position] = probs

    def _m_step(self, x, codes, case_weights, responsibilities) -> None:
        weighted = responsibilities * case_weights[:, None]  # (n, K)
        cluster_weight = weighted.sum(axis=0)                # (K,)
        total = cluster_weight.sum()
        self.weights = np.maximum(cluster_weight / max(total, _LOG_FLOOR),
                                  _LOG_FLOOR)

        if self._continuous:
            known = ~np.isnan(x)                     # (n, Dc)
            filled = np.where(known, x, 0.0)
            # Per cluster/dimension effective weights over known entries.
            effective = weighted.T @ known           # (K, Dc)
            effective = np.maximum(effective, _LOG_FLOOR)
            means = (weighted.T @ filled) / effective
            square = (weighted.T @ (filled ** 2)) / effective
            variances = np.maximum(square - means ** 2, _VARIANCE_FLOOR)
            self.means = means
            self.variances = variances

        self.categorical = {}
        for position, attribute in enumerate(self._categorical):
            cardinality = max(attribute.cardinality, 1)
            column = codes[:, position]
            probs = np.full((self.cluster_count, cardinality),
                            1.0 / cardinality)
            known_rows = column >= 0
            if known_rows.any():
                counts_by_value = np.zeros((cardinality, self.cluster_count))
                np.add.at(counts_by_value, column[known_rows],
                          weighted[known_rows])
                counts = counts_by_value.T            # (K, cardinality)
                totals = counts.sum(axis=1, keepdims=True)
                probs = (counts + 0.5) / (totals + 0.5 * cardinality)
            self.categorical[position] = probs

    def _log_density(self, x, codes) -> np.ndarray:
        """(n, K) log joint density log pi_k + log p(case | cluster k)."""
        n = x.shape[0] if len(self._continuous) else codes.shape[0]
        log_density = np.tile(np.log(self.weights), (n, 1))
        if self._continuous:
            known = ~np.isnan(x)
            filled = np.where(known, x, 0.0)
            for cluster in range(self.cluster_count):
                mean = self.means[cluster]
                variance = self.variances[cluster]
                log_pdf = -0.5 * (np.log(2 * np.pi * variance) +
                                  (filled - mean) ** 2 / variance)
                log_density[:, cluster] += np.where(known, log_pdf, 0.0) \
                    .sum(axis=1)
        for position in range(len(self._categorical)):
            probs = self.categorical[position]
            column = codes[:, position]
            known_rows = column >= 0
            if known_rows.any():
                contribution = np.log(
                    np.maximum(probs[:, column[known_rows]], _LOG_FLOOR))
                log_density[known_rows] += contribution.T
        return log_density

    # -- prediction ---------------------------------------------------------------

    def _posterior(self, observation: Observation) -> np.ndarray:
        x = np.full((1, len(self._continuous)), np.nan)
        codes = np.full((1, len(self._categorical)), -1, dtype=np.int64)
        for position, attribute in enumerate(self._continuous):
            value = observation.values[attribute.index]
            if value is not None:
                x[0, position] = value
        for position, attribute in enumerate(self._categorical):
            value = observation.values[attribute.index]
            if value is not None:
                codes[0, position] = int(value)
        log_density = self._log_density(x, codes)[0]
        log_density -= log_density.max()
        posterior = np.exp(log_density)
        return posterior / posterior.sum()

    def predict(self, observation: Observation) -> CasePrediction:
        self.require_trained()
        result = CasePrediction()
        posterior = self._posterior(observation)
        result.cluster_id = int(np.argmax(posterior)) + 1  # 1-based ids
        result.cluster_probabilities = [float(p) for p in posterior]

        for target in self.space.outputs():
            result.set(self._predict_attribute(target, posterior))
        return result

    def _predict_attribute(self, target: Attribute,
                           posterior: np.ndarray) -> AttributePrediction:
        if target.is_categorical:
            position = self._categorical.index(target)
            probs = self.categorical[position]      # (K, cardinality)
            mixed = posterior @ probs                # (cardinality,)
            distribution = CategoricalDistribution()
            support_scale = float(self.cluster_support.sum())
            for code, probability in enumerate(mixed):
                if probability > 0:
                    distribution.add(float(code),
                                     float(probability) * support_scale)
            return AttributePrediction.from_categorical(target, distribution)
        position = self._continuous.index(target)
        means = self.means[:, position]
        variances = self.variances[:, position]
        mean = float(posterior @ means)
        variance = float(posterior @ (variances + means ** 2) - mean ** 2)
        support = float(posterior @ self.cluster_support)
        bucket = PredictionBucket(mean, 1.0, support, max(variance, 0.0))
        return AttributePrediction(target, mean, None, support,
                                   max(variance, 0.0), [bucket])

    # -- content -----------------------------------------------------------------

    def content_nodes(self) -> ContentNode:
        self.require_trained()
        root = ContentNode("0", NODE_MODEL, self.space.definition.name,
                           description=f"EM clustering model "
                                       f"({self.cluster_count} clusters)",
                           support=float(self.cluster_support.sum()),
                           probability=1.0)
        total = float(self.cluster_support.sum()) or 1.0
        for cluster in range(self.cluster_count):
            rows = []
            for position, attribute in enumerate(self._continuous):
                rows.append(DistributionRow(
                    attribute.name, float(self.means[cluster, position]),
                    float(self.cluster_support[cluster]), 1.0,
                    float(self.variances[cluster, position])))
            for position, attribute in enumerate(self._categorical):
                probs = self.categorical[position][cluster]
                top = np.argsort(-probs)[:5]
                for code in top:
                    if probs[code] <= 0:
                        continue
                    rows.append(DistributionRow(
                        attribute.name, attribute.decode(float(code)),
                        float(self.cluster_support[cluster] * probs[code]),
                        float(probs[code])))
            root.add_child(ContentNode(
                f"0.{cluster}", NODE_CLUSTER, f"Cluster {cluster + 1}",
                description=f"Cluster {cluster + 1} "
                            f"({self.cluster_support[cluster]:.1f} cases)",
                support=float(self.cluster_support[cluster]),
                probability=float(self.cluster_support[cluster]) / total,
                distribution=rows))
        return root
