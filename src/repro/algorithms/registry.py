"""The mining-service registry behind the USING clause.

"Any party interested in using this interface is encouraged to do so by
building its own provider" — at algorithm granularity, that extensibility is
:func:`register_algorithm`: any :class:`MiningAlgorithm` subclass registered
here is immediately usable from ``CREATE MINING MODEL ... USING <name>`` and
appears in the MINING_SERVICES schema rowset.

Service names are case-insensitive; each built-in declares aliases covering
the Microsoft service names and the paper's own ``Decision_Trees_101``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.errors import BindError, SchemaError
from repro.algorithms.base import MiningAlgorithm
from repro.algorithms.decision_tree import DecisionTreeAlgorithm
from repro.algorithms.naive_bayes import NaiveBayesAlgorithm
from repro.algorithms.clustering_em import EMClusteringAlgorithm
from repro.algorithms.clustering_kmeans import KMeansAlgorithm
from repro.algorithms.association import AssociationRulesAlgorithm
from repro.algorithms.linear_regression import LinearRegressionAlgorithm
from repro.algorithms.logistic_regression import LogisticRegressionAlgorithm
from repro.algorithms.sequence import SequenceClusteringAlgorithm

_REGISTRY: Dict[str, Type[MiningAlgorithm]] = {}


def register_algorithm(cls: Type[MiningAlgorithm],
                       replace: bool = False) -> Type[MiningAlgorithm]:
    """Register a mining service class (usable as a decorator).

    Raises :class:`SchemaError` if a name is already taken, unless
    ``replace=True``.
    """
    if not cls.SERVICE_NAME:
        raise SchemaError(f"{cls.__name__} must define SERVICE_NAME")
    if cls.PARALLELIZABLE and cls.merge is MiningAlgorithm.merge:
        raise SchemaError(
            f"{cls.SERVICE_NAME} declares PARALLELIZABLE but does not "
            f"override merge(); a service without a sound partition merge "
            f"must keep PARALLELIZABLE = False")
    names = [cls.SERVICE_NAME, *cls.ALIASES]
    for name in names:
        key = name.upper()
        if key in _REGISTRY and _REGISTRY[key] is not cls and not replace:
            raise SchemaError(
                f"algorithm name {name!r} is already registered to "
                f"{_REGISTRY[key].SERVICE_NAME}")
    for name in names:
        _REGISTRY[name.upper()] = cls
    return cls


def unregister_algorithm(cls: Type[MiningAlgorithm]) -> None:
    """Remove a service and its aliases (used by plug-in tests)."""
    for name in [cls.SERVICE_NAME, *cls.ALIASES]:
        if _REGISTRY.get(name.upper()) is cls:
            del _REGISTRY[name.upper()]


def resolve_algorithm(name: str) -> Type[MiningAlgorithm]:
    """Service class for a USING-clause name, or raise BindError."""
    cls = _REGISTRY.get(name.upper())
    if cls is None:
        known = sorted({c.SERVICE_NAME for c in _REGISTRY.values()})
        raise BindError(
            f"unknown mining algorithm {name!r} (registered services: "
            f"{', '.join(known)})")
    return cls


def create_algorithm(name: str,
                     parameters: Optional[dict] = None) -> MiningAlgorithm:
    """Instantiate a service with validated USING-clause parameters."""
    return resolve_algorithm(name)(parameters)


def algorithm_services() -> List[Type[MiningAlgorithm]]:
    """Distinct registered service classes, by canonical name."""
    seen = {}
    for cls in _REGISTRY.values():
        seen[cls.SERVICE_NAME.upper()] = cls
    return [seen[key] for key in sorted(seen)]


for _builtin in (DecisionTreeAlgorithm, NaiveBayesAlgorithm,
                 EMClusteringAlgorithm, KMeansAlgorithm,
                 AssociationRulesAlgorithm, LinearRegressionAlgorithm,
                 LogisticRegressionAlgorithm,
                 SequenceClusteringAlgorithm):
    register_algorithm(_builtin)
