"""The mining-service plug-in interface and prediction result types.

A mining algorithm is "plugged in" (paper section 1) by subclassing
:class:`MiningAlgorithm` and registering it; the provider routes the USING
clause to the registry.  Algorithms receive the fitted
:class:`~repro.algorithms.attributes.AttributeSpace` and encoded
observations, and answer predictions as :class:`CasePrediction` objects from
which the prediction UDFs (Predict, PredictProbability, PredictHistogram,
...) extract their values.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional

from repro.errors import CapabilityError, NotTrainedError, SchemaError
from repro.obs import trace as obs_trace
from repro.obs import workload as obs_workload
from repro.algorithms.attributes import Attribute, AttributeSpace, Observation
from repro.algorithms.statistics import CategoricalDistribution, GaussianStats
from repro.core.content import ContentNode


class PredictionBucket:
    """One histogram entry of a prediction (paper section 3.2.4)."""

    __slots__ = ("value", "probability", "support", "variance")

    def __init__(self, value: Any, probability: float, support: float,
                 variance: Optional[float] = None):
        self.value = value
        self.probability = probability
        self.support = support
        self.variance = variance

    def __repr__(self) -> str:
        return (f"PredictionBucket({self.value!r}, p={self.probability:.4f}, "
                f"support={self.support:g})")


class AttributePrediction:
    """The full prediction for one attribute: best estimate plus histogram.

    "Predictions may convey not only simple information such as 'estimated
    age is 21' but ... additional statistical information ... a histogram
    provides multiple possible prediction values, each accompanied by a
    probability and other statistics."
    """

    def __init__(self, attribute: Attribute, value: Any,
                 probability: Optional[float], support: float,
                 variance: Optional[float],
                 histogram: List[PredictionBucket]):
        self.attribute = attribute
        self.value = value
        self.probability = probability
        self.support = support
        self.variance = variance
        self.histogram = histogram

    @classmethod
    def from_categorical(cls, attribute: Attribute,
                         distribution: CategoricalDistribution,
                         decode: bool = True) -> "AttributePrediction":
        """Build from a weighted value distribution over internal codes."""
        histogram = []
        for internal, weight in distribution.sorted_items():
            value = attribute.decode(internal) if decode else internal
            probability = weight / distribution.total if distribution.total \
                else 0.0
            histogram.append(PredictionBucket(value, probability, weight))
        if histogram:
            best = histogram[0]
            return cls(attribute, best.value, best.probability,
                       best.support, None, histogram)
        return cls(attribute, None, 0.0, 0.0, None, [])

    @classmethod
    def from_gaussian(cls, attribute: Attribute,
                      stats: GaussianStats) -> "AttributePrediction":
        if stats.sum_weight <= 0:
            return cls(attribute, None, None, 0.0, None, [])
        bucket = PredictionBucket(stats.mean, 1.0, stats.sum_weight,
                                  stats.variance)
        return cls(attribute, stats.mean, None, stats.sum_weight,
                   stats.variance, [bucket])

    def __repr__(self) -> str:
        return (f"AttributePrediction({self.attribute.name!r}, "
                f"{self.value!r}, p={self.probability})")


class CasePrediction:
    """Predictions for every output attribute of one case."""

    def __init__(self):
        self._by_index: Dict[int, AttributePrediction] = {}
        self.cluster_id: Optional[int] = None
        self.cluster_probabilities: List[float] = []
        self.cluster_distances: List[float] = []
        # Per nested-table recommendation histograms (association models):
        # upper-cased table name -> ranked PredictionBucket list.
        self.recommendations: Dict[str, List[PredictionBucket]] = {}

    def set(self, prediction: AttributePrediction) -> None:
        self._by_index[prediction.attribute.index] = prediction

    def get(self, attribute: Attribute) -> Optional[AttributePrediction]:
        return self._by_index.get(attribute.index)

    def attributes(self) -> List[int]:
        return list(self._by_index)

    def __iter__(self):
        return iter(self._by_index.values())


class MiningAlgorithm(abc.ABC):
    """Base class for pluggable mining services.

    Subclasses declare a ``SERVICE_NAME`` (the canonical USING name),
    optional ``ALIASES``, capability flags, and ``SUPPORTED_PARAMETERS``
    (name -> default).  The provider validates USING-clause parameters
    against that declaration, which is how the paper's "schema rowsets
    describe the capabilities and limitations of the provider" surfaces.
    """

    SERVICE_NAME: str = ""
    DISPLAY_NAME: str = ""
    ALIASES: tuple = ()
    SERVICE_TYPE_ID: int = 0
    PREDICTS_DISCRETE: bool = True
    PREDICTS_CONTINUOUS: bool = True
    SUPPORTS_NESTED_TABLES: bool = True
    SUPPORTS_INCREMENTAL: bool = False
    #: True only when the service implements a *sound* :meth:`merge` — one
    #: where training per-partition replicas and merging is observationally
    #: identical to one serial pass.  Services without a sound merge keep
    #: the default and the provider silently runs their training serially
    #: (recorded as ``pool.serial_fallbacks.algorithm``).
    PARALLELIZABLE: bool = False
    SUPPORTED_PARAMETERS: Dict[str, Any] = {}

    def __init__(self, parameters: Optional[Dict[str, Any]] = None):
        parameters = dict(parameters or {})
        # Shared, space-level parameters are accepted by every service.
        shared = {"MAXIMUM_STATES", "MAXIMUM_ITEMS"}
        unknown = [name for name in parameters
                   if name not in self.SUPPORTED_PARAMETERS
                   and name not in shared]
        if unknown:
            raise SchemaError(
                f"algorithm {self.SERVICE_NAME} does not support "
                f"parameter(s) {', '.join(sorted(unknown))} (supported: "
                f"{', '.join(sorted(self.SUPPORTED_PARAMETERS)) or 'none'})")
        self.parameters = {**self.SUPPORTED_PARAMETERS, **parameters}
        self.space: Optional[AttributeSpace] = None
        self.trained = False

    def param(self, name: str) -> Any:
        return self.parameters[name]

    # -- life cycle -----------------------------------------------------------

    def train(self, space: AttributeSpace,
              observations: List[Observation]) -> None:
        """Consume the caseset (INSERT INTO semantics, section 3.3)."""
        self.space = space
        obs_workload.check()
        with obs_trace.span("algorithm.train", service=self.SERVICE_NAME):
            obs_trace.add("observations", len(observations))
            self._train(space, observations)
        self.trained = True

    def partial_train(self, observations: List[Observation]) -> None:
        """Fold additional observations into an already-trained model.

        Only services declaring ``SUPPORTS_INCREMENTAL`` implement this;
        the provider falls back to a full refit otherwise (and whenever the
        new cases contain values outside the fitted attribute space).
        """
        raise CapabilityError(
            f"{self.SERVICE_NAME} does not support incremental "
            f"maintenance; retrain with the full caseset")

    def can_parallelize(self, space: AttributeSpace) -> bool:
        """May this *particular* space be trained in partitions?

        Called after the dictionary pass, before partitioning.  Subclasses
        may veto spaces whose statistics do not merge exactly (e.g. naive
        Bayes refuses continuous attributes because parallel Gaussian
        merges are not bit-identical to the serial update order).
        """
        return self.PARALLELIZABLE

    def merge(self, others: List["MiningAlgorithm"]) -> None:
        """Fold per-partition replicas (trained on disjoint contiguous
        partitions of the caseset, in order) into ``self``.

        The contract: after merging, every queryable surface — content
        rowsets, predictions, statistics — must be identical to a single
        serial :meth:`train` over the concatenated partitions.  Services
        that cannot honor that keep ``PARALLELIZABLE = False`` and this
        default.
        """
        raise CapabilityError(
            f"{self.SERVICE_NAME} does not support partitioned training")

    def note_pass(self, **counters: float) -> None:
        """Record one training pass on the active trace.

        Iterative services call this from their fitting loop so the span
        tree (and ``DM_QUERY_LOG`` totals) carry a ``training_passes``
        count plus any extra per-pass counters the service supplies.  It
        doubles as the cooperative-cancellation checkpoint between passes:
        a ``CANCEL`` lands here, so long iterative fits stop at the next
        iteration boundary rather than running to completion.
        """
        obs_workload.checkpoint()
        obs_trace.add("training_passes", 1)
        for name, amount in counters.items():
            obs_trace.add(name, amount)

    def reset(self) -> None:
        """DELETE FROM semantics: drop learned content, keep the definition."""
        self.space = None
        self.trained = False

    def require_trained(self) -> None:
        if not self.trained:
            raise NotTrainedError(
                f"model using {self.SERVICE_NAME} has not been trained "
                f"(INSERT INTO it first)")

    @abc.abstractmethod
    def _train(self, space: AttributeSpace,
               observations: List[Observation]) -> None:
        """Algorithm-specific training."""

    @abc.abstractmethod
    def predict(self, observation: Observation) -> CasePrediction:
        """Predict all output attributes for one encoded case."""

    @abc.abstractmethod
    def content_nodes(self) -> ContentNode:
        """The model content graph (root node)."""

    # -- shared helpers -------------------------------------------------------

    def marginal_prediction(self, attribute: Attribute) -> AttributePrediction:
        """Fallback prediction from the training marginals."""
        self.require_trained()
        marginal = self.space.marginals[attribute.index]
        if attribute.is_categorical:
            return AttributePrediction.from_categorical(attribute, marginal)
        return AttributePrediction.from_gaussian(attribute, marginal)

    def output_attributes(self) -> List[Attribute]:
        self.require_trained()
        return self.space.outputs()

    def describe(self) -> Dict[str, Any]:
        """Service self-description for the MINING_SERVICES schema rowset."""
        return {
            "SERVICE_NAME": self.SERVICE_NAME,
            "DISPLAY_NAME": self.DISPLAY_NAME or self.SERVICE_NAME,
            "PREDICTS_DISCRETE": self.PREDICTS_DISCRETE,
            "PREDICTS_CONTINUOUS": self.PREDICTS_CONTINUOUS,
            "SUPPORTS_NESTED_TABLES": self.SUPPORTS_NESTED_TABLES,
            "SUPPORTS_INCREMENTAL": self.SUPPORTS_INCREMENTAL,
            "SUPPORTS_PARALLEL_TRAINING": self.PARALLELIZABLE,
        }
