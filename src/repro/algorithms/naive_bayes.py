"""Naive Bayes mining service.

Predicts categorical targets from conditional independence: categorical
inputs contribute multinomial likelihoods with Laplace smoothing, continuous
inputs contribute Gaussian likelihoods fitted per target state.  Missing
inputs simply drop out of the product — which again is what lets a
PREDICTION JOIN present partial cases.

Continuous *targets* are out of scope for this service (the provider's
MINING_SERVICES rowset advertises ``PREDICTS_CONTINUOUS = False`` and the
training call fails fast), demonstrating how OLE DB DM surfaces per-service
capability limits.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.errors import CapabilityError
from repro.algorithms.attributes import Attribute, AttributeSpace, Observation
from repro.algorithms.base import (
    AttributePrediction,
    CasePrediction,
    MiningAlgorithm,
)
from repro.algorithms.statistics import (
    CategoricalDistribution,
    GaussianStats,
    log_sum_exp,
)
from repro.core.content import (
    NODE_DISTRIBUTION,
    NODE_MODEL,
    NODE_PREDICTABLE,
    ContentNode,
    DistributionRow,
)


class _TargetModel:
    """Per-target conditional statistics."""

    def __init__(self):
        self.prior = CategoricalDistribution()
        # (input_index, state) -> CategoricalDistribution of input values
        self.categorical: Dict[Tuple[int, float], CategoricalDistribution] = {}
        # (input_index, state) -> GaussianStats of input values
        self.gaussian: Dict[Tuple[int, float], GaussianStats] = {}


class NaiveBayesAlgorithm(MiningAlgorithm):
    """Multinomial/Gaussian naive Bayes over the attribute space."""

    SERVICE_NAME = "Repro_Naive_Bayes"
    DISPLAY_NAME = "Naive Bayes (reproduction)"
    ALIASES = ("Microsoft_Naive_Bayes", "Naive_Bayes")
    SERVICE_TYPE_ID = 2
    PREDICTS_DISCRETE = True
    PREDICTS_CONTINUOUS = False
    SUPPORTS_INCREMENTAL = True  # counts are additive (section 2's
    # "support for incremental model maintenance" capability)
    PARALLELIZABLE = True  # same additivity makes partition merges sound;
    # can_parallelize() narrows this to spaces where they are also *exact*
    SUPPORTED_PARAMETERS = {
        "SMOOTHING": 1.0,          # Laplace pseudo-count
        "MINIMUM_DEPENDENCY_PROBABILITY": 0.0,
    }

    def __init__(self, parameters=None):
        super().__init__(parameters)
        self.models: Dict[int, _TargetModel] = {}
        self._inputs: Dict[int, List[Attribute]] = {}

    def _train(self, space: AttributeSpace,
               observations: List[Observation]) -> None:
        continuous_targets = [a.name for a in space.outputs()
                              if not a.is_categorical]
        if continuous_targets:
            raise CapabilityError(
                f"{self.SERVICE_NAME} cannot predict continuous "
                f"attribute(s): {', '.join(continuous_targets)} "
                f"(declare them DISCRETIZED, or use a tree/regression "
                f"service)")
        self.models = {}
        self._inputs = {}
        for target in space.outputs():
            inputs = [a for a in space.inputs() if a.index != target.index]
            self._inputs[target.index] = inputs
            model = _TargetModel()
            for observation in observations:
                state = observation.values[target.index]
                if state is None:
                    continue
                weight = observation.effective_weight(target.index)
                model.prior.add(state, weight)
                for attribute in inputs:
                    value = observation.values[attribute.index]
                    if value is None:
                        continue
                    key = (attribute.index, state)
                    if attribute.is_categorical:
                        model.categorical.setdefault(
                            key, CategoricalDistribution()).add(value, weight)
                    else:
                        model.gaussian.setdefault(
                            key, GaussianStats()).add(value, weight)
            self.models[target.index] = model

    def partial_train(self, observations: List[Observation]) -> None:
        """Fold new observations into the counts (exactly equivalent to a
        full retrain over the union, because every statistic is a sum)."""
        self.require_trained()
        for target_index, model in self.models.items():
            for observation in observations:
                state = observation.values[target_index]
                if state is None:
                    continue
                weight = observation.effective_weight(target_index)
                model.prior.add(state, weight)
                for attribute in self._inputs[target_index]:
                    value = observation.values[attribute.index]
                    if value is None:
                        continue
                    key = (attribute.index, state)
                    if attribute.is_categorical:
                        model.categorical.setdefault(
                            key, CategoricalDistribution()).add(value, weight)
                    else:
                        model.gaussian.setdefault(
                            key, GaussianStats()).add(value, weight)

    def can_parallelize(self, space: AttributeSpace) -> bool:
        """Partition only when the merged model is bit-identical to serial.

        Two conditions guarantee that: every attribute is categorical (a
        partitioned Gaussian merge is algebraically right but not
        bit-identical to the serial update order), and no qualifier columns
        (SUPPORT/PROBABILITY weights may be fractional, and summing a
        partition's subtotal is not the same float as summing case by
        case).  With both, every statistic is a sum of 1.0s — exact in
        floats — and dict insertion order equals first-encounter order over
        the concatenated partitions, so content rowsets match byte for
        byte.
        """
        if any(not attribute.is_categorical for attribute in space.attributes):
            return False
        def has_qualifier(columns):
            from repro.core.columns import ContentRole
            return any(
                column.role is ContentRole.QUALIFIER
                or (column.nested_columns
                    and has_qualifier(column.nested_columns))
                for column in columns)
        return not has_qualifier(space.definition.columns)

    def merge(self, others: List["NaiveBayesAlgorithm"]) -> None:
        """Fold per-partition replicas, preserving first-encounter order.

        Partitions are contiguous and arrive in caseset order, and dict
        merges append unseen keys in the other dict's insertion order — so
        the merged priors/conditionals iterate exactly as a serial scan of
        the whole caseset would.
        """
        self.require_trained()
        for replica in others:
            for target_index, model in self.models.items():
                other = replica.models[target_index]
                model.prior.merge(other.prior)
                for key, distribution in other.categorical.items():
                    mine = model.categorical.get(key)
                    if mine is None:
                        model.categorical[key] = distribution.copy()
                    else:
                        mine.merge(distribution)
                for key, stats in other.gaussian.items():
                    mine = model.gaussian.get(key)
                    if mine is None:
                        model.gaussian[key] = stats.copy()
                    else:
                        mine.merge(stats)

    def predict(self, observation: Observation) -> CasePrediction:
        self.require_trained()
        result = CasePrediction()
        smoothing = float(self.param("SMOOTHING"))
        for target in self.space.outputs():
            model = self.models[target.index]
            states = list(model.prior.counts)
            if not states:
                result.set(self.marginal_prediction(target))
                continue
            log_scores = []
            for state in states:
                score = math.log(max(model.prior.probability(state), 1e-12))
                for attribute in self._inputs[target.index]:
                    value = observation.values[attribute.index]
                    if value is None:
                        continue
                    key = (attribute.index, state)
                    if attribute.is_categorical:
                        conditional = model.categorical.get(key)
                        if conditional is None:
                            conditional = CategoricalDistribution()
                        p = conditional.probability(
                            value, smoothing=smoothing,
                            cardinality=max(attribute.cardinality, 1))
                        score += math.log(max(p, 1e-12))
                    else:
                        stats = model.gaussian.get(key)
                        if stats is None or stats.sum_weight <= 0:
                            continue
                        score += math.log(max(stats.pdf(value), 1e-300))
                log_scores.append(score)
            normaliser = log_sum_exp(log_scores)
            posterior = CategoricalDistribution()
            for state, score in zip(states, log_scores):
                posterior.add(state, math.exp(score - normaliser) *
                              model.prior.total)
            result.set(AttributePrediction.from_categorical(target,
                                                            posterior))
        return result

    def content_nodes(self) -> ContentNode:
        self.require_trained()
        root = ContentNode("0", NODE_MODEL, self.space.definition.name,
                           description="Naive Bayes model",
                           support=self.space.total_weight, probability=1.0)
        for position, (target_index, model) in enumerate(
                sorted(self.models.items())):
            target = self.space.attributes[target_index]
            target_node = root.add_child(ContentNode(
                f"0.{position}", NODE_PREDICTABLE, target.name,
                description=f"Priors and conditionals for {target.name}",
                support=model.prior.total, probability=1.0,
                distribution=[
                    DistributionRow(target.name, target.decode(state),
                                    weight,
                                    weight / model.prior.total
                                    if model.prior.total else 0.0)
                    for state, weight in model.prior.sorted_items()]))
            for state_position, (state, state_weight) in enumerate(
                    model.prior.sorted_items()):
                rows = []
                for attribute in self._inputs[target_index]:
                    key = (attribute.index, state)
                    if attribute.is_categorical and key in model.categorical:
                        conditional = model.categorical[key]
                        for value, weight in conditional.sorted_items()[:5]:
                            rows.append(DistributionRow(
                                attribute.name, attribute.decode(value),
                                weight,
                                weight / conditional.total
                                if conditional.total else 0.0))
                    elif key in model.gaussian:
                        stats = model.gaussian[key]
                        rows.append(DistributionRow(
                            attribute.name, stats.mean, stats.sum_weight,
                            1.0, stats.variance))
                target_node.add_child(ContentNode(
                    f"0.{position}.{state_position}", NODE_DISTRIBUTION,
                    f"{target.name} = {target.decode(state)!r}",
                    support=state_weight,
                    probability=(state_weight / model.prior.total
                                 if model.prior.total else 0.0),
                    distribution=rows))
        return root
