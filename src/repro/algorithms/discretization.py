"""Discretization service for DISCRETIZED attributes (paper section 3.2.2).

"The data ... is continuous, but it should be transformed into and modeled as
a number of ORDERED states by the provider."  Three strategies are offered —
EQUAL_RANGE, EQUAL_COUNT (quantiles), and CLUSTERS (1-D k-means) — selected
per column as ``DISCRETIZED(<method>, <buckets>)``.  Benchmark X5 ablates
them against each other.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.errors import TrainError

DEFAULT_BUCKETS = 5


class Discretizer:
    """Maps continuous values to bucket ordinals and back to ranges.

    ``edges`` holds the *inner* boundaries in ascending order, so bucket
    ``i`` covers ``(edges[i-1], edges[i]]`` with open ends at the extremes.
    """

    def __init__(self, method: str, buckets: int, edges: List[float],
                 minimum: float, maximum: float):
        self.method = method
        self.buckets = buckets
        self.edges = edges
        self.minimum = minimum
        self.maximum = maximum

    def bucket_of(self, value: float) -> int:
        """Bucket ordinal (0-based) for a value; clamps outside the range."""
        value = float(value)
        low, high = 0, len(self.edges)
        while low < high:
            middle = (low + high) // 2
            if value <= self.edges[middle]:
                high = middle
            else:
                low = middle + 1
        return low

    def range_of(self, bucket: int) -> Tuple[float, float]:
        """(low, high) numeric range covered by a bucket ordinal."""
        low = self.minimum if bucket == 0 else self.edges[bucket - 1]
        high = self.maximum if bucket >= len(self.edges) else self.edges[bucket]
        return low, high

    def midpoint_of(self, bucket: int) -> float:
        low, high = self.range_of(bucket)
        return (low + high) / 2.0

    def label(self, bucket: int) -> str:
        low, high = self.range_of(bucket)
        return f"[{low:g} - {high:g}]"

    @property
    def bucket_count(self) -> int:
        return len(self.edges) + 1


def fit_discretizer(values: Sequence[float], method: Optional[str] = None,
                    buckets: Optional[int] = None) -> Discretizer:
    """Fit a discretizer to training values.

    ``method`` defaults to AUTOMATIC (= EQUAL_COUNT).  Degenerate inputs
    (constant column) produce a single-bucket discretizer rather than
    failing, so a model can still train on them.
    """
    method = (method or "AUTOMATIC").upper()
    if buckets is None:
        buckets = DEFAULT_BUCKETS
    if buckets < 1:
        raise TrainError(f"discretization bucket count must be >= 1, "
                         f"got {buckets}")
    cleaned = sorted(float(v) for v in values if v is not None)
    if not cleaned:
        raise TrainError("cannot discretize a column with no non-NULL values")
    minimum, maximum = cleaned[0], cleaned[-1]
    if minimum == maximum or buckets == 1:
        return Discretizer(method, 1, [], minimum, maximum)

    if method == "EQUAL_RANGE":
        width = (maximum - minimum) / buckets
        edges = [minimum + width * i for i in range(1, buckets)]
    elif method in ("EQUAL_COUNT", "AUTOMATIC"):
        edges = _quantile_edges(cleaned, buckets)
    elif method == "CLUSTERS":
        edges = _cluster_edges(cleaned, buckets)
    else:
        raise TrainError(f"unknown discretization method {method!r}")

    # Collapse duplicate edges produced by heavy ties.
    unique_edges: List[float] = []
    for edge in edges:
        if not unique_edges or edge > unique_edges[-1]:
            unique_edges.append(edge)
    return Discretizer(method, buckets, unique_edges, minimum, maximum)


def _quantile_edges(sorted_values: List[float], buckets: int) -> List[float]:
    count = len(sorted_values)
    edges = []
    for i in range(1, buckets):
        position = i * count / buckets
        index = min(int(math.ceil(position)) - 1, count - 1)
        edges.append(sorted_values[max(index, 0)])
    return edges


def _cluster_edges(sorted_values: List[float], buckets: int,
                   iterations: int = 25) -> List[float]:
    """1-D k-means; edges are midpoints between adjacent sorted centroids."""
    count = len(sorted_values)
    buckets = min(buckets, count)
    # Deterministic initialisation: spread centroids across the quantiles.
    centroids = [sorted_values[min(int((i + 0.5) * count / buckets),
                                   count - 1)]
                 for i in range(buckets)]
    for _ in range(iterations):
        sums = [0.0] * buckets
        counts = [0] * buckets
        for value in sorted_values:
            nearest = min(range(buckets),
                          key=lambda c: abs(value - centroids[c]))
            sums[nearest] += value
            counts[nearest] += 1
        updated = [sums[i] / counts[i] if counts[i] else centroids[i]
                   for i in range(buckets)]
        if all(abs(a - b) < 1e-12 for a, b in zip(updated, centroids)):
            centroids = updated
            break
        centroids = updated
    unique = sorted(set(centroids))
    return [(unique[i] + unique[i + 1]) / 2.0 for i in range(len(unique) - 1)]
