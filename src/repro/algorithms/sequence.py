"""Sequence-clustering mining service (mixture of Markov chains).

The paper lists "sequence analysis" among the capabilities a provider
advertises; this service implements it for nested tables carrying a
SEQUENCE_TIME column.  Each cluster is a first-order Markov chain (initial
distribution + transition matrix), fitted by EM over whole sequences.
Prediction assigns a cluster and ranks next states given the case's last
observed state, publishing them as the nested table's recommendation
histogram (consumed by PredictHistogram / TopCount, like association
recommendations).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import TrainError
from repro.algorithms.attributes import AttributeSpace, Observation
from repro.algorithms.base import (
    CasePrediction,
    MiningAlgorithm,
    PredictionBucket,
)
from repro.core.content import (
    NODE_CLUSTER,
    NODE_MODEL,
    NODE_SEQUENCE,
    ContentNode,
    DistributionRow,
)

_FLOOR = 1e-9


class SequenceClusteringAlgorithm(MiningAlgorithm):
    """EM over a mixture of first-order Markov chains."""

    SERVICE_NAME = "Repro_Sequence_Clustering"
    DISPLAY_NAME = "Sequence Clustering (reproduction)"
    ALIASES = ("Microsoft_Sequence_Clustering", "Sequence_Clustering")
    SERVICE_TYPE_ID = 7
    PREDICTS_DISCRETE = True
    PREDICTS_CONTINUOUS = False
    SUPPORTED_PARAMETERS = {
        "CLUSTER_COUNT": 4,
        "MAX_ITERATIONS": 40,
        "CLUSTER_SEED": 42,
        "STOPPING_TOLERANCE": 1e-4,
    }

    def __init__(self, parameters=None):
        super().__init__(parameters)
        self.states: List[Any] = []
        self._state_index: Dict[Any, int] = {}
        self.cluster_count = 0
        self.mixture: Optional[np.ndarray] = None     # (K,)
        self.initial: Optional[np.ndarray] = None     # (K, S)
        self.transition: Optional[np.ndarray] = None  # (K, S, S)
        self.cluster_support: Optional[np.ndarray] = None
        self._table_name: Optional[str] = None

    # -- training -------------------------------------------------------------

    def _encode_sequences(self, observations: List[Observation]):
        sequences = []
        for observation in observations:
            raw = observation.sequences.get(self._table_name.upper(), [])
            encoded = [self._state_index[s] for s in raw
                       if s in self._state_index]
            sequences.append((encoded, observation.weight))
        return sequences

    def _train(self, space: AttributeSpace,
               observations: List[Observation]) -> None:
        tables = [t for t in space.definition.nested_tables()
                  if observations and
                  t.name.upper() in observations[0].sequences]
        if not tables:
            raise TrainError(
                f"{self.SERVICE_NAME} requires a nested TABLE with a "
                f"SEQUENCE_TIME column; model {space.definition.name!r} "
                f"has none")
        table = tables[0]
        self._table_name = table.name

        seen: Dict[Any, int] = {}
        for observation in observations:
            for state in observation.sequences.get(table.name.upper(), []):
                if state is not None and state not in seen:
                    seen[state] = len(seen)
        if not seen:
            raise TrainError("no sequence states found in the caseset")
        self.states = list(seen)
        self._state_index = seen
        state_count = len(self.states)

        k = min(int(self.param("CLUSTER_COUNT")), len(observations))
        self.cluster_count = max(k, 1)
        sequences = self._encode_sequences(observations)
        n = len(sequences)
        rng = np.random.RandomState(int(self.param("CLUSTER_SEED")))
        responsibilities = rng.dirichlet(np.ones(self.cluster_count), size=n)

        weights = np.array([w for _, w in sequences])
        previous = None
        for _ in range(int(self.param("MAX_ITERATIONS"))):
            self._m_step(sequences, responsibilities, state_count)
            log_likelihoods = self._sequence_log_likelihoods(sequences)
            peak = log_likelihoods.max(axis=1, keepdims=True)
            posterior = np.exp(log_likelihoods - peak)
            log_norm = peak[:, 0] + np.log(posterior.sum(axis=1))
            posterior /= posterior.sum(axis=1, keepdims=True)
            responsibilities = posterior
            total = float((weights * log_norm).sum())
            if previous is not None and \
                    abs(total - previous) < \
                    float(self.param("STOPPING_TOLERANCE")) * max(n, 1):
                break
            previous = total
        self._m_step(sequences, responsibilities, state_count)
        self.cluster_support = (responsibilities * weights[:, None]).sum(axis=0)

    def _m_step(self, sequences, responsibilities, state_count) -> None:
        k = self.cluster_count
        mixture = np.full(k, _FLOOR)
        initial = np.full((k, state_count), 0.5)
        transition = np.full((k, state_count, state_count), 0.5)
        for (sequence, weight), responsibility in zip(sequences,
                                                      responsibilities):
            for cluster in range(k):
                share = weight * responsibility[cluster]
                mixture[cluster] += share
                if sequence:
                    initial[cluster, sequence[0]] += share
                    for a, b in zip(sequence, sequence[1:]):
                        transition[cluster, a, b] += share
        self.mixture = mixture / mixture.sum()
        self.initial = initial / initial.sum(axis=1, keepdims=True)
        self.transition = transition / transition.sum(axis=2, keepdims=True)

    def _sequence_log_likelihoods(self, sequences) -> np.ndarray:
        log_initial = np.log(self.initial)
        log_transition = np.log(self.transition)
        log_mixture = np.log(self.mixture)
        result = np.zeros((len(sequences), self.cluster_count))
        for row, (sequence, _) in enumerate(sequences):
            scores = log_mixture.copy()
            if sequence:
                scores = scores + log_initial[:, sequence[0]]
                for a, b in zip(sequence, sequence[1:]):
                    scores = scores + log_transition[:, a, b]
            result[row] = scores
        return result

    # -- prediction -------------------------------------------------------------

    def predict(self, observation: Observation) -> CasePrediction:
        self.require_trained()
        result = CasePrediction()
        raw = observation.sequences.get(self._table_name.upper(), [])
        sequence = [self._state_index[s] for s in raw
                    if s in self._state_index]
        scores = self._sequence_log_likelihoods([(sequence, 1.0)])[0]
        scores -= scores.max()
        posterior = np.exp(scores)
        posterior /= posterior.sum()
        result.cluster_id = int(posterior.argmax()) + 1
        result.cluster_probabilities = [float(p) for p in posterior]

        # Next-state distribution mixed over clusters.
        if sequence:
            next_probs = posterior @ self.transition[:, sequence[-1], :]
        else:
            next_probs = posterior @ self.initial
        support_scale = float(self.cluster_support.sum())
        buckets = [
            PredictionBucket(self.states[state], float(p),
                             float(p) * support_scale)
            for state, p in enumerate(next_probs)]
        buckets.sort(key=lambda b: (-b.probability, str(b.value)))
        result.recommendations = {self._table_name.upper(): buckets}
        return result

    # -- content ---------------------------------------------------------------

    def content_nodes(self) -> ContentNode:
        self.require_trained()
        total = float(self.cluster_support.sum()) or 1.0
        root = ContentNode(
            "0", NODE_MODEL, self.space.definition.name,
            description=f"Sequence clustering: {self.cluster_count} "
                        f"Markov chains over {len(self.states)} states",
            support=total, probability=1.0)
        for cluster in range(self.cluster_count):
            support = float(self.cluster_support[cluster])
            cluster_node = root.add_child(ContentNode(
                f"0.{cluster}", NODE_CLUSTER, f"Chain {cluster + 1}",
                support=support, probability=support / total,
                distribution=[
                    DistributionRow("(initial)", self.states[state],
                                    support * float(p), float(p))
                    for state, p in enumerate(self.initial[cluster])
                    if p > 0.01]))
            for state in range(len(self.states)):
                rows = [DistributionRow(
                    str(self.states[state]), self.states[target],
                    support * float(p), float(p))
                    for target, p in enumerate(
                        self.transition[cluster, state])
                    if p > 0.01]
                cluster_node.add_child(ContentNode(
                    f"0.{cluster}.{state}", NODE_SEQUENCE,
                    f"from {self.states[state]!r}",
                    support=support, probability=1.0, distribution=rows))
        return root
