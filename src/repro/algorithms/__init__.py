"""Pluggable mining services (system S9).

The paper's design goal is an API that lets "any algorithm plug in"; this
package provides the plug-in surface (:class:`MiningAlgorithm`,
:func:`register_algorithm`) and seven from-scratch reference algorithms:
decision trees, naive Bayes, EM clustering, k-means, Apriori association
rules, linear regression, and Markov-chain sequence clustering.
"""

from repro.algorithms.base import (
    AttributePrediction,
    CasePrediction,
    MiningAlgorithm,
    PredictionBucket,
)
from repro.algorithms.attributes import Attribute, AttributeSpace, Observation
from repro.algorithms.registry import (
    algorithm_services,
    create_algorithm,
    register_algorithm,
    resolve_algorithm,
)

__all__ = [
    "AttributePrediction",
    "CasePrediction",
    "MiningAlgorithm",
    "PredictionBucket",
    "Attribute",
    "AttributeSpace",
    "Observation",
    "algorithm_services",
    "create_algorithm",
    "register_algorithm",
    "resolve_algorithm",
]
