"""Reconstruct working models from PMML documents written by the writer."""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET

from repro.errors import Error
from repro.lang.parser import parse_statement
from repro.lang import ast_nodes as ast
from repro.core.columns import compile_model_definition
from repro.core.model import MiningModel
from repro.pmml.state import algorithm_state_from_json, space_from_json


def read_pmml(text: str) -> MiningModel:
    """Parse a PMML document and return a trained :class:`MiningModel`.

    The model predicts and browses exactly as the exported one did.  Its
    accumulated caseset is *not* part of the document (PMML persists the
    abstraction, not the data — paper footnote 2), so a subsequent INSERT
    INTO starts a fresh accumulation.
    """
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise Error(f"invalid PMML document: {exc}") from exc
    if root.tag != "PMML":
        raise Error(f"expected a <PMML> document, got <{root.tag}>")
    extension = None
    for element in root.iter("Extension"):
        if element.get("name") == "repro-state":
            extension = element
            break
    if extension is None or not (extension.text or "").strip():
        raise Error(
            "this PMML document has no repro-state extension; only "
            "documents written by this provider can be imported")
    state = json.loads(extension.text.strip())

    statement = parse_statement(state["ddl"])
    if not isinstance(statement, ast.CreateMiningModelStatement):
        raise Error("embedded DDL is not a CREATE MINING MODEL statement")
    definition = compile_model_definition(statement)
    model = MiningModel(definition)
    space = space_from_json(definition, state["space"])
    algorithm_state_from_json(model.algorithm, space, state["algorithm"])
    model.space = space
    model.insert_count = state.get("insert_count", 0)
    return model


def read_pmml_file(path: str) -> MiningModel:
    with open(path, encoding="utf-8") as handle:
        return read_pmml(handle.read())
