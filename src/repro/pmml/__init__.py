"""PMML-style model persistence (system S10, paper section 4).

"A related effort, called Predictive Model Markup Language (PMML), provides
an open standard for how models should be persisted in XML ... We are
currently working with the PMML group to use PMML format as an open
persistence format."

``writer.to_pmml`` renders a trained model as a PMML-inspired XML document:
a DataDictionary / MiningSchema derived from the model definition, a
model-family-specific body (TreeModel, NaiveBayesModel, ClusteringModel,
RegressionModel, AssociationModel, SequenceModel), and an ``Extension``
block carrying the complete provider state so that ``reader.read_pmml``
round-trips the model losslessly — the "model sharing" the paper wants.
"""

from repro.pmml.writer import to_pmml, write_pmml_file
from repro.pmml.reader import read_pmml, read_pmml_file

__all__ = ["to_pmml", "write_pmml_file", "read_pmml", "read_pmml_file"]
