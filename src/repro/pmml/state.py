"""Lossless (de)serialization of attribute spaces and algorithm state.

The visible PMML body is for interchange and human inspection; this module
produces the JSON state blob embedded in the document's ``Extension``
element, from which :mod:`repro.pmml.reader` reconstructs a fully working
model without retraining.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.errors import Error
from repro.algorithms.attributes import Attribute, AttributeSpace
from repro.algorithms.discretization import Discretizer
from repro.algorithms.statistics import CategoricalDistribution, GaussianStats
from repro.core.columns import ModelDefinition


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------

def _categorical_to_json(distribution: CategoricalDistribution) -> dict:
    return {"type": "categorical",
            "counts": [[value, weight]
                       for value, weight in distribution.counts.items()],
            "total": distribution.total}


def _categorical_from_json(state: dict) -> CategoricalDistribution:
    distribution = CategoricalDistribution()
    distribution.counts = {_revive(value): weight
                           for value, weight in state["counts"]}
    distribution.total = state["total"]
    return distribution


def _revive(value: Any) -> Any:
    """JSON keys/values arrive as-is; nothing to fix beyond identity."""
    return value


def _gaussian_to_json(stats: GaussianStats) -> dict:
    return {"type": "gaussian", "sum_weight": stats.sum_weight,
            "mean": stats.mean, "m2": stats._m2,
            "min": stats.minimum, "max": stats.maximum}


def _gaussian_from_json(state: dict) -> GaussianStats:
    stats = GaussianStats()
    stats.sum_weight = state["sum_weight"]
    stats.mean = state["mean"]
    stats._m2 = state["m2"]
    stats.minimum = state["min"]
    stats.maximum = state["max"]
    return stats


def _stat_to_json(stat) -> dict:
    if isinstance(stat, CategoricalDistribution):
        return _categorical_to_json(stat)
    return _gaussian_to_json(stat)


def _stat_from_json(state: dict):
    if state["type"] == "categorical":
        return _categorical_from_json(state)
    return _gaussian_from_json(state)


# ---------------------------------------------------------------------------
# Attribute space
# ---------------------------------------------------------------------------

def space_to_json(space: AttributeSpace) -> dict:
    attributes = []
    for attribute in space.attributes:
        discretizer = None
        if attribute.discretizer is not None:
            d = attribute.discretizer
            discretizer = {"method": d.method, "buckets": d.buckets,
                           "edges": d.edges, "min": d.minimum,
                           "max": d.maximum}
        attributes.append({
            "name": attribute.name,
            "kind": attribute.kind,
            "is_input": attribute.is_input,
            "is_output": attribute.is_output,
            "column": attribute.column.name if attribute.column else None,
            "table": attribute.table.name if attribute.table else None,
            "key_value": attribute.key_value,
            "value_column": (attribute.value_column.name
                             if attribute.value_column else None),
            "categories": attribute.categories,
            "is_existence": attribute.is_existence,
            "discretizer": discretizer,
        })
    return {
        "case_count": space.case_count,
        "total_weight": space.total_weight,
        "maximum_states": space.maximum_states,
        "maximum_items": space.maximum_items,
        "relations": [[table, column, list(mapping.items())]
                      for (table, column), mapping in
                      space.relations.items()],
        "attributes": attributes,
        "marginals": [_stat_to_json(m) for m in space.marginals],
    }


def space_from_json(definition: ModelDefinition,
                    state: dict) -> AttributeSpace:
    space = AttributeSpace(definition)
    space.case_count = state["case_count"]
    space.total_weight = state["total_weight"]
    space.maximum_states = state["maximum_states"]
    space.maximum_items = state["maximum_items"]
    space.relations = {
        (table, column): {key: value for key, value in mapping}
        for table, column, mapping in state["relations"]}
    for entry in state["attributes"]:
        column = definition.find(entry["column"]) if entry["column"] else None
        table = definition.find(entry["table"]) if entry["table"] else None
        value_column = None
        if table is not None and entry["value_column"]:
            value_column = table.find_nested(entry["value_column"])
        discretizer = None
        if entry["discretizer"]:
            d = entry["discretizer"]
            discretizer = Discretizer(d["method"], d["buckets"],
                                      list(d["edges"]), d["min"], d["max"])
        categories = [_revive_category(c) for c in entry["categories"]]
        space._add(Attribute(
            len(space.attributes), entry["name"], entry["kind"],
            is_input=entry["is_input"], is_output=entry["is_output"],
            column=column, table=table, key_value=entry["key_value"],
            value_column=value_column, categories=categories,
            discretizer=discretizer, is_existence=entry["is_existence"]))
    space.marginals = [_stat_from_json(m) for m in state["marginals"]]
    return space


def _revive_category(value: Any) -> Any:
    return value


# ---------------------------------------------------------------------------
# Algorithm state (per service)
# ---------------------------------------------------------------------------

def algorithm_state_to_json(algorithm) -> dict:
    name = algorithm.SERVICE_NAME
    handler = _TO_JSON.get(name)
    if handler is None:
        raise Error(f"no PMML state serializer for service {name!r}")
    return {"service": name, **handler(algorithm)}


def algorithm_state_from_json(algorithm, space: AttributeSpace,
                              state: dict) -> None:
    handler = _FROM_JSON.get(algorithm.SERVICE_NAME)
    if handler is None:
        raise Error(f"no PMML state loader for service "
                    f"{algorithm.SERVICE_NAME!r}")
    algorithm.space = space
    handler(algorithm, space, state)
    algorithm.trained = True


# -- decision tree ----------------------------------------------------------

def _tree_node_to_json(node) -> dict:
    return {
        "support": node.support,
        "depth": node.depth,
        "condition": node.condition,
        "threshold": node.threshold,
        "split": node.split_attribute.name if node.split_attribute else None,
        "child_values": node.child_values,
        "children": [_tree_node_to_json(c) for c in node.children],
        "distribution": (_categorical_to_json(node.distribution)
                         if node.distribution is not None else None),
        "stats": (_gaussian_to_json(node.stats)
                  if node.stats is not None else None),
    }


def _tree_node_from_json(state: dict, space: AttributeSpace):
    from repro.algorithms.decision_tree import _TreeNode
    node = _TreeNode(state["support"], state["depth"], state["condition"])
    node.threshold = state["threshold"]
    if state["split"]:
        node.split_attribute = space.by_name(state["split"])
    node.child_values = state["child_values"]
    node.children = [_tree_node_from_json(c, space)
                     for c in state["children"]]
    if state["distribution"] is not None:
        node.distribution = _categorical_from_json(state["distribution"])
    if state["stats"] is not None:
        node.stats = _gaussian_from_json(state["stats"])
    return node


def _trees_to_json(algorithm) -> dict:
    return {"trees": [
        [algorithm.space.attributes[index].name, _tree_node_to_json(tree)]
        for index, tree in sorted(algorithm.trees.items())]}


def _trees_from_json(algorithm, space, state) -> None:
    algorithm.trees = {}
    for target_name, tree_state in state["trees"]:
        target = space.by_name(target_name)
        algorithm.trees[target.index] = _tree_node_from_json(tree_state,
                                                             space)


# -- naive bayes --------------------------------------------------------------

def _bayes_to_json(algorithm) -> dict:
    models = []
    for target_index, model in sorted(algorithm.models.items()):
        target = algorithm.space.attributes[target_index]
        models.append({
            "target": target.name,
            "prior": _categorical_to_json(model.prior),
            "categorical": [
                [algorithm.space.attributes[input_index].name, state,
                 _categorical_to_json(distribution)]
                for (input_index, state), distribution in
                model.categorical.items()],
            "gaussian": [
                [algorithm.space.attributes[input_index].name, state,
                 _gaussian_to_json(stats)]
                for (input_index, state), stats in model.gaussian.items()],
        })
    return {"models": models}


def _bayes_from_json(algorithm, space, state) -> None:
    from repro.algorithms.naive_bayes import _TargetModel
    algorithm.models = {}
    algorithm._inputs = {}
    for entry in state["models"]:
        target = space.by_name(entry["target"])
        model = _TargetModel()
        model.prior = _categorical_from_json(entry["prior"])
        for name, value_state, distribution in entry["categorical"]:
            model.categorical[(space.by_name(name).index, value_state)] = \
                _categorical_from_json(distribution)
        for name, value_state, stats in entry["gaussian"]:
            model.gaussian[(space.by_name(name).index, value_state)] = \
                _gaussian_from_json(stats)
        algorithm.models[target.index] = model
        algorithm._inputs[target.index] = [
            a for a in space.inputs() if a.index != target.index]


# -- EM clustering ---------------------------------------------------------------

def _em_to_json(algorithm) -> dict:
    return {
        "cluster_count": algorithm.cluster_count,
        "weights": algorithm.weights.tolist(),
        "cluster_support": algorithm.cluster_support.tolist(),
        "means": algorithm.means.tolist() if algorithm.means is not None
        else None,
        "variances": (algorithm.variances.tolist()
                      if algorithm.variances is not None else None),
        "categorical": {str(k): v.tolist()
                        for k, v in algorithm.categorical.items()},
        "continuous_names": [a.name for a in algorithm._continuous],
        "categorical_names": [a.name for a in algorithm._categorical],
    }


def _em_from_json(algorithm, space, state) -> None:
    algorithm.cluster_count = state["cluster_count"]
    algorithm.weights = np.array(state["weights"])
    algorithm.cluster_support = np.array(state["cluster_support"])
    algorithm.means = (np.array(state["means"])
                       if state["means"] is not None else None)
    algorithm.variances = (np.array(state["variances"])
                           if state["variances"] is not None else None)
    algorithm.categorical = {int(k): np.array(v)
                             for k, v in state["categorical"].items()}
    algorithm._continuous = [space.by_name(n)
                             for n in state["continuous_names"]]
    algorithm._categorical = [space.by_name(n)
                              for n in state["categorical_names"]]


# -- k-means ------------------------------------------------------------------------

def _kmeans_to_json(algorithm) -> dict:
    return {
        "cluster_count": algorithm.cluster_count,
        "centroids": algorithm.centroids.tolist(),
        "cluster_support": algorithm.cluster_support.tolist(),
        "scale_mean": algorithm._scale_mean.tolist(),
        "scale_std": algorithm._scale_std.tolist(),
        "per_cluster": [
            {str(index): _stat_to_json(stat)
             for index, stat in stats.items()}
            for stats in algorithm._per_cluster_stats],
    }


def _kmeans_from_json(algorithm, space, state) -> None:
    algorithm.cluster_count = state["cluster_count"]
    algorithm.centroids = np.array(state["centroids"])
    algorithm.cluster_support = np.array(state["cluster_support"])
    algorithm._scale_mean = np.array(state["scale_mean"])
    algorithm._scale_std = np.array(state["scale_std"])
    algorithm._build_plan(space)
    algorithm._per_cluster_stats = [
        {int(index): _stat_from_json(stat)
         for index, stat in stats.items()}
        for stats in state["per_cluster"]]


# -- association rules -----------------------------------------------------------------

def _association_to_json(algorithm) -> dict:
    by_index = {a.index: a.name for a in algorithm.items}
    return {
        "table": algorithm._table_name,
        "case_total": algorithm.case_total,
        "items": [a.name for a in algorithm.items],
        "itemsets": [[sorted(by_index[i] for i in itemset), support]
                     for itemset, support in algorithm.itemsets.items()],
        "rules": [[sorted(by_index[i] for i in rule.left),
                   by_index[rule.right], rule.support, rule.confidence,
                   rule.lift]
                  for rule in algorithm.rules],
    }


def _association_from_json(algorithm, space, state) -> None:
    from repro.algorithms.association import AssociationRule
    algorithm._table_name = state["table"]
    algorithm.case_total = state["case_total"]
    algorithm.items = [space.by_name(n) for n in state["items"]]
    name_to_index = {a.name: a.index for a in algorithm.items}
    algorithm.itemsets = {
        frozenset(name_to_index[n] for n in names): support
        for names, support in state["itemsets"]}
    algorithm.rules = [
        AssociationRule(frozenset(name_to_index[n] for n in left),
                        name_to_index[right], support, confidence, lift)
        for left, right, support, confidence, lift in state["rules"]]


# -- linear regression --------------------------------------------------------------------

def _regression_to_json(algorithm) -> dict:
    models = []
    for target_index, model in sorted(algorithm.models.items()):
        target = algorithm.space.attributes[target_index]
        models.append({
            "target": target.name,
            "coefficients": model.coefficients.tolist(),
            "residual_variance": model.residual_variance,
            "support": model.support,
            "r_squared": model.r_squared,
            "feature_means":
                algorithm._feature_means[target_index].tolist(),
        })
    return {"models": models}


def _regression_from_json(algorithm, space, state) -> None:
    from repro.algorithms.linear_regression import _RegressionModel
    algorithm.models = {}
    algorithm._plans = {}
    algorithm._feature_means = {}
    for entry in state["models"]:
        target = space.by_name(entry["target"])
        algorithm.models[target.index] = _RegressionModel(
            np.array(entry["coefficients"]), entry["residual_variance"],
            entry["support"], entry["r_squared"])
        algorithm._plans[target.index] = algorithm._plan_for(space, target)
        algorithm._feature_means[target.index] = \
            np.array(entry["feature_means"])


# -- logistic regression --------------------------------------------------------------------

def _logistic_to_json(algorithm) -> dict:
    models = []
    for target_index, model in sorted(algorithm.models.items()):
        target = algorithm.space.attributes[target_index]
        models.append({
            "target": target.name,
            "weights": model.weights.tolist(),
            "feature_means": model.feature_means.tolist(),
            "support": model.support,
            "log_loss": model.log_loss,
        })
    return {"models": models}


def _logistic_from_json(algorithm, space, state) -> None:
    from repro.algorithms.logistic_regression import _LogisticModel
    algorithm.models = {}
    algorithm._plans = {}
    for entry in state["models"]:
        target = space.by_name(entry["target"])
        algorithm.models[target.index] = _LogisticModel(
            np.array(entry["weights"]), np.array(entry["feature_means"]),
            entry["support"], entry["log_loss"])
        algorithm._plans[target.index] = algorithm._plan_for(space, target)


# -- sequence clustering ----------------------------------------------------------------------

def _sequence_to_json(algorithm) -> dict:
    return {
        "table": algorithm._table_name,
        "states": algorithm.states,
        "cluster_count": algorithm.cluster_count,
        "mixture": algorithm.mixture.tolist(),
        "initial": algorithm.initial.tolist(),
        "transition": algorithm.transition.tolist(),
        "cluster_support": algorithm.cluster_support.tolist(),
    }


def _sequence_from_json(algorithm, space, state) -> None:
    algorithm._table_name = state["table"]
    algorithm.states = state["states"]
    algorithm._state_index = {s: i for i, s in enumerate(algorithm.states)}
    algorithm.cluster_count = state["cluster_count"]
    algorithm.mixture = np.array(state["mixture"])
    algorithm.initial = np.array(state["initial"])
    algorithm.transition = np.array(state["transition"])
    algorithm.cluster_support = np.array(state["cluster_support"])


_TO_JSON = {
    "Repro_Decision_Trees": _trees_to_json,
    "Repro_Naive_Bayes": _bayes_to_json,
    "Repro_Clustering": _em_to_json,
    "Repro_KMeans": _kmeans_to_json,
    "Repro_Association_Rules": _association_to_json,
    "Repro_Linear_Regression": _regression_to_json,
    "Repro_Logistic_Regression": _logistic_to_json,
    "Repro_Sequence_Clustering": _sequence_to_json,
}

_FROM_JSON = {
    "Repro_Decision_Trees": _trees_from_json,
    "Repro_Naive_Bayes": _bayes_from_json,
    "Repro_Clustering": _em_from_json,
    "Repro_KMeans": _kmeans_from_json,
    "Repro_Association_Rules": _association_from_json,
    "Repro_Linear_Regression": _regression_from_json,
    "Repro_Logistic_Regression": _logistic_from_json,
    "Repro_Sequence_Clustering": _sequence_from_json,
}
