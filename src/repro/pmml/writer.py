"""Render trained models as PMML-inspired XML documents."""

from __future__ import annotations

import json
from typing import List
from xml.sax.saxutils import escape as _escape


def escape(text: str) -> str:
    """XML-escape including double quotes (attribute-safe)."""
    return _escape(text, {'"': "&quot;"})

from repro.core.columns import (
    ContentRole,
    ModelColumn,
    ModelDefinition,
)
from repro.lang import ast_nodes as ast
from repro.lang.formatter import format_statement
from repro.sqlstore.rowset import Rowset, RowsetColumn
from repro.sqlstore.types import TEXT
from repro.pmml.state import algorithm_state_to_json, space_to_json

PMML_VERSION = "1.0-repro"


def definition_to_ddl(definition: ModelDefinition) -> str:
    """Reconstruct the CREATE MINING MODEL statement for a definition."""
    statement = ast.CreateMiningModelStatement(
        name=definition.name,
        columns=[_column_to_ast(c) for c in definition.columns],
        algorithm=definition.algorithm,
        parameters=list(definition.parameters.items()))
    return format_statement(statement)


def _column_to_ast(column: ModelColumn) -> ast.ModelColumnDef:
    if column.is_table:
        return ast.ModelColumnDef(
            name=column.name, predict=column.predict,
            predict_only=column.predict_only,
            nested_columns=[_column_to_ast(c)
                            for c in column.nested_columns])
    if column.role is ContentRole.KEY:
        return ast.ModelColumnDef(name=column.name,
                                  data_type=column.data_type.name,
                                  content_type="KEY",
                                  sequence_time=column.sequence_time)
    if column.role is ContentRole.QUALIFIER:
        return ast.ModelColumnDef(name=column.name,
                                  data_type=column.data_type.name,
                                  qualifier=column.qualifier,
                                  qualifier_of=column.qualifier_of,
                                  not_null=column.not_null)
    return ast.ModelColumnDef(
        name=column.name, data_type=column.data_type.name,
        content_type=(column.attribute_type.value
                      if column.attribute_type else None),
        predict=column.predict, predict_only=column.predict_only,
        related_to=column.related_to, distribution=column.distribution,
        model_existence_only=column.model_existence_only,
        not_null=column.not_null,
        discretization_method=column.discretization_method,
        discretization_buckets=column.discretization_buckets,
        sequence_time=column.sequence_time)


def _data_dictionary(definition: ModelDefinition) -> List[str]:
    lines = ["  <DataDictionary>"]
    for column in definition.columns:
        lines.extend(_data_field(column, indent="    "))
    lines.append("  </DataDictionary>")
    return lines


def _data_field(column: ModelColumn, indent: str) -> List[str]:
    if column.is_table:
        lines = [f'{indent}<TableField name="{escape(column.name)}">']
        for nested in column.nested_columns:
            lines.extend(_data_field(nested, indent + "  "))
        lines.append(f"{indent}</TableField>")
        return lines
    optype = "continuous" if column.attribute_type and \
        column.attribute_type.value == "CONTINUOUS" else "categorical"
    data_type = column.data_type.name.lower() if column.data_type else ""
    return [f'{indent}<DataField name="{escape(column.name)}" '
            f'optype="{optype}" dataType="{data_type}" '
            f'role="{column.role.value.lower()}"/>']


def _mining_schema(definition: ModelDefinition) -> List[str]:
    lines = ["  <MiningSchema>"]
    for column in definition.columns:
        usage = "predicted" if column.is_output else (
            "active" if column.is_input else "supplementary")
        lines.append(f'    <MiningField name="{escape(column.name)}" '
                     f'usageType="{usage}"/>')
    lines.append("  </MiningSchema>")
    return lines


def to_pmml(model) -> str:
    """Serialize a trained model to a PMML-inspired XML string."""
    model.require_trained()
    content = model.content_root()
    state = {
        "ddl": definition_to_ddl(model.definition),
        "space": space_to_json(model.space),
        "algorithm": algorithm_state_to_json(model.algorithm),
        "insert_count": model.insert_count,
        "case_count": model.case_count,
    }
    lines = [
        '<?xml version="1.0" encoding="utf-8"?>',
        f'<PMML version="{PMML_VERSION}">',
        f'  <Header description="OLE DB DM reproduction model" '
        f'modelName="{escape(model.name)}" '
        f'algorithm="{escape(model.algorithm.SERVICE_NAME)}"/>',
    ]
    lines.extend(_data_dictionary(model.definition))
    lines.extend(_mining_schema(model.definition))
    lines.append(f'  <ModelContent nodes="{sum(1 for _ in content.walk())}">')
    for node in content.walk():
        for line in node.to_xml().splitlines():
            lines.append("    " + line)
    lines.append("  </ModelContent>")
    lines.append('  <Extension name="repro-state">')
    lines.append("    " + escape(json.dumps(state)))
    lines.append("  </Extension>")
    lines.append("</PMML>")
    return "\n".join(lines)


def write_pmml_file(model, path: str) -> None:
    """EXPORT MODEL: atomic replace, so a crash mid-export never leaves a
    truncated document over a previously good one."""
    from repro.store.atomic import atomic_write_text
    atomic_write_text(path, to_pmml(model), fault_prefix="export")


def pmml_rowset(model) -> Rowset:
    """``SELECT * FROM <model>.PMML``: one row with the document."""
    columns = [RowsetColumn("MODEL_NAME", TEXT),
               RowsetColumn("PMML", TEXT)]
    return Rowset(columns, [(model.name, to_pmml(model))])
