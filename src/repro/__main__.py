"""``python -m repro`` launches the DMX shell."""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
