"""Exception hierarchy for the OLE DB DM provider.

Every error raised by the provider derives from :class:`Error`, so callers can
catch one type at the connection boundary.  The subclasses mirror the stages of
command processing: lexing/parsing, name binding, schema validation, training,
prediction, and catalog management.
"""

from __future__ import annotations


class Error(Exception):
    """Base class for all provider errors."""


class ParseError(Error):
    """A command string could not be tokenized or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    available, so shells can point at the error position.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class BindError(Error):
    """A name (table, model, column, function, algorithm) did not resolve."""


class SchemaError(Error):
    """A statement is well-formed but violates schema rules.

    Examples: inserting the wrong number of values, duplicate column names,
    a RELATED TO target that is not in the same (nested) table, or a nested
    table without a KEY column.
    """


class TypeError_(Error):
    """A value is incompatible with the declared column type."""


class TrainError(Error):
    """Model population (INSERT INTO) failed.

    Raised for empty casesets, casesets that do not match the model's column
    structure, or algorithm-specific failures (e.g. a PREDICT column with a
    single constant value where the algorithm needs variation).
    """


class PredictionError(Error):
    """A PREDICTION JOIN or prediction function could not be evaluated."""


class NotTrainedError(PredictionError):
    """The model has been created but not yet populated (or was reset)."""


class CatalogError(Error):
    """Catalog-level failure: duplicate CREATE, DROP of a missing object."""


class CancelledError(Error):
    """The statement was cancelled cooperatively (``CANCEL <id>``).

    Raised from a cancel-token checkpoint — a batch boundary in the engine,
    a partition boundary in parallel training, or a training iteration in an
    iterative algorithm — so execution unwinds at a consistent point.  The
    statement is recorded in ``DM_QUERY_LOG`` with status ``cancelled`` and,
    being an error at the dispatch layer, is never journaled.
    """


class ProtocolError(Error):
    """A wire-protocol frame could not be read or was malformed.

    Raised by the network layer (:mod:`repro.server`, :mod:`repro.client`)
    for torn frames, oversize length prefixes, undecodable payloads, or
    out-of-sequence messages.  The peer that detects it answers with a
    typed error frame when the stream is still usable and tears the
    connection down when it is not.
    """


class ServerBusyError(Error):
    """The DMX server refused admission (capacity, queue full, or drain).

    Backpressure made typed: clients receive this instead of a hang when
    the session table and the bounded accept queue are both full, or when
    the server is draining for shutdown/checkpoint.
    """


class CapabilityError(Error):
    """The chosen mining service does not support the requested operation.

    The paper (section 2) notes that schema rowsets describe "limitations of
    the provider"; this error is how those limits surface at runtime, e.g.
    asking an association-rules model to predict a continuous attribute.
    """
