"""Validation primitives over (actual, predicted[, probability]) pairs."""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import Error


# ---------------------------------------------------------------------------
# Holdout splitting
# ---------------------------------------------------------------------------

def holdout_split(keys: Sequence[Any], test_fraction: float = 0.3,
                  seed: int = 1) -> Tuple[List[Any], List[Any]]:
    """Deterministically split case keys into (train, test).

    Uses a multiplicative hash of each key's repr so the split is stable
    across runs and independent of input order — the property you want
    when the same split must be reproduced by a separate scoring pass.
    """
    if not 0.0 < test_fraction < 1.0:
        raise Error("test_fraction must be in (0, 1)")
    train, test = [], []
    for key in keys:
        bucket = (hash((repr(key), seed)) & 0x7FFFFFFF) / 0x7FFFFFFF
        (test if bucket < test_fraction else train).append(key)
    if not train or not test:
        raise Error(
            f"holdout split produced an empty side "
            f"({len(train)} train / {len(test)} test); adjust the fraction")
    return train, test


def cross_validation_folds(keys: Sequence[Any], folds: int = 5,
                           seed: int = 1) -> List[Tuple[List[Any],
                                                        List[Any]]]:
    """Deterministic k-fold partition: [(train_keys, test_keys), ...].

    Every key lands in exactly one test fold; fold membership is a stable
    hash of the key, so reruns and reordered inputs agree.
    """
    if folds < 2:
        raise Error("cross validation needs at least 2 folds")
    assignments: Dict[Any, int] = {
        key: (hash((repr(key), seed)) & 0x7FFFFFFF) % folds
        for key in keys}
    result = []
    for fold in range(folds):
        test = [key for key in keys if assignments[key] == fold]
        train = [key for key in keys if assignments[key] != fold]
        if not test or not train:
            raise Error(
                f"fold {fold} is degenerate ({len(train)} train / "
                f"{len(test)} test); use fewer folds or more cases")
        result.append((train, test))
    return result


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------

class ClassificationReport:
    """Accuracy, per-class precision/recall, and a confusion matrix."""

    def __init__(self, pairs: Sequence[Tuple[Any, Any]]):
        if not pairs:
            raise Error("cannot build a report from zero scored cases")
        self.count = len(pairs)
        self.confusion: Dict[Tuple[Any, Any], int] = {}
        correct = 0
        for actual, predicted in pairs:
            self.confusion[(actual, predicted)] = \
                self.confusion.get((actual, predicted), 0) + 1
            if actual == predicted:
                correct += 1
        self.accuracy = correct / self.count
        self.classes = sorted(
            {a for a, _ in self.confusion} | {p for _, p in self.confusion},
            key=lambda v: ("", v) if v is None else (str(v),))

    def support(self, value: Any) -> int:
        """Number of cases whose actual class is ``value``."""
        return sum(n for (actual, _), n in self.confusion.items()
                   if actual == value)

    def precision(self, value: Any) -> Optional[float]:
        """Correct predictions of ``value`` / all predictions of it."""
        predicted = sum(n for (_, p), n in self.confusion.items()
                        if p == value)
        if predicted == 0:
            return None
        return self.confusion.get((value, value), 0) / predicted

    def recall(self, value: Any) -> Optional[float]:
        """Correct predictions of ``value`` / all actual occurrences."""
        actual = self.support(value)
        if actual == 0:
            return None
        return self.confusion.get((value, value), 0) / actual

    def f1(self, value: Any) -> Optional[float]:
        """Harmonic mean of precision and recall (None if undefined)."""
        precision = self.precision(value)
        recall = self.recall(value)
        if not precision or not recall:
            return None
        return 2 * precision * recall / (precision + recall)

    def majority_baseline(self) -> float:
        """Accuracy of always predicting the most common actual class."""
        best = max(self.support(value) for value in self.classes)
        return best / self.count

    def pretty(self) -> str:
        lines = [f"cases: {self.count}   accuracy: {self.accuracy:.3f}   "
                 f"baseline: {self.majority_baseline():.3f}"]
        header = "actual \\ predicted".ljust(20) + " ".join(
            str(c).rjust(10) for c in self.classes)
        lines.append(header)
        for actual in self.classes:
            cells = [str(self.confusion.get((actual, predicted), 0))
                     .rjust(10) for predicted in self.classes]
            lines.append(str(actual).ljust(20) + " ".join(cells))
        for value in self.classes:
            precision = self.precision(value)
            recall = self.recall(value)
            lines.append(
                f"class {value!r:12} precision="
                f"{'-' if precision is None else f'{precision:.3f}'} "
                f"recall={'-' if recall is None else f'{recall:.3f}'} "
                f"support={self.support(value)}")
        return "\n".join(lines)


def classification_report(
        pairs: Sequence[Tuple[Any, Any]]) -> ClassificationReport:
    """Build a :class:`ClassificationReport` from (actual, predicted)."""
    return ClassificationReport(list(pairs))


# ---------------------------------------------------------------------------
# Regression
# ---------------------------------------------------------------------------

class RegressionReport:
    """MAE, RMSE and R² over (actual, predicted) numeric pairs."""

    def __init__(self, pairs: Sequence[Tuple[float, float]]):
        cleaned = [(float(a), float(p)) for a, p in pairs
                   if a is not None and p is not None]
        if not cleaned:
            raise Error("cannot build a report from zero scored cases")
        self.count = len(cleaned)
        errors = [a - p for a, p in cleaned]
        self.mean_absolute_error = sum(abs(e) for e in errors) / self.count
        self.root_mean_squared_error = math.sqrt(
            sum(e * e for e in errors) / self.count)
        mean_actual = sum(a for a, _ in cleaned) / self.count
        total = sum((a - mean_actual) ** 2 for a, _ in cleaned)
        residual = sum(e * e for e in errors)
        self.r_squared = 1.0 - residual / total if total > 0 else 0.0

    def pretty(self) -> str:
        return (f"cases: {self.count}   "
                f"MAE: {self.mean_absolute_error:.4f}   "
                f"RMSE: {self.root_mean_squared_error:.4f}   "
                f"R^2: {self.r_squared:.4f}")


def regression_report(
        pairs: Sequence[Tuple[float, float]]) -> RegressionReport:
    """Build a :class:`RegressionReport` from (actual, predicted) pairs."""
    return RegressionReport(list(pairs))


# ---------------------------------------------------------------------------
# Lift charts
# ---------------------------------------------------------------------------

class LiftChart:
    """Decile lift of a scored binary outcome.

    Cases are sorted by descending score; ``points`` holds, per decile
    boundary, the cumulative fraction of all positive cases captured.  A
    random model captures x% of positives in the top x% of cases; the lift
    at a decile is captured / population fraction.
    """

    def __init__(self, scored: Sequence[Tuple[bool, float]],
                 buckets: int = 10):
        if not scored:
            raise Error("cannot build a lift chart from zero scored cases")
        if buckets < 1:
            raise Error("lift chart needs at least one bucket")
        ranked = sorted(scored, key=lambda pair: -pair[1])
        self.count = len(ranked)
        self.positives = sum(1 for hit, _ in ranked if hit)
        if self.positives == 0:
            raise Error("no positive cases; the lift chart is undefined")
        self.points: List[Tuple[float, float]] = []
        for bucket in range(1, buckets + 1):
            cutoff = round(self.count * bucket / buckets)
            captured = sum(1 for hit, _ in ranked[:cutoff] if hit)
            self.points.append((cutoff / self.count,
                                captured / self.positives))

    def lift_at(self, population_fraction: float) -> float:
        """Lift over random at the closest computed decile."""
        point = min(self.points,
                    key=lambda p: abs(p[0] - population_fraction))
        return point[1] / point[0] if point[0] > 0 else 0.0

    def area_over_random(self) -> float:
        """Mean (captured - population) over the deciles; 0 for random."""
        return sum(captured - population
                   for population, captured in self.points) / \
            len(self.points)

    def pretty(self) -> str:
        lines = [f"{self.positives}/{self.count} positives"]
        for population, captured in self.points:
            bar = "#" * int(captured * 40)
            lines.append(f"  top {population:4.0%}: captured "
                         f"{captured:6.1%}  lift "
                         f"{captured / population:4.2f}  {bar}")
        return "\n".join(lines)


def lift_chart(scored: Sequence[Tuple[bool, float]],
               buckets: int = 10) -> LiftChart:
    """Build a :class:`LiftChart` from (is_positive, score) pairs."""
    return LiftChart(list(scored), buckets)


# ---------------------------------------------------------------------------
# End-to-end scoring through PREDICTION JOIN
# ---------------------------------------------------------------------------

def score_classifier(connection, model_name: str, target_column: str,
                     test_source_sql: str, key_column: str,
                     actuals: Dict[Any, Any]):
    """Score a model and return (report, lift chart or None).

    ``test_source_sql`` is the source query/SHAPE for a NATURAL PREDICTION
    JOIN; it must project ``key_column``.  ``actuals`` maps key values to
    the true target values.  The lift chart is computed against the
    modal actual class when probabilities are available.
    """
    from repro.lang.formatter import quote_ident

    query = (
        f"SELECT t.{quote_ident(key_column)}, "
        f"{quote_ident(model_name)}.{quote_ident(target_column)}, "
        f"PredictProbability({quote_ident(target_column)}) "
        f"FROM {quote_ident(model_name)} NATURAL PREDICTION JOIN "
        f"({test_source_sql}) AS t")
    scored = connection.execute(query)
    pairs = []
    probability_rows = []
    for key, predicted, probability in scored.rows:
        if key not in actuals:
            raise Error(f"no actual value for case key {key!r}")
        pairs.append((actuals[key], predicted))
        probability_rows.append((actuals[key], predicted, probability))
    report = classification_report(pairs)

    chart = None
    modal = max(report.classes, key=report.support)
    usable = [(actual == modal,
               probability if predicted == modal
               else 1.0 - (probability or 0.0))
              for actual, predicted, probability in probability_rows
              if probability is not None]
    if usable and any(hit for hit, _ in usable):
        chart = lift_chart(usable)
    return report, chart
