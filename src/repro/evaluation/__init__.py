"""Model validation tooling: accuracy, confusion matrices, lift charts.

The paper's deployment story implies a validation loop — train, score a
held-out caseset through PREDICTION JOIN, compare against actuals.  This
package provides that loop's measurement half (the "mining accuracy chart"
of later SQL Server releases): classification and regression reports over
(actual, predicted) pairs, decile lift charts over scored probabilities,
and a convenience runner that scores a model via NATURAL PREDICTION JOIN
and joins the results back to the truth.
"""

from repro.evaluation.validation import (
    ClassificationReport,
    RegressionReport,
    LiftChart,
    classification_report,
    cross_validation_folds,
    holdout_split,
    lift_chart,
    regression_report,
    score_classifier,
)

__all__ = [
    "ClassificationReport",
    "RegressionReport",
    "LiftChart",
    "classification_report",
    "cross_validation_folds",
    "holdout_split",
    "lift_chart",
    "regression_report",
    "score_classifier",
]
