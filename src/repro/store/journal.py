"""The append-only, checksummed write-ahead statement journal.

Every mutating statement a durable provider acknowledges is first appended
here and fsync'd.  The on-disk format is one record per line::

    DMJ1 <crc32:08x> <compact-json-payload>\\n

``DMJ1`` is the format magic (bump it to evolve the record layout), the
checksum is CRC-32 over the UTF-8 payload bytes, and the payload is
``json.dumps(record, sort_keys=True, separators=(",", ":"))`` — compact and
byte-deterministic, so the format can be golden-pinned.  JSON escapes every
raw newline, so a record always occupies exactly one line and a torn
(partially persisted) record can only ever be the file's final line.

Recovery semantics (:func:`read_journal`):

* a well-formed prefix of records is returned in order;
* a damaged or incomplete **final** record is a *torn tail* — the expected
  signature of a crash mid-append — and is skipped and counted, with the
  byte offset of the last good record returned so the caller can truncate
  the tail before appending again;
* a damaged record **followed by further data** is not a torn write, it is
  corruption, and raises :class:`JournalCorruptError` rather than silently
  replaying a damaged history.
"""

from __future__ import annotations

import json
import os
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import Error

MAGIC = b"DMJ1"


class JournalCorruptError(Error):
    """A damaged record in the journal interior (not a torn tail)."""


def encode_record(record: Dict[str, Any]) -> bytes:
    """Serialise one journal record to its durable line (with newline)."""
    payload = json.dumps(record, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    checksum = zlib.crc32(payload) & 0xFFFFFFFF
    return MAGIC + b" " + f"{checksum:08x}".encode("ascii") + b" " + \
        payload + b"\n"


def decode_record(line: bytes) -> Optional[Dict[str, Any]]:
    """Decode one journal line; ``None`` if damaged/incomplete."""
    if not line.startswith(MAGIC + b" "):
        return None
    rest = line[len(MAGIC) + 1:]
    if len(rest) < 9 or rest[8:9] != b" ":
        return None
    checksum_hex, payload = rest[:8], rest[9:]
    try:
        expected = int(checksum_hex, 16)
    except ValueError:
        return None
    if (zlib.crc32(payload) & 0xFFFFFFFF) != expected:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    return record


def read_journal(path: str) -> Tuple[List[Dict[str, Any]], int, int]:
    """Read a journal file: ``(records, torn_records, valid_end_offset)``.

    ``torn_records`` is 1 when a damaged/partial trailing record was
    skipped, else 0.  ``valid_end_offset`` is the byte offset just past the
    last good record — the caller truncates to it before appending, so a
    skipped torn tail can never end up in the journal *interior*.
    """
    try:
        with open(path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return [], 0, 0

    records: List[Dict[str, Any]] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            # No terminator: a partial trailing record (torn write).
            return records, 1, offset
        line = data[offset:newline]
        record = decode_record(line)
        if record is None:
            if newline == len(data) - 1:
                # Damaged but final line: torn tail, skip and report.
                return records, 1, offset
            raise JournalCorruptError(
                f"journal {path!r} is corrupt at byte {offset}: damaged "
                f"record followed by further data (not a torn tail)")
        records.append(record)
        offset = newline + 1
    return records, 0, offset


class JournalWriter:
    """Appends fsync'd records to a journal file.

    ``truncate_at`` (from :func:`read_journal`'s ``valid_end_offset``) chops
    a torn tail left by a previous crash before the first new append.
    ``faults`` threads the crash-point harness through the append path.
    """

    def __init__(self, path: str, truncate_at: Optional[int] = None,
                 faults=None):
        self.path = path
        self.faults = faults
        size = os.path.getsize(path) if os.path.exists(path) else 0
        self._handle = open(path, "ab")
        if truncate_at is not None and size != truncate_at:
            self._handle.truncate(truncate_at)
            os.fsync(self._handle.fileno())

    def append(self, record: Dict[str, Any]) -> None:
        """Durably append one record: write + flush + fsync, then return."""
        line = encode_record(record)
        faults = self.faults
        if faults is not None:
            exc = faults.check("journal.torn_write")
            if exc is not None:
                # Simulated torn write: persist only half the record's
                # bytes, then die.  Recovery must skip this tail.
                self._handle.write(line[:max(1, len(line) // 2)])
                self._handle.flush()
                os.fsync(self._handle.fileno())
                raise exc
            faults.hit("journal.before_write")
        self._handle.write(line)
        self._handle.flush()
        if faults is not None:
            faults.hit("journal.before_fsync")
        os.fsync(self._handle.fileno())
        if faults is not None:
            faults.hit("journal.after_fsync")

    def reset(self) -> None:
        """Truncate the journal to empty (checkpoint took ownership)."""
        self._handle.truncate(0)
        self._handle.seek(0)
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        try:
            self._handle.close()
        except OSError:
            pass
