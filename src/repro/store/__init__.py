"""Crash-safe provider durability: journal, snapshots, recovery.

The paper motivates OLE DB DM with the model *life cycle* — "how to store,
maintain, and refresh" models inside the database.  This package gives the
provider database-grade durability for that life cycle:

* :mod:`repro.store.atomic` — atomic file replacement (temp file + fsync +
  ``os.replace``), shared by provider snapshots and PMML export;
* :mod:`repro.store.journal` — an append-only, checksummed write-ahead
  statement journal with torn-tail detection;
* :mod:`repro.store.durable` — :class:`DurableStore`, which coordinates
  journal appends, periodic atomic snapshots (checkpoints), and recovery;
* :mod:`repro.store.faults` — the fault-injection harness the crash-safety
  test suite uses to kill the provider at every journal offset.

``repro.connect(durable_path=...)`` is the front door: statements are
journaled and fsync'd before they are acknowledged, and reopening the same
path replays snapshot + journal tail so no acknowledged statement is lost.
"""

from repro.store.atomic import atomic_write_text
from repro.store.durable import DurableStore
from repro.store.faults import FaultInjector, InjectedCrash
from repro.store.journal import (
    JournalCorruptError,
    JournalWriter,
    decode_record,
    encode_record,
    read_journal,
)

__all__ = [
    "DurableStore",
    "FaultInjector",
    "InjectedCrash",
    "JournalCorruptError",
    "JournalWriter",
    "atomic_write_text",
    "decode_record",
    "encode_record",
    "read_journal",
]
