"""Fault injection for the durability layer.

Crash safety cannot be tested by waiting for crashes: the store threads a
:class:`FaultInjector` through its write paths and *asks* it at every named
crash point.  Tests arm the injector to raise :class:`InjectedCrash` (a
simulated process death — the test then abandons the provider object and
recovers from disk) or an :class:`OSError` (a simulated I/O failure the
provider must surface without corrupting the on-disk state).

Crash points currently wired in (see the modules that hit them):

========================== ====================================================
point                      fires
========================== ====================================================
``journal.before_write``   before the record's bytes reach the file
``journal.torn_write``     after *half* the record's bytes are written and
                           flushed — the classic torn/partial trailing record
``journal.before_fsync``   record fully written+flushed, not yet fsync'd
``journal.after_fsync``    record durable, acknowledgement not yet returned
``snapshot.before_write``  before the temp snapshot file is written
``snapshot.before_replace`` temp file durable, ``os.replace`` not yet done
``snapshot.after_replace`` snapshot replaced, journal not yet truncated
``checkpoint.after_truncate`` checkpoint fully applied, before return
========================== ====================================================

:class:`InjectedCrash` deliberately subclasses ``BaseException`` so no
``except Exception`` recovery path in the provider can swallow a simulated
process death.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional


class InjectedCrash(BaseException):
    """A simulated process death raised at an armed crash point."""


class FaultInjector:
    """Arm named fault points; each armed fault fires exactly once.

    ``arm(point)`` schedules an :class:`InjectedCrash` on the next hit of
    ``point``; ``arm(point, after=k)`` skips the first ``k`` hits (so a test
    can crash on the *n*-th journal append); ``arm(point, exc=OSError(...))``
    raises an injected I/O error instead of a crash.
    """

    def __init__(self):
        self._armed: Dict[str, List] = {}
        self._lock = threading.Lock()
        self.fired: List[str] = []

    def arm(self, point: str, *, after: int = 0,
            exc: Optional[BaseException] = None) -> None:
        with self._lock:
            self._armed[point] = [after, exc]

    def disarm(self, point: str) -> None:
        with self._lock:
            self._armed.pop(point, None)

    def check(self, point: str) -> Optional[BaseException]:
        """Consume an armed fault if it is due; return the exception to raise.

        Returns ``None`` when the point is unarmed or its ``after`` countdown
        has not elapsed (the countdown is decremented per hit).
        """
        with self._lock:
            entry = self._armed.get(point)
            if entry is None:
                return None
            if entry[0] > 0:
                entry[0] -= 1
                return None
            del self._armed[point]
            self.fired.append(point)
            return entry[1] if entry[1] is not None else InjectedCrash(point)

    def hit(self, point: str) -> None:
        """Raise the armed exception for ``point`` if one is due."""
        exc = self.check(point)
        if exc is not None:
            raise exc
