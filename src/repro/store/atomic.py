"""Atomic durable file replacement: temp file + fsync + ``os.replace``.

A plain ``open(path, "w")`` truncates the target before the new bytes are
safely on disk — a crash mid-write destroys the only copy.  This helper is
the one write path shared by provider snapshots (``save_provider``, the
durable store's checkpoints) and PMML export: the new content is written to
a temporary sibling, flushed and fsync'd, and only then swapped in with
``os.replace`` (atomic on POSIX and Windows).  A crash at *any* point
leaves either the complete old file or the complete new file, never a
truncated hybrid.
"""

from __future__ import annotations

import os
import tempfile
from typing import Optional


def fsync_directory(path: str) -> None:
    """fsync a directory so a rename/create within it is durable.

    Best-effort: some platforms/filesystems refuse to open directories
    (notably Windows), which is fine — ``os.replace`` is still atomic there.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str, text: str, *, faults=None,
                      fault_prefix: str = "atomic",
                      encoding: str = "utf-8") -> None:
    """Atomically replace ``path`` with ``text``, durably.

    ``faults`` (a :class:`~repro.store.faults.FaultInjector`) is consulted at
    ``<fault_prefix>.before_write``, ``.before_replace``, and
    ``.after_replace`` so the crash-safety suite can kill the writer at each
    stage and assert the previous file survives intact.
    """
    directory = os.path.dirname(os.path.abspath(path))
    if faults is not None:
        faults.hit(f"{fault_prefix}.before_write")
    fd, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        if faults is not None:
            faults.hit(f"{fault_prefix}.before_replace")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise
    fsync_directory(directory)
    if faults is not None:
        faults.hit(f"{fault_prefix}.after_replace")
