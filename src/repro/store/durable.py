"""The durable store: write-ahead journal + atomic checkpoints + recovery.

One :class:`DurableStore` lives under a directory and owns two files::

    <path>/snapshot.json   last checkpoint (provider snapshot, format 2,
                           carrying the journal high-water mark `last_seq`)
    <path>/journal.dmj     statements acknowledged since that checkpoint

Protocol (the invariants the crash-safety suite enforces):

* **ack ordering** — a mutating statement is applied in memory, then its
  journal record is appended and fsync'd, and only then does the provider
  acknowledge it.  A crash before the fsync loses only unacknowledged work;
  a crash after it is replayed on recovery.  An acknowledged statement is
  therefore never lost.
* **checkpoint** — the snapshot is replaced atomically (temp + fsync +
  ``os.replace``) *before* the journal is truncated.  A crash between the
  two leaves journal records whose ``seq`` the new snapshot already covers;
  recovery skips them by sequence number, so replay is exactly-once.
* **recovery** — load the snapshot (if any), replay journal records with
  ``seq`` beyond it, skip-and-count a torn trailing record, and truncate
  the tail so the torn bytes can never end up mid-file.  Interior damage
  raises instead of silently replaying a corrupt history.
* **failed appends** — an I/O error while journaling (memory already
  mutated, disk not) flips the store to *broken*: further mutations are
  refused until the path is reopened, so the memory/disk divergence cannot
  widen.  Reads keep working.

Everything is observable: ``store.journal_appends``, ``store.checkpoints``,
``store.recovered_statements``, and ``store.torn_records_skipped`` counters
land in the provider's metrics registry and surface through
``SELECT * FROM $SYSTEM.DM_PROVIDER_METRICS``.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, Optional

from repro.errors import Error
from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_statement
from repro.store.atomic import atomic_write_text
from repro.store.journal import JournalWriter, read_journal

SNAPSHOT_FILE = "snapshot.json"
JOURNAL_FILE = "journal.dmj"

DEFAULT_CHECKPOINT_INTERVAL = 128


class DurableStore:
    """Journal + snapshot coordinator for one provider directory.

    ``checkpoint_interval`` is the auto-checkpoint policy: after that many
    journaled statements the store snapshots and truncates (0 disables
    auto-checkpointing; ``checkpoint()`` can always be called explicitly).
    ``faults`` threads the fault-injection harness through every write
    path.
    """

    def __init__(self, path: str,
                 checkpoint_interval: int = DEFAULT_CHECKPOINT_INTERVAL,
                 faults=None, metrics=None):
        os.makedirs(path, exist_ok=True)
        self.root = path
        self.snapshot_path = os.path.join(path, SNAPSHOT_FILE)
        self.journal_path = os.path.join(path, JOURNAL_FILE)
        self.checkpoint_interval = max(0, int(checkpoint_interval))
        self.faults = faults
        self.metrics = metrics
        self.broken = False
        self.last_seq = 0
        self._pending = 0
        self._writer: Optional[JournalWriter] = None
        self._lock = threading.Lock()
        # Serialises {apply in memory, append to journal} per mutating
        # statement so the journal order always equals the apply order —
        # otherwise two concurrent writers could replay in a different
        # order than they executed.  Reentrant: an auto-checkpoint runs
        # inside the statement that triggered it.
        self.mutation_lock = threading.RLock()

    # -- metrics -----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(f"store.{name}").inc(amount)

    # -- recovery ----------------------------------------------------------

    def recover(self, provider) -> Dict[str, Any]:
        """Rebuild ``provider`` from snapshot + journal tail; open for append.

        Returns a summary dict (``snapshot_seq``, ``replayed``,
        ``torn_records``) the CLI prints on ``--durable`` startup.
        """
        from repro.core.persistence import restore_into

        snapshot_seq = 0
        if os.path.exists(self.snapshot_path):
            with open(self.snapshot_path, encoding="utf-8") as handle:
                snapshot_seq = restore_into(provider, handle.read())
        records, torn, valid_end = read_journal(self.journal_path)
        replayed = 0
        highest = snapshot_seq
        for record in records:
            seq = int(record.get("seq", 0))
            if seq <= snapshot_seq:
                # Already folded into the snapshot: the previous process
                # died between snapshot replace and journal truncation.
                highest = max(highest, seq)
                continue
            self._replay(provider, record)
            replayed += 1
            highest = max(highest, seq)
        self.last_seq = highest
        self._pending = replayed
        self._writer = JournalWriter(self.journal_path,
                                     truncate_at=valid_end,
                                     faults=self.faults)
        self._count("recovered_statements", replayed)
        self._count("torn_records_skipped", torn)
        if self.metrics is not None:
            self.metrics.gauge("store.last_seq").set(self.last_seq)
        return {"snapshot_seq": snapshot_seq, "replayed": replayed,
                "torn_records": torn}

    def _replay(self, provider, record: Dict[str, Any]) -> None:
        """Re-execute one journaled statement against the provider."""
        if record.get("kind") == "IMPORT" and "pmml" in record:
            # IMPORT embeds the document so replay does not depend on the
            # original external file still existing.
            from repro.pmml.reader import read_pmml
            model = read_pmml(record["pmml"])
            if record.get("rename"):
                model.definition.name = record["rename"]
            provider.models[model.name.upper()] = model
            return
        provider.execute_ast(parse_statement(record["stmt"]))

    # -- the write path ----------------------------------------------------

    def ensure_healthy(self) -> None:
        if self.broken:
            raise Error(
                f"the durable store at {self.root!r} failed a journal or "
                f"checkpoint write and is read-only; reopen the path with "
                f"connect(durable_path=...) to recover")
        if self._writer is None:
            raise Error("durable store is not open (recover() not run)")

    def record_statement(self, provider, statement: ast.Statement,
                         command: str) -> None:
        """Journal one acknowledged-about-to-be statement, durably.

        Called by the provider *after* the in-memory mutation succeeded and
        *before* returning to the caller.  Raises (without acknowledging)
        if the record cannot be made durable.
        """
        record: Dict[str, Any] = {
            "seq": self.last_seq + 1,
            "kind": statement_kind_name(statement, provider),
            "stmt": command,
        }
        if isinstance(statement, ast.ImportModelStatement):
            try:
                with open(statement.path, encoding="utf-8") as handle:
                    record["pmml"] = handle.read()
            except OSError:
                pass  # replay falls back to re-reading the path
            record["rename"] = statement.rename_to
        with self._lock:
            self.ensure_healthy()
            try:
                self._writer.append(record)
            except OSError as exc:
                self.broken = True
                raise Error(
                    f"journal append failed ({exc}); the statement executed "
                    f"in memory but is NOT durable — the store is now "
                    f"read-only until reopened") from exc
            self.last_seq += 1
            self._pending += 1
            self._count("journal_appends")
            if self.metrics is not None:
                self.metrics.gauge("store.last_seq").set(self.last_seq)
            due = (self.checkpoint_interval and
                   self._pending >= self.checkpoint_interval)
        if due:
            self.checkpoint(provider)

    def checkpoint(self, provider) -> None:
        """Snapshot the provider atomically, then truncate the journal."""
        from repro.core.persistence import dump_provider

        with self.mutation_lock, self._lock:
            self.ensure_healthy()
            text = dump_provider(provider, last_seq=self.last_seq)
            try:
                atomic_write_text(self.snapshot_path, text,
                                  faults=self.faults,
                                  fault_prefix="snapshot")
                self._writer.reset()
            except OSError as exc:
                self.broken = True
                raise Error(
                    f"checkpoint failed ({exc}); the store is now "
                    f"read-only until reopened") from exc
            if self.faults is not None:
                self.faults.hit("checkpoint.after_truncate")
            self._pending = 0
            self._count("checkpoints")

    def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            self._writer = None


#: AST nodes whose successful execution mutates provider state and must be
#: journaled before acknowledgement.  SELECT/UNION/TRACE/EXPORT are not
#: provider mutations (EXPORT writes an external file the journal does not
#: own).
MUTATING_STATEMENTS = (
    ast.CreateMiningModelStatement,
    ast.InsertModelStatement,
    ast.InsertValuesStatement,
    ast.DeleteModelStatement,
    ast.DeleteStatement,
    ast.DropMiningModelStatement,
    ast.DropTableStatement,
    ast.ImportModelStatement,
    ast.CreateTableStatement,
    ast.CreateViewStatement,
    ast.CreateIndexStatement,
    ast.DropIndexStatement,
    ast.UpdateStatement,
    # Rebuilds no stored rows, but replay must re-run it so a recovered
    # catalog carries the same statistics objects (UPDATE STATISTICS can
    # enable statistics on tables created without them).
    ast.UpdateStatisticsStatement,
)


def is_mutating_statement(statement: ast.Statement) -> bool:
    return isinstance(statement, MUTATING_STATEMENTS)


def statement_kind_name(statement: ast.Statement, provider) -> str:
    """The journal's ``kind`` tag (shared with the query-log classifier)."""
    from repro.core.provider import _statement_kind
    return _statement_kind(statement, provider)
