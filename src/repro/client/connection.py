"""The network client: a drop-in ``Connection`` over the wire protocol.

:class:`Connection` here mirrors the embedded
:class:`repro.core.provider.Connection` surface — ``execute``,
``execute_stream``, ``cancel``, ``execute_script``, context-manager close
— so application code and the differential test grid can swap transports
by changing only how the connection is constructed.  Errors raised by the
remote provider are reconstructed into the same :mod:`repro.errors`
classes, and streamed results arrive as a lazy
:class:`~repro.sqlstore.rowset.RowStream` fed batch-by-batch off the
socket.
"""

from __future__ import annotations

import socket
import threading
from typing import Any, List, Optional

from repro.errors import Error, ProtocolError
from repro.server import protocol
from repro.sqlstore.rowset import RowStream


class Connection:
    """A session on a remote DMX server.

    One socket, one session: the hello/welcome handshake runs in the
    constructor, so a constructed connection is admitted and live.  The
    per-session ``batch_size`` and ``max_dop`` knobs are negotiated at
    hello time — ``max_dop`` caps the server-side degree of parallelism
    for every statement this session runs, ``batch_size`` is the default
    granularity of ``execute_stream``.

    ``cancel`` opens a second, short-lived control connection (the session
    socket may be busy carrying the very statement being cancelled),
    authenticated with the session id and secret issued at hello.
    """

    def __init__(self, host: str, port: int,
                 batch_size: Optional[int] = None,
                 max_dop: Optional[int] = None,
                 timeout: Optional[float] = None):
        self.host = host
        self.port = int(port)
        self.batch_size = batch_size
        self.max_dop = max_dop
        self._closed = False
        # One request/response exchange at a time per session; the lock
        # also keeps a streaming read from interleaving with execute().
        self._lock = threading.Lock()
        self._sock = socket.create_connection((host, self.port),
                                              timeout=timeout)
        self._send({"op": "hello",
                    "protocol": protocol.PROTOCOL_VERSION,
                    "batch_size": batch_size,
                    "max_dop": max_dop})
        welcome = self._recv()
        self.session_id = welcome["session"]
        self._secret = welcome["secret"]

    # -- wire plumbing --------------------------------------------------------

    def _send(self, message: dict) -> None:
        protocol.send_frame(self._sock, message)

    def _recv(self) -> dict:
        """One reply frame; raises the remote error or on unexpected EOF."""
        frame, _ = protocol.recv_frame(self._sock)
        if frame is None:
            self._closed = True
            raise ProtocolError(
                "server closed the connection mid-conversation")
        if "error" in frame:
            raise protocol.error_from_wire(frame["error"])
        return frame

    def _require_open(self) -> None:
        if self._closed:
            raise Error("connection is closed")

    # -- the embedded-compatible surface --------------------------------------

    def execute(self, command: str) -> Any:
        """Execute one SQL or DMX command string on the remote provider."""
        self._require_open()
        with self._lock:
            self._send({"op": "execute", "statement": command})
            reply = self._recv()
        return protocol.result_from_wire(reply["result"])

    def execute_stream(self, command: str,
                       batch_size: Optional[int] = None) -> RowStream:
        """Execute one SELECT as a single-use stream of row batches.

        Column metadata arrives eagerly (statement errors raise here, as
        embedded); rows are pulled off the socket lazily, one batch frame
        per ``batches()`` step, so an abandoned stream stops costing the
        wire as soon as the connection is closed.  Mid-stream errors from
        the server (e.g. a CANCEL landing between batches) re-raise from
        the batch iterator, where the embedded stream would have raised.
        """
        self._require_open()
        self._lock.acquire()
        try:
            self._send({"op": "execute_stream", "statement": command,
                        "batch_size": batch_size})
            header = self._recv()
        except BaseException:
            self._lock.release()
            raise
        columns = protocol.columns_from_wire(header["columns"])

        def produce():
            # The session lock is held until the stream is drained or the
            # producer is abandoned, keeping frames strictly sequential.
            try:
                while True:
                    frame = self._recv()
                    if frame.get("end"):
                        return
                    yield protocol.decode_rows(frame["batch"])
            finally:
                self._lock.release()

        return RowStream(columns, produce())

    def cancel(self, statement_id: int) -> str:
        """Request cooperative cancellation of a live statement by id.

        Runs out of band on a fresh control connection, so it works while
        this session's socket is busy executing the target.  The server
        scopes the cancel to this session: cancelling another session's
        statement is refused.
        """
        self._require_open()
        control = socket.create_connection((self.host, self.port),
                                           timeout=10.0)
        try:
            protocol.send_frame(control, {
                "op": "cancel",
                "session": self.session_id,
                "secret": self._secret,
                "statement": statement_id,
            })
            frame, _ = protocol.recv_frame(control)
            if frame is None:
                raise ProtocolError(
                    "server closed the control connection without a reply")
            if "error" in frame:
                raise protocol.error_from_wire(frame["error"])
            return frame["message"]
        finally:
            control.close()

    def execute_script(self, script: str) -> List[Any]:
        """Execute ';'-separated statements; returns each result."""
        from repro.core.provider import split_statements
        return [self.execute(command)
                for command in split_statements(script)]

    def ping(self) -> bool:
        """Round-trip a no-op frame; True while the session is healthy."""
        self._require_open()
        with self._lock:
            self._send({"op": "ping"})
            return bool(self._recv().get("pong"))

    def close(self) -> None:
        """Say goodbye (best effort) and release the socket. Idempotent."""
        if self._closed:
            return
        self._closed = True
        try:
            if self._lock.acquire(blocking=False):
                # Only hand-shake the goodbye on an idle session; a live
                # stream's frames must not be interleaved with ours.
                try:
                    self._send({"op": "goodbye"})
                    protocol.recv_frame(self._sock)
                except (Error, OSError):
                    pass
                finally:
                    self._lock.release()
        finally:
            try:
                self._sock.close()
            except OSError:
                pass

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def connect(host: str, port: int, **kwargs) -> Connection:
    """Open a network connection to a running DMX server.

    Keyword arguments (``batch_size``, ``max_dop``, ``timeout``) become
    the per-session knobs negotiated in the hello handshake.
    """
    return Connection(host, port, **kwargs)
