"""The DMX network client.

``repro.client.connect(host, port)`` opens a session on a running
:class:`repro.server.DmxServer` and returns a :class:`Connection` that is
drop-in compatible with the embedded one — same ``execute`` /
``execute_stream`` / ``cancel`` surface, same :mod:`repro.errors` types.
"""

from repro.client.connection import Connection, connect

__all__ = ["Connection", "connect"]
