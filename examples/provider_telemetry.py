"""Provider telemetry: the observability layer, queried with SQL.

Runs a small mining workload (create, train, predict — plus one statement
that fails on purpose), then inspects what the provider recorded about
itself, all through the same statement surface:

1. ``TRACE ON`` and the per-statement span trees (``TRACE LAST``);
2. ``$SYSTEM.DM_QUERY_LOG`` — the statement ring, including the error row;
3. ``$SYSTEM.DM_TRACE_EVENTS`` — the span rows behind the training
   statement, filtered with a WHERE clause like any other rowset;
4. ``$SYSTEM.DM_PROVIDER_METRICS`` — latency percentiles and totals.

Run:  python examples/provider_telemetry.py
"""

import repro
from repro.datagen import WarehouseConfig, load_warehouse
from repro.errors import Error

TRAIN = """
    INSERT INTO [Age Telemetry] ([Customer ID], Gender, Age,
        [Product Purchases]([Product Name]))
    SHAPE {SELECT [Customer ID], Gender, Age FROM Customers
           ORDER BY [Customer ID]}
    APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
            RELATE [Customer ID] TO CustID) AS [Product Purchases]
"""

PREDICT = """
    SELECT t.[Customer ID], [Age Telemetry].Age
    FROM [Age Telemetry] NATURAL PREDICTION JOIN
        (SELECT [Customer ID], Gender FROM Customers
         ORDER BY [Customer ID]) AS t
"""


def main() -> None:
    conn = repro.connect()
    load_warehouse(conn.database, WarehouseConfig(customers=300))

    # -- 1. trace the workload --------------------------------------------
    print(conn.execute("TRACE ON"))
    conn.execute("""
        CREATE MINING MODEL [Age Telemetry] (
            [Customer ID] LONG KEY,
            Gender TEXT DISCRETE,
            Age DOUBLE DISCRETIZED(EQUAL_COUNT, 3) PREDICT,
            [Product Purchases] TABLE ([Product Name] TEXT KEY))
        USING Microsoft_Decision_Trees
    """)
    conn.execute(TRAIN)
    conn.execute(PREDICT)
    print("\nSpan tree of the last statement (the prediction join):")
    print(conn.execute("TRACE LAST"))

    # A statement that fails on purpose: error rows are telemetry too.
    try:
        conn.execute("SELECT * FROM [Age Telemetry] PREDICTION JOIN "
                     "Nonexistent AS t ON [Age Telemetry].Age = t.Age")
    except Error as exc:
        print(f"\nDeliberate failure recorded: {exc}")

    # -- 2. the query log --------------------------------------------------
    print("\nQuery log (one row per statement, ring-buffered):")
    log = conn.execute("""
        SELECT STATEMENT_ID, KIND, STATUS, DURATION_MS, ROWS_SCANNED, CASES
        FROM $SYSTEM.DM_QUERY_LOG
    """)
    print(log.pretty())

    # -- 3. span rows, filtered like any rowset ---------------------------
    print("\nTrace events of the training statement (KIND = 'TRAIN'):")
    events = conn.execute("""
        SELECT e.SPAN_ID, e.SPAN, e.DURATION_MS, e.COUNTERS
        FROM $SYSTEM.DM_TRACE_EVENTS e
        JOIN $SYSTEM.DM_QUERY_LOG q ON e.STATEMENT_ID = q.STATEMENT_ID
        WHERE q.KIND = 'TRAIN'
    """)
    print(events.pretty())

    # -- 4. the metrics registry ------------------------------------------
    print("\nProvider metrics (statement latencies and activity totals):")
    metrics = conn.execute("""
        SELECT METRIC, KIND, VALUE, P50, P95
        FROM $SYSTEM.DM_PROVIDER_METRICS
        WHERE METRIC LIKE 'statements.%' OR METRIC LIKE 'training.%'
    """)
    print(metrics.pretty())

    total = conn.provider.metrics.counter("statements.total").value
    print(f"\nStatements observed by the provider: {total:g}")


if __name__ == "__main__":
    main()
