"""Customer segmentation: EM clustering, cluster browsing, PMML export.

Exercises the "segmentation" capability of the provider (paper section 2):
clusters customers on demographics plus purchase behaviour, inspects the
clusters through the content graph, uses the cluster UDFs in a PREDICTION
JOIN, shows that a clustering model can also fill in a PREDICT column, and
ends with the PMML persistence story of section 4.

Run:  python examples/customer_segmentation.py
"""

import os
import tempfile

import repro
from repro.datagen import WarehouseConfig, load_warehouse


def main() -> None:
    conn = repro.connect()
    data = load_warehouse(conn.database,
                          WarehouseConfig(customers=1500, seed=3))

    conn.execute("""
        CREATE MINING MODEL [Customer Segments] (
            [Customer ID] LONG KEY,
            [Gender]      TEXT DISCRETE,
            [Age]         DOUBLE CONTINUOUS PREDICT,
            [Product Purchases] TABLE([Product Name] TEXT KEY)
        ) USING Microsoft_Clustering(CLUSTER_COUNT = 4, CLUSTER_SEED = 1)
    """)
    conn.execute("""
        INSERT INTO [Customer Segments] ([Customer ID], [Gender], [Age],
            [Product Purchases]([Product Name]))
        SHAPE {SELECT [Customer ID], Gender, Age FROM Customers
               ORDER BY [Customer ID]}
        APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
                RELATE [Customer ID] TO CustID) AS [Product Purchases]
    """)

    # -- browse the clusters ---------------------------------------------------
    clusters = conn.execute("""
        SELECT NODE_CAPTION, NODE_SUPPORT, NODE_PROBABILITY
        FROM [Customer Segments].CONTENT
        WHERE NODE_TYPE_NAME = 'Cluster'
        ORDER BY NODE_SUPPORT DESC
    """)
    print("Clusters:")
    print(clusters.pretty())

    # -- assign new cases with the cluster UDFs ---------------------------------
    assignments = conn.execute("""
        SELECT t.[Customer ID], Cluster() AS segment,
               ClusterProbability() AS p,
               PredictHistogram(Cluster()) AS histogram
        FROM [Customer Segments] NATURAL PREDICTION JOIN
            (SHAPE {SELECT [Customer ID], Gender, Age FROM Customers
                    WHERE [Customer ID] <= 5 ORDER BY [Customer ID]}
             APPEND ({SELECT CustID, [Product Name] FROM Sales
                      ORDER BY CustID}
                     RELATE [Customer ID] TO CustID)
                    AS [Product Purchases]) AS t
    """)
    print("\nCluster assignments (with full posterior histogram):")
    print(assignments.pretty())

    # -- a clustering model can fill in missing attributes too ------------------
    ages = conn.execute("""
        SELECT t.[Customer ID], [Customer Segments].[Age] AS predicted_age,
               PredictStdev([Age]) AS stdev
        FROM [Customer Segments] NATURAL PREDICTION JOIN
            (SHAPE {SELECT [Customer ID], Gender FROM Customers
                    WHERE [Customer ID] <= 5 ORDER BY [Customer ID]}
             APPEND ({SELECT CustID, [Product Name] FROM Sales
                      ORDER BY CustID}
                     RELATE [Customer ID] TO CustID)
                    AS [Product Purchases]) AS t
    """)
    print("\nAge imputed from purchase behaviour (no Age supplied):")
    print(ages.pretty())

    # -- how well do clusters recover the generator's hidden segments? ----------
    r = conn.execute("""
        SELECT t.[Customer ID], Cluster() AS segment
        FROM [Customer Segments] NATURAL PREDICTION JOIN
            (SHAPE {SELECT [Customer ID], Gender, Age FROM Customers
                    ORDER BY [Customer ID]}
             APPEND ({SELECT CustID, [Product Name] FROM Sales
                      ORDER BY CustID}
                     RELATE [Customer ID] TO CustID)
                    AS [Product Purchases]) AS t
    """)
    agreement = {}
    for customer_id, segment in r.rows:
        truth = data.segments[customer_id]
        agreement.setdefault(segment, {}).setdefault(truth, 0)
        agreement[segment][truth] += 1
    print("\nCluster vs. generator ground-truth segment:")
    for segment in sorted(agreement):
        counts = agreement[segment]
        top = max(counts, key=counts.get)
        total = sum(counts.values())
        print(f"  cluster {segment}: {total:4d} customers, "
              f"dominated by {top!r} ({counts[top] / total:.0%})")

    # -- PMML persistence (section 4) -------------------------------------------
    path = os.path.join(tempfile.mkdtemp(prefix="repro_pmml_"),
                        "segments.xml")
    conn.execute(f"EXPORT MINING MODEL [Customer Segments] TO '{path}'")
    conn.execute(f"IMPORT MINING MODEL FROM '{path}' AS [Segments Copy]")
    copied = conn.execute("""
        SELECT TOP 1 Cluster() AS segment
        FROM [Segments Copy] NATURAL PREDICTION JOIN
            (SELECT Gender, Age FROM Customers WHERE [Customer ID] = 1) AS t
    """)
    print(f"\nExported to {path} ({os.path.getsize(path)} bytes), "
          f"re-imported as [Segments Copy]; it predicts: "
          f"cluster {copied.single_value()}")


if __name__ == "__main__":
    main()
