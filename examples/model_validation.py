"""Model validation: holdout scoring, confusion matrices, lift charts.

Closes the loop the paper's deployment story implies: split the warehouse
into train/test halves, populate a model from the training half only,
score the held-out half through a PREDICTION JOIN, and measure — accuracy
against the majority baseline, per-class precision/recall, a decile lift
chart — then render the learnt structure as a report.

Run:  python examples/model_validation.py
"""

import repro
from repro.datagen import WarehouseConfig, load_warehouse
from repro.evaluation import holdout_split, score_classifier
from repro.reporting import render_model


def main() -> None:
    conn = repro.connect()
    load_warehouse(conn.database, WarehouseConfig(customers=2500, seed=29))

    # -- deterministic holdout split over case keys ------------------------
    keys = [row[0] for row in conn.execute(
        "SELECT [Customer ID] FROM Customers").rows]
    train_keys, test_keys = holdout_split(keys, test_fraction=0.3, seed=4)
    conn.execute("CREATE TABLE TrainKeys ([Customer ID] LONG)")
    conn.execute("CREATE TABLE TestKeys ([Customer ID] LONG)")
    conn.database.table("TrainKeys").insert_many([(k,) for k in train_keys])
    conn.database.table("TestKeys").insert_many([(k,) for k in test_keys])
    print(f"Holdout: {len(train_keys)} train / {len(test_keys)} test "
          f"customers")

    # -- train on the training half only ------------------------------------
    conn.execute("""
        CREATE MINING MODEL [Validated] (
            [Customer ID] LONG KEY,
            [Gender]      TEXT DISCRETE,
            [Age]         DOUBLE DISCRETIZED(CLUSTERS, 3) PREDICT,
            [Product Purchases] TABLE([Product Name] TEXT KEY)
        ) USING Microsoft_Decision_Trees(MINIMUM_SUPPORT = 25)
    """)
    conn.execute("""
        INSERT INTO [Validated] ([Customer ID], [Gender], [Age],
            [Product Purchases]([Product Name]))
        SHAPE {SELECT [Customer ID], Gender, Age FROM Customers
               WHERE [Customer ID] IN (SELECT [Customer ID] FROM TrainKeys)
               ORDER BY [Customer ID]}
        APPEND ({SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}
                RELATE [Customer ID] TO CustID) AS [Product Purchases]
    """)

    # -- actual buckets of the held-out customers ----------------------------
    target = conn.model("Validated").space.for_column("Age")
    actuals = {}
    for customer_id, age in conn.execute(
            "SELECT [Customer ID], Age FROM Customers WHERE "
            "[Customer ID] IN (SELECT [Customer ID] FROM TestKeys)").rows:
        actuals[customer_id] = target.discretizer.label(
            target.discretizer.bucket_of(age))

    # -- score the held-out half through PREDICTION JOIN --------------------
    report, chart = score_classifier(
        conn, "Validated", "Age",
        """SHAPE {SELECT [Customer ID], Gender FROM Customers
                  WHERE [Customer ID] IN
                      (SELECT [Customer ID] FROM TestKeys)
                  ORDER BY [Customer ID]}
           APPEND ({SELECT CustID, [Product Name] FROM Sales
                    ORDER BY CustID}
                   RELATE [Customer ID] TO CustID)
                  AS [Product Purchases]""",
        "Customer ID", actuals)

    print("\nClassification report (held-out customers):")
    print(report.pretty())
    if chart is not None:
        print("\nLift chart (targeting the modal bucket):")
        print(chart.pretty())

    # -- browse what was learnt ------------------------------------------------
    print("\nLearnt structure:")
    print(render_model(conn.model("Validated")))


if __name__ == "__main__":
    main()
