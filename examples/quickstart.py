"""Quickstart: the paper's running example, end to end.

Recreates section 3 of Netz et al. (ICDE 2001) verbatim:

1. the three warehouse tables of section 3.1 (Customers, Sales,
   Car Ownership), including the exact Customer ID 1 of Table 1;
2. Table 1 itself — the flattened 12-row join vs. the 1-case nested rowset;
3. ``CREATE MINING MODEL [Age Prediction] ... USING [Decision_Trees_101]``;
4. ``INSERT INTO ... SHAPE ... APPEND ... RELATE`` training;
5. the ``PREDICTION JOIN`` query of section 3.3, plus prediction UDFs;
6. content browsing via ``SELECT * FROM [Age Prediction].CONTENT``.

Run:  python examples/quickstart.py
"""

import repro
from repro.datagen import WarehouseConfig, load_warehouse


def main() -> None:
    conn = repro.connect()

    # -- 1. the warehouse (paper customer #1 + 999 synthetic ones) ---------
    load_warehouse(conn.database, WarehouseConfig(customers=1000))
    print("Tables:", ", ".join(sorted(
        t.name for t in conn.database.tables.values())))

    # -- 2. Table 1: flattened join vs. nested caseset ---------------------
    flattened = conn.execute("""
        SELECT c.[Customer ID], c.Gender, c.[Hair Color], c.Age,
               s.[Product Name], s.Quantity, s.[Product Type],
               o.Car, o.[Car Prob]
        FROM Customers c
        JOIN Sales s ON c.[Customer ID] = s.CustID
        JOIN [Car Ownership] o ON c.[Customer ID] = o.CustID
        WHERE c.[Customer ID] = 1
    """)
    print(f"\nFlattened 3-way join for Customer ID 1: {len(flattened)} rows "
          f"with heavy replication.")
    print("(The paper claims 'this join query will return a table of 12 "
          "rows', but Table 1's own data - 4 purchases x 2 cars x 1 "
          "customer - joins to 8; see EXPERIMENTS.md, experiment T1.)")

    nested = conn.execute("""
        SHAPE {SELECT [Customer ID], Gender, [Hair Color], Age,
                      [Age Prob] FROM Customers WHERE [Customer ID] = 1}
        APPEND ({SELECT CustID, [Product Name], Quantity, [Product Type]
                 FROM Sales} RELATE [Customer ID] TO CustID)
               AS [Product Purchases],
               ({SELECT CustID, Car, [Car Prob] FROM [Car Ownership]}
                RELATE [Customer ID] TO CustID) AS [Car Ownership]
    """)
    print(f"Nested caseset for the same customer: {len(nested)} case")
    print(nested.pretty())

    # -- 3. CREATE MINING MODEL (section 3.2, verbatim incl. % comments) ---
    conn.execute("""
        CREATE MINING MODEL [Age Prediction] (
        %Name of Model
            [Customer ID] LONG KEY,
            [Gender]      TEXT DISCRETE,
            [Age]         DOUBLE DISCRETIZED PREDICT,  %prediction column
            [Product Purchases] TABLE(
                [Product Name] TEXT KEY,
                [Quantity]     DOUBLE NORMAL CONTINUOUS,
                [Product Type] TEXT DISCRETE RELATED TO [Product Name]
            )
        ) USING [Decision_Trees_101]
        %Mining Algorithm used
    """)

    # -- 4. INSERT INTO: populate from the SHAPEd caseset (section 3.3) ----
    trained = conn.execute("""
        INSERT INTO [Age Prediction] ([Customer ID], [Gender], [Age],
            [Product Purchases]([Product Name], [Quantity], [Product Type]))
        SHAPE
            {SELECT [Customer ID], [Gender], [Age] FROM Customers
             ORDER BY [Customer ID]}
        APPEND (
            {SELECT [CustID], [Product Name], [Quantity], [Product Type]
             FROM Sales ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Product Purchases]
    """)
    print(f"\nModel populated from {trained} cases.")

    # -- 5. PREDICTION JOIN (section 3.3, verbatim ON clause) --------------
    predictions = conn.execute("""
        SELECT t.[Customer ID], [Age Prediction].[Age],
               PredictProbability([Age]) AS [Probability],
               PredictHistogram([Age])   AS [Histogram]
        FROM [Age Prediction]
        PREDICTION JOIN (SHAPE {
            SELECT [Customer ID], [Gender] FROM Customers
            WHERE [Customer ID] <= 5 ORDER BY [Customer ID]}
        APPEND ({SELECT [CustID], [Product Name], [Quantity] FROM Sales
                 ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t
        ON [Age Prediction].Gender = t.Gender AND
           [Age Prediction].[Product Purchases].[Product Name] =
               t.[Product Purchases].[Product Name] AND
           [Age Prediction].[Product Purchases].[Quantity] =
               t.[Product Purchases].[Quantity]
    """)
    print("\nPredicted age buckets (the Age column is DISCRETIZED):")
    print(predictions.pretty())

    # The RangeMid UDF maps the predicted bucket back to a number.
    midpoints = conn.execute("""
        SELECT t.[Customer ID], RangeMin([Age]) AS lo,
               RangeMid([Age]) AS mid, RangeMax([Age]) AS hi
        FROM [Age Prediction] NATURAL PREDICTION JOIN
            (SELECT [Customer ID], Gender FROM Customers
             WHERE [Customer ID] <= 5) AS t
    """)
    print("\nPredicted bucket ranges:")
    print(midpoints.pretty())

    # -- 6. browse the content graph (section 3.3) -------------------------
    content = conn.execute("""
        SELECT TOP 8 NODE_UNIQUE_NAME, NODE_TYPE_NAME, NODE_CAPTION,
               NODE_SUPPORT
        FROM [Age Prediction].CONTENT
    """)
    print("\nModel content (decision tree as a directed graph):")
    print(content.pretty())

    models = conn.execute("SELECT * FROM $SYSTEM.MINING_MODELS")
    print("\n$SYSTEM.MINING_MODELS:")
    print(models.pretty())


if __name__ == "__main__":
    main()
