"""Market-basket analysis: association rules over nested purchase tables.

The paper motivates predictions that are "a collection of predictions, such
as 'the set of products that the customer is likely to buy'".  This example
builds an association model over the Sales nested table, browses its
itemsets and rules through the content graph, and produces per-customer
recommendations with PredictAssociation and TopCount.

Run:  python examples/market_basket.py
"""

import repro
from repro.datagen import WarehouseConfig, load_warehouse


def main() -> None:
    conn = repro.connect()
    load_warehouse(conn.database, WarehouseConfig(customers=2000, seed=11))

    conn.execute("""
        CREATE MINING MODEL [Market Basket] (
            [Customer ID] LONG KEY,
            [Product Purchases] TABLE(
                [Product Name] TEXT KEY,
                [Product Type] TEXT DISCRETE RELATED TO [Product Name]
            ) PREDICT
        ) USING Microsoft_Association_Rules(
            MINIMUM_SUPPORT = 0.03, MINIMUM_PROBABILITY = 0.4)
    """)
    conn.execute("""
        INSERT INTO [Market Basket] ([Customer ID],
            [Product Purchases]([Product Name], [Product Type]))
        SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
        APPEND ({SELECT CustID, [Product Name], [Product Type] FROM Sales
                 ORDER BY CustID}
                RELATE [Customer ID] TO CustID) AS [Product Purchases]
    """)

    # -- frequent itemsets and rules from the content graph -----------------
    itemsets = conn.execute("""
        SELECT TOP 8 NODE_CAPTION, NODE_SUPPORT
        FROM [Market Basket].CONTENT
        WHERE NODE_TYPE_NAME = 'ItemSet'
        ORDER BY NODE_SUPPORT DESC
    """)
    print("Top frequent itemsets:")
    print(itemsets.pretty())

    rules = conn.execute("""
        SELECT TOP 8 NODE_CAPTION, NODE_PROBABILITY AS confidence,
               NODE_SUPPORT
        FROM [Market Basket].CONTENT
        WHERE NODE_TYPE_NAME = 'Rule'
        ORDER BY NODE_PROBABILITY DESC
    """)
    print("\nStrongest rules:")
    print(rules.pretty())

    # -- recommendations for three baskets -----------------------------------
    recommendations = conn.execute("""
        SELECT t.[Customer ID],
               TopCount(PredictAssociation([Product Purchases]),
                        [$PROBABILITY], 3) AS [Top 3]
        FROM [Market Basket] NATURAL PREDICTION JOIN
            (SHAPE {SELECT [Customer ID] FROM Customers
                    WHERE [Customer ID] <= 3 ORDER BY [Customer ID]}
             APPEND ({SELECT CustID, [Product Name] FROM Sales
                      ORDER BY CustID}
                     RELATE [Customer ID] TO CustID)
                    AS [Product Purchases]) AS t
    """)
    print("\nPer-customer top-3 recommendations:")
    print(recommendations.pretty())

    # -- the same, flattened for export to a plain table ----------------------
    flat = conn.execute("""
        SELECT FLATTENED t.[Customer ID],
               TopCount(PredictAssociation([Product Purchases]),
                        [$PROBABILITY], 2) AS [Rec]
        FROM [Market Basket] NATURAL PREDICTION JOIN
            (SHAPE {SELECT [Customer ID] FROM Customers
                    WHERE [Customer ID] <= 3 ORDER BY [Customer ID]}
             APPEND ({SELECT CustID, [Product Name] FROM Sales
                      ORDER BY CustID}
                     RELATE [Customer ID] TO CustID)
                    AS [Product Purchases]) AS t
    """)
    print("\nFLATTENED recommendations (one row per item):")
    print(flat.pretty())


if __name__ == "__main__":
    main()
