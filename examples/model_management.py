"""Model management: the life-cycle and deployment story of the paper.

Section 1: "once a model is generated, how to store, maintain, and refresh
it as data in the warehouse is updated, how to programmatically use the
model to do predictions on other data sets, and how to browse models ...
such deployment and management of models remains one of the most important
tasks."

This example walks the full life cycle with nothing but commands:

* discover provider capabilities from the schema rowsets;
* define a model, train it, and *refresh* it with a second INSERT as new
  warehouse rows arrive;
* compare algorithms by swapping the USING clause on an identical
  definition (the pluggability claim);
* reset with DELETE FROM, re-train, and DROP;
* chain predictions into a plain SQL table — deployment as a query.

Run:  python examples/model_management.py
"""

import repro
from repro.datagen import WarehouseConfig, load_warehouse

MODEL_DDL = """
CREATE MINING MODEL [{name}] (
    [Customer ID] LONG KEY,
    [Gender]      TEXT DISCRETE,
    [Age]         DOUBLE DISCRETIZED(EQUAL_COUNT, 4) PREDICT,
    [Product Purchases] TABLE([Product Name] TEXT KEY)
) USING {algorithm}
"""

TRAIN = """
INSERT INTO [{name}] ([Customer ID], [Gender], [Age],
    [Product Purchases]([Product Name]))
SHAPE {{SELECT [Customer ID], Gender, Age FROM Customers
        WHERE [Customer ID] {predicate} ORDER BY [Customer ID]}}
APPEND ({{SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}}
        RELATE [Customer ID] TO CustID) AS [Product Purchases]
"""

SCORE = """
SELECT t.[Customer ID], [{name}].[Age] AS predicted,
       PredictProbability([Age]) AS p
FROM [{name}] NATURAL PREDICTION JOIN
    (SHAPE {{SELECT [Customer ID], Gender FROM Customers
             ORDER BY [Customer ID]}}
     APPEND ({{SELECT CustID, [Product Name] FROM Sales ORDER BY CustID}}
             RELATE [Customer ID] TO CustID) AS [Product Purchases]) AS t
"""


def main() -> None:
    conn = repro.connect()
    load_warehouse(conn.database, WarehouseConfig(customers=1200, seed=21))

    # -- capability discovery -------------------------------------------------
    print("Provider services:")
    print(conn.execute(
        "SELECT SERVICE_NAME, PREDICTS_DISCRETE, PREDICTS_CONTINUOUS "
        "FROM $SYSTEM.MINING_SERVICES").pretty())

    # -- define + initial training on the first half of the warehouse ---------
    conn.execute(MODEL_DDL.format(name="Age Model",
                                  algorithm="Microsoft_Decision_Trees"))
    first = conn.execute(TRAIN.format(name="Age Model", predicate="<= 600"))
    print(f"\nInitial training: {first} cases")

    # -- refresh: new data arrives, INSERT again (accumulates + retrains) -----
    second = conn.execute(TRAIN.format(name="Age Model", predicate="> 600"))
    model = conn.model("Age Model")
    print(f"Refresh: +{second} cases -> model now holds "
          f"{model.case_count} cases across {model.insert_count} inserts")

    # -- pluggability: same definition, different services ---------------------
    print("\nAccuracy of the same definition under different services:")
    truth = dict(conn.execute(
        "SELECT [Customer ID], Age FROM Customers").rows)
    for algorithm in ("Microsoft_Decision_Trees", "Microsoft_Naive_Bayes",
                      "Microsoft_Clustering"):
        name = f"Age via {algorithm}"
        conn.execute(MODEL_DDL.format(name=name, algorithm=algorithm))
        conn.execute(TRAIN.format(name=name, predicate=">= 1"))
        scored = conn.execute(SCORE.format(name=name))
        target = conn.model(name).space.for_column("Age")
        hits = sum(
            1 for customer_id, predicted, _ in scored.rows
            if predicted is not None and
            target.discretizer.label(
                target.discretizer.bucket_of(truth[customer_id]))
            == predicted)
        print(f"  {algorithm:30s} bucket accuracy "
              f"{hits / len(scored):.1%}")

    # -- deployment: predictions INTO a plain table via SQL --------------------
    conn.execute("CREATE TABLE [Scored Customers] "
                 "([Customer ID] LONG, [Predicted Age] TEXT, P DOUBLE)")
    scored = conn.execute(SCORE.format(name="Age Model"))
    table = conn.database.table("Scored Customers")
    table.insert_many(scored.rows)
    print("\nDeployed predictions into [Scored Customers]:")
    print(conn.execute(
        "SELECT [Predicted Age], COUNT(*) AS customers, AVG(P) AS avg_p "
        "FROM [Scored Customers] GROUP BY [Predicted Age] "
        "ORDER BY customers DESC").pretty())

    # -- reset and drop ----------------------------------------------------------
    conn.execute("DELETE FROM MINING MODEL [Age Model]")
    print(f"\nAfter DELETE FROM: trained = "
          f"{conn.model('Age Model').is_trained}")
    conn.execute("DROP MINING MODEL [Age Model]")
    remaining = conn.execute(
        "SELECT MODEL_NAME FROM $SYSTEM.MINING_MODELS")
    print("Models remaining after DROP:",
          [row[0] for row in remaining.rows])


if __name__ == "__main__":
    main()
