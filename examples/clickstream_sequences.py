"""Clickstream analysis: sequence clustering over SEQUENCE_TIME tables.

The paper lists "sequence analysis" among the capabilities a provider
advertises (section 2) and defines the SEQUENCE_TIME attribute type for
"a time measurement range ... typically used to associate a sequence time
with individual attribute values such as purchase time" (section 3.2.2).

This example builds synthetic site-visit sessions from two latent browsing
styles, declares a nested table whose KEY is also the SEQUENCE_TIME, mines
a mixture of Markov chains, and predicts each live session's next page.

Run:  python examples/clickstream_sequences.py
"""

import numpy as np

import repro

BUYERS = ["Home", "Search", "Product", "Cart", "Checkout"]
BROWSERS = ["Home", "News", "Forum", "News", "Forum"]


def build_sessions(conn, sessions=400, seed=5):
    """Two behavioural groups with noisy page orderings."""
    rng = np.random.RandomState(seed)
    conn.execute("CREATE TABLE Visits (SessionId LONG, Step LONG, "
                 "Page TEXT)")
    rows = []
    for session in range(sessions):
        script = BUYERS if session % 2 else BROWSERS
        length = rng.randint(3, len(script) + 1)
        for step in range(length):
            page = script[step]
            if rng.random_sample() < 0.08:  # noise: a random page
                page = rng.choice(script)
            rows.append(f"({session}, {step}, '{page}')")
    conn.execute("INSERT INTO Visits VALUES " + ", ".join(rows))
    return sessions


def main() -> None:
    conn = repro.connect()
    sessions = build_sessions(conn)
    print(f"Built {sessions} sessions, "
          f"{conn.execute('SELECT COUNT(*) FROM Visits').single_value()} "
          f"page views.")

    conn.execute("""
        CREATE MINING MODEL [Click Paths] (
            [SessionId] LONG KEY,
            [Visits] TABLE(
                [Step] LONG KEY SEQUENCE_TIME,
                [Page] TEXT DISCRETE
            )
        ) USING Microsoft_Sequence_Clustering(CLUSTER_COUNT = 2)
    """)
    conn.execute("""
        INSERT INTO [Click Paths] ([SessionId], [Visits]([Step], [Page]))
        SHAPE {SELECT DISTINCT SessionId FROM Visits ORDER BY SessionId}
        APPEND ({SELECT SessionId AS SID, Step, Page FROM Visits
                 ORDER BY SessionId, Step}
                RELATE SessionId TO SID) AS [Visits]
    """)

    # -- browse the chains -----------------------------------------------------
    chains = conn.execute("""
        SELECT NODE_CAPTION, NODE_SUPPORT, NODE_PROBABILITY
        FROM [Click Paths].CONTENT
        WHERE NODE_TYPE_NAME = 'Cluster' ORDER BY NODE_SUPPORT DESC
    """)
    print("\nBehavioural chains found:")
    print(chains.pretty())

    # -- classify two live sessions and predict their next page -----------------
    conn.execute("CREATE TABLE Live (SessionId LONG, Step LONG, "
                 "Page TEXT)")
    conn.execute("INSERT INTO Live VALUES "
                 "(9001, 0, 'Home'), (9001, 1, 'Search'), "
                 "(9001, 2, 'Product'), "
                 "(9002, 0, 'Home'), (9002, 1, 'News')")
    live = conn.execute("""
        SELECT t.[SessionId], Cluster() AS chain,
               ClusterProbability() AS p,
               TopCount(PredictHistogram([Visits]), [$PROBABILITY], 2)
                   AS [next pages]
        FROM [Click Paths] NATURAL PREDICTION JOIN
            (SHAPE {SELECT DISTINCT SessionId FROM Live
                    ORDER BY SessionId}
             APPEND ({SELECT SessionId AS SID, Step, Page FROM Live
                      ORDER BY SessionId, Step}
                     RELATE SessionId TO SID) AS [Visits]) AS t
    """)
    print("\nLive sessions: chain assignment and next-page prediction:")
    print(live.pretty())

    # The buyer-like session should be heading for the Cart.
    for session_id, chain, p, next_pages in live.rows:
        best = next_pages.rows[0][0]
        print(f"  session {session_id}: chain {chain} (p={p:.2f}), "
              f"most likely next page: {best}")


if __name__ == "__main__":
    main()
